"""The cost-based federated planner (``--policy cost``).

Subclasses :class:`~repro.core.planner.FederatedPlanner`, replacing the
three rule-bound decisions with estimated-cost comparisons while keeping
the exact same structural legality envelope (so every plan it emits passes
the oracle's plan-invariant checker):

* **Heuristic 1 merges** — the base planner's ``_mergeable`` still gates
  structurally (same endpoint, shared indexed join variable, table budget,
  translatable); among eligible pairs the merge advisor compares the
  virtual-time cost of shipping the merged sub-query against shipping both
  halves and hash-joining at the engine.
* **Filter placement** — any *translatable* filter may run at either side;
  the filter advisor compares source-side evaluation (index probes when
  available, per-row scans otherwise, string patterns at their expensive
  rate) plus reduced transfer against full transfer plus engine-side
  evaluation.  Unlike ``SOURCE_IF_INDEXED``, this can profitably push
  selective filters over *unindexed* attributes on slow networks — and
  keep expensive LIKE scans at the engine on fast ones.
* **Join order and method** — bushy dynamic programming (DPsize) over the
  branch's plan units, with join cardinalities from the NDV sketches
  (``|A ⋈ B| = |A|·|B| / max(ndv)`` over the shared variables) and a
  dependent-join candidate wherever the inner side is a single
  restrictable service with exactly one shared variable.  Beyond
  :data:`MAX_DP_UNITS` units the planner falls back to the base greedy
  ordering (with a note), bounding planning time.

Cardinalities prefer the :class:`~repro.optimizer.ObservedStatistics`
store over catalog estimates, which is the feedback loop: ingesting one
observed run replaces a misestimate with ground truth and the next
planning pass enumerates with correct numbers.

Everything is deterministic: DP iterates subsets in sorted order, ties
break on ``(cost, rows, canonical tree text)``, and all inputs (catalog
snapshot, observed store, constants) are plain data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import TYPE_CHECKING

from ..core.heuristics import MergeGroup, filter_selectivity
from ..core.planner import FederatedPlanner, _annotate, _PlanUnit
from ..core.source_selection import SelectedStar
from ..core.statskeys import join_signature, unit_signature, unit_signature_for
from ..exceptions import PlanningError, TranslationError
from ..federation.operators import DependentJoin, ServiceNode, SymmetricHashJoin
from ..mapping.translator import filter_columns, stars_variable_columns
from ..sparql.algebra import BinaryOp, FunctionCall, UnaryOp
from .cost import CostConstants, analytic_constants
from .statistics import CatalogStatistics, ObservedStatistics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datalake.lake import SemanticDataLake
    from ..network.costmodel import CostModel
    from ..network.delays import NetworkSetting
    from ..core.policy import PlanPolicy

#: Above this many plan units in one branch, DPsize (O(3^n) subset splits)
#: gives way to the base planner's greedy ordering.
MAX_DP_UNITS = 10

#: String-pattern built-ins priced at the expensive source-side rate.
_STRING_FUNCTIONS = frozenset({"REGEX", "CONTAINS", "STRSTARTS", "STRENDS"})


def _has_string_predicate(expression) -> bool:
    if isinstance(expression, FunctionCall):
        if expression.name.upper() in _STRING_FUNCTIONS:
            return True
        return any(_has_string_predicate(arg) for arg in expression.args)
    if isinstance(expression, BinaryOp):
        return _has_string_predicate(expression.left) or _has_string_predicate(
            expression.right
        )
    if isinstance(expression, UnaryOp):
        return _has_string_predicate(expression.operand)
    return False


@dataclass
class _Entry:
    """One DP table entry: the best plan found for a unit subset."""

    cost: float
    rows: float
    ndv: dict[str, float]
    variables: frozenset[str]
    tree: tuple  # ("leaf", i) | ("hash", l, r, vars, rows) | ("dep", l, i, var, rows)


def _entry_key(entry: _Entry) -> tuple:
    return (entry.cost, entry.rows, repr(entry.tree))


class CostBasedPlanner(FederatedPlanner):
    """A :class:`FederatedPlanner` whose decisions come from cost estimates."""

    def __init__(
        self,
        lake: "SemanticDataLake",
        policy: "PlanPolicy",
        network: "NetworkSetting",
        catalog_stats: CatalogStatistics,
        observed: ObservedStatistics,
        cost_model: "CostModel",
        constants: CostConstants | None = None,
        debug_validate: bool | None = None,
        obs=None,
    ):
        super().__init__(lake, policy, network, debug_validate=debug_validate, obs=obs)
        self.catalog_stats = catalog_stats
        self.observed = observed
        self.constants = constants or analytic_constants(cost_model, network)
        self.merge_advisor = self._advise_merge
        self.filter_advisor = self._advise_filter

    # -- cardinalities --------------------------------------------------------

    def _rows_for(self, signature: tuple, fallback: float) -> float:
        observed = self.observed.lookup(signature)
        if observed is None:
            return max(fallback, 0.0)
        return max(observed, 0.0)

    def _build_unit(self, unit, filter_decisions) -> _PlanUnit:
        plan_unit = super()._build_unit(unit, filter_decisions)
        rows = self._rows_for(plan_unit.signature, plan_unit.estimate)
        if rows != plan_unit.estimate:
            plan_unit.estimate = rows
            _annotate(plan_unit.operator, rows)
        plan_unit.ndv = self._unit_ndv(unit, rows)
        return plan_unit

    def _unit_ndv(
        self, unit: MergeGroup | SelectedStar, rows: float
    ) -> dict[str, float]:
        """Per-variable NDV sketch of one plan unit, capped at its rows."""
        cap = max(rows, 1.0)
        if isinstance(unit, MergeGroup):
            stars = unit.stars_with_mappings()
            source_id = unit.source_id
            variables: set[str] = set()
            for star in unit.stars:
                variables |= star.variable_names()
        else:
            variables = unit.star.variable_names()
            candidate = unit.candidates[0] if unit.candidates else None
            if (
                len(unit.candidates) == 1
                and candidate.kind == "rdb"
                and candidate.class_mapping is not None
            ):
                stars = [(unit.star, candidate.class_mapping)]
                source_id = candidate.source_id
            else:
                stars = None
                source_id = ""
        columns: dict[str, tuple[str, str]] = {}
        if stars is not None:
            try:
                columns = stars_variable_columns(stars)
            except TranslationError:
                columns = {}
        ndv = {}
        for variable in variables:
            if variable in columns:
                table, column = columns[variable]
                ndv[variable] = min(
                    cap, self.catalog_stats.column_ndv(source_id, table, column)
                )
            else:
                ndv[variable] = cap
        return ndv

    # -- advisors -------------------------------------------------------------

    def _advise_merge(
        self, group, selection, candidate, est_merged, est_separate
    ) -> tuple[bool, str]:
        c = self.constants
        source_id = group.source_id
        group_fallback = min(
            float(self.lake.physical_catalog.table_rows(source_id, g.class_mapping.table))
            for g in group.candidates
        )
        group_rows = self._rows_for(
            unit_signature([source_id], group.stars), group_fallback
        )
        star_rows = self._rows_for(
            unit_signature_for(selection), float(selection.estimated_cardinality())
        )
        merged_rows = self._rows_for(
            unit_signature([source_id], list(group.stars) + [selection.star]),
            est_merged if est_merged is not None else group_fallback,
        )
        shipped_separate = group_rows + star_rows
        cost_merged = (
            c.request
            + merged_rows * (c.transfer_per_row + c.source_row)
            + shipped_separate * c.index_row_fetch  # source-side join work
        )
        cost_separate = (
            2 * c.request
            + shipped_separate * (c.transfer_per_row + c.source_row)
            + shipped_separate * c.hash_work
            + max(group_rows, star_rows) * c.join_output
        )
        merged_ms = cost_merged * 1000.0
        separate_ms = cost_separate * 1000.0
        if cost_merged <= cost_separate:
            return True, (
                f"cost-based merge: merged {merged_ms:.3f} ms <= separate "
                f"{separate_ms:.3f} ms (ship {merged_rows:.0f} vs "
                f"{group_rows:.0f}+{star_rows:.0f} rows)"
            )
        return False, (
            f"cost-based merge declined: separate {separate_ms:.3f} ms < merged "
            f"{merged_ms:.3f} ms (ship {group_rows:.0f}+{star_rows:.0f} vs "
            f"{merged_rows:.0f} rows)"
        )

    def _advise_filter(
        self, filter_, stars, source_id, est_pushed, est_engine
    ) -> tuple[bool, str]:
        c = self.constants
        base = est_engine if est_engine is not None else 0.0
        columns = filter_columns(filter_, stars)
        selectivity = self._filter_selectivity(filter_, columns, source_id)
        pushed_rows = base * selectivity
        string_predicate = _has_string_predicate(filter_.expression)
        indexed = bool(columns) and all(
            self.catalog_stats.column_indexed(source_id, table, column)
            for table, column in columns
        )
        if indexed and not string_predicate:
            source_side = c.index_probe + pushed_rows * c.index_row_fetch
        else:
            eval_cost = (
                c.source_string_filter_eval if string_predicate else c.source_filter_eval
            )
            source_side = base * eval_cost
        cost_push = source_side + pushed_rows * c.transfer_per_row
        cost_engine = base * (c.transfer_per_row + c.engine_filter_eval)
        push_ms = cost_push * 1000.0
        engine_ms = cost_engine * 1000.0
        if cost_push <= cost_engine:
            return True, (
                f"cost-based placement: source {push_ms:.3f} ms <= engine "
                f"{engine_ms:.3f} ms (est {pushed_rows:.0f} of {base:.0f} rows pass)"
            )
        return False, (
            f"cost-based placement: engine {engine_ms:.3f} ms < source "
            f"{push_ms:.3f} ms (est {pushed_rows:.0f} of {base:.0f} rows pass)"
        )

    def _filter_selectivity(self, filter_, columns, source_id) -> float:
        expression = filter_.expression
        if isinstance(expression, BinaryOp) and expression.operator == "=" and columns:
            return min(
                self.catalog_stats.equality_selectivity(source_id, table, column)
                for table, column in columns
            )
        return filter_selectivity(filter_)

    # -- join enumeration ------------------------------------------------------

    def _order_joins(self, units: list[_PlanUnit], notes: list[str]):
        if not units:
            raise PlanningError("nothing to plan: no sub-queries")
        if len(units) == 1:
            return units[0].operator
        if len(units) > MAX_DP_UNITS:
            notes.append(
                f"cost-based enumeration skipped: {len(units)} plan units exceed "
                f"the DP bound of {MAX_DP_UNITS}; greedy ordering used"
            )
            return super()._order_joins(units, notes)
        components = self._connected_components(units)
        entries = [self._enumerate(units, component) for component in components]
        entries.sort(key=_entry_key)
        result = entries[0]
        for other in entries[1:]:
            notes.append("cartesian product: no shared variables between plan units")
            result = self._hash_entry(result, other)
        root, __ = self._build(result.tree, units)
        return root

    def _connected_components(self, units: list[_PlanUnit]) -> list[list[int]]:
        remaining = list(range(len(units)))
        components: list[list[int]] = []
        while remaining:
            seed = remaining.pop(0)
            component = [seed]
            variables = set(units[seed].variables)
            grew = True
            while grew:
                grew = False
                for index in list(remaining):
                    if units[index].variables & variables:
                        remaining.remove(index)
                        component.append(index)
                        variables |= units[index].variables
                        grew = True
            components.append(sorted(component))
        return components

    def _leaf_entry(self, units: list[_PlanUnit], index: int) -> _Entry:
        c = self.constants
        unit = units[index]
        rows = max(unit.estimate, 0.0)
        ndv = unit.ndv if unit.ndv is not None else {
            variable: max(rows, 1.0) for variable in unit.variables
        }
        cost = c.request + rows * (c.transfer_per_row + c.source_row)
        return _Entry(
            cost=cost,
            rows=rows,
            ndv=dict(ndv),
            variables=frozenset(unit.variables),
            tree=("leaf", index),
        )

    def _join_rows(self, left: _Entry, right: _Entry, shared: frozenset[str]) -> float:
        cross = left.rows * right.rows
        if not shared:
            return cross
        divisor = max(
            max(
                left.ndv.get(variable, max(left.rows, 1.0)),
                right.ndv.get(variable, max(right.rows, 1.0)),
            )
            for variable in shared
        )
        return cross / max(divisor, 1.0)

    def _join_ndv(
        self, left: _Entry, right: _Entry, rows: float
    ) -> dict[str, float]:
        cap = max(rows, 1.0)
        ndv = {}
        for variable in set(left.ndv) | set(right.ndv):
            candidates = [cap]
            if variable in left.ndv:
                candidates.append(left.ndv[variable])
            if variable in right.ndv:
                candidates.append(right.ndv[variable])
            ndv[variable] = min(candidates)
        return ndv

    def _hash_entry(self, left: _Entry, right: _Entry) -> _Entry:
        c = self.constants
        shared = left.variables & right.variables
        rows = self._join_rows(left, right, shared)
        cost = (
            left.cost
            + right.cost
            + (left.rows + right.rows) * c.hash_work
            + rows * c.join_output
        )
        return _Entry(
            cost=cost,
            rows=rows,
            ndv=self._join_ndv(left, right, rows),
            variables=left.variables | right.variables,
            tree=("hash", left.tree, right.tree, tuple(sorted(shared)), rows),
        )

    def _dependent_entry(
        self, left: _Entry, units: list[_PlanUnit], index: int, variable: str
    ) -> _Entry:
        c = self.constants
        inner = self._leaf_entry(units, index)
        rows = self._join_rows(left, inner, frozenset({variable}))
        blocks = math.ceil(max(left.rows, 1.0) / self.policy.dependent_block_size)
        cost = (
            left.cost
            + blocks * (c.request + c.index_probe)
            + rows * (c.transfer_per_row + c.source_row + c.join_output)
        )
        return _Entry(
            cost=cost,
            rows=rows,
            ndv=self._join_ndv(left, inner, rows),
            variables=left.variables | inner.variables,
            tree=("dep", left.tree, index, variable, rows),
        )

    def _enumerate(self, units: list[_PlanUnit], component: list[int]) -> _Entry:
        dp: dict[frozenset[int], _Entry] = {}
        for index in component:
            dp[frozenset([index])] = self._leaf_entry(units, index)
        for size in range(2, len(component) + 1):
            for subset in combinations(component, size):
                members = list(subset)
                subset_set = frozenset(members)
                best: _Entry | None = None
                best_key = None
                # Every ordered split (left, right) of the subset; DPsize
                # over 2^size masks, deterministic by construction.
                for mask in range(1, (1 << size) - 1):
                    left_set = frozenset(
                        members[bit] for bit in range(size) if mask >> bit & 1
                    )
                    right_set = subset_set - left_set
                    left = dp[left_set]
                    right = dp[right_set]
                    candidates = [self._hash_entry(left, right)]
                    if len(right_set) == 1:
                        (inner_index,) = right_set
                        inner_unit = units[inner_index]
                        shared = left.variables & frozenset(inner_unit.variables)
                        if (
                            len(shared) == 1
                            and isinstance(inner_unit.operator, ServiceNode)
                            and inner_unit.operator.supports_restriction
                        ):
                            (shared_variable,) = shared
                            candidates.append(
                                self._dependent_entry(
                                    left, units, inner_index, shared_variable
                                )
                            )
                    for candidate in candidates:
                        key = _entry_key(candidate)
                        if best is None or key < best_key:
                            best = candidate
                            best_key = key
                dp[subset_set] = best
        return dp[frozenset(component)]

    def _build(self, tree: tuple, units: list[_PlanUnit]):
        """Materialize a DP tree spec into operators; returns (op, sigs)."""
        kind = tree[0]
        if kind == "leaf":
            unit = units[tree[1]]
            return unit.operator, [unit.signature]
        if kind == "hash":
            left_op, left_sigs = self._build(tree[1], units)
            right_op, right_sigs = self._build(tree[2], units)
            operator = SymmetricHashJoin(
                left=left_op, right=right_op, join_variables=tree[3]
            )
            _annotate(operator, tree[4])
            signatures = left_sigs + right_sigs
            operator.stats_signature = join_signature(signatures)
            return operator, signatures
        # kind == "dep"
        outer_op, outer_sigs = self._build(tree[1], units)
        unit = units[tree[2]]
        operator = DependentJoin(
            outer=outer_op,
            inner=unit.operator,
            join_variable=tree[3],
            block_size=self.policy.dependent_block_size,
        )
        _annotate(operator, tree[4])
        signatures = outer_sigs + [unit.signature]
        operator.stats_signature = join_signature(signatures)
        return operator, signatures
