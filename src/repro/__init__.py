"""Reproduction of *"Optimizing Federated Queries Based on the Physical
Design of a Data Lake"* (Rohde & Vidal, EDBT 2020 workshops).

The package implements the full system stack the paper builds on:

* :mod:`repro.rdf` — RDF terms, triple store, N-Triples, RDF-MTs;
* :mod:`repro.sparql` — a SPARQL SELECT subset (parser + evaluator);
* :mod:`repro.relational` — an in-process SQL engine with indexes,
  statistics and a cost-based planner (the paper's MySQL stand-in);
* :mod:`repro.mapping` — RDF↔relational mappings, 3NF normalization and
  SPARQL-to-SQL translation;
* :mod:`repro.network` — virtual clocks, the paper's gamma delay models
  and the virtual-time cost model;
* :mod:`repro.federation` — source wrappers and ANAPSID-style adaptive
  operators;
* :mod:`repro.core` — **the paper's contribution**: star-shaped
  decomposition, RDF-MT source selection and the physical-design-aware
  plan generator with Heuristics 1 and 2;
* :mod:`repro.datalake` — the Semantic Data Lake container;
* :mod:`repro.datasets` — synthetic LSLOD data sets and the benchmark
  queries Q1–Q5;
* :mod:`repro.benchmark` — the experiment harness reproducing the paper's
  figures and result grids.

Quickstart::

    from repro import FederatedEngine, PlanPolicy, NetworkSetting
    from repro.datasets import build_lslod_lake, BENCHMARK_QUERIES

    lake = build_lslod_lake(seed=42)
    engine = FederatedEngine(lake, policy=PlanPolicy.physical_design_aware(),
                             network=NetworkSetting.gamma2())
    answers, stats = engine.run(BENCHMARK_QUERIES["Q3"].text, seed=1)
    print(stats.execution_time, stats.trace[:5])
"""

from .core.engine import FederatedEngine, ResultStream
from .core.planner import FederatedPlan
from .core.policy import DecompositionKind, FilterPlacement, PlanPolicy
from .datalake.lake import SemanticDataLake
from .exceptions import (
    CatalogError,
    ExecutionError,
    ExpressionError,
    IntegrityError,
    NTriplesParseError,
    ParseError,
    PlanningError,
    ReproError,
    SchemaError,
    SourceSelectionError,
    SPARQLParseError,
    SQLParseError,
    TranslationError,
    WrapperError,
)
from .network.clock import RealClock, VirtualClock
from .network.costmodel import CostModel, DEFAULT_COST_MODEL
from .network.delays import GammaDelay, NetworkSetting, NoDelay

__version__ = "1.0.0"

__all__ = [
    "CatalogError",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DecompositionKind",
    "ExecutionError",
    "ExpressionError",
    "FederatedEngine",
    "FederatedPlan",
    "FilterPlacement",
    "GammaDelay",
    "IntegrityError",
    "NTriplesParseError",
    "NetworkSetting",
    "NoDelay",
    "ParseError",
    "PlanPolicy",
    "PlanningError",
    "RealClock",
    "ReproError",
    "ResultStream",
    "SPARQLParseError",
    "SQLParseError",
    "SchemaError",
    "SemanticDataLake",
    "SourceSelectionError",
    "TranslationError",
    "VirtualClock",
    "WrapperError",
    "__version__",
]
