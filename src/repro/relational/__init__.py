"""Relational substrate: an in-process SQL engine with indexes and statistics.

Each instance of :class:`Database` stands in for one of the paper's MySQL
containers.  The engine exposes the physical-design facts (indexes, primary
keys) that the federated optimizer's heuristics consume.
"""

from .database import Database, QueryResult
from .dump import dump_sql, load_sql, split_statements
from .executor import PlanNode, like_to_regex
from .meter import NullMeter, OperationMeter, OP_KINDS
from .planner import Planner, PlannerOptions
from .schema import Column, ForeignKey, IndexDef, TableSchema
from .sql.ast import (
    AndExpr,
    ColumnRef,
    Comparison,
    Constant,
    InPredicate,
    IsNullPredicate,
    JoinClause,
    LikePredicate,
    NotExpr,
    OrExpr,
    OrderItem,
    SelectItem,
    SelectStatement,
    TableRef,
    WhereExpr,
    conjunction,
    conjuncts,
)
from .sql.parser import parse_select, parse_statement
from .statistics import (
    ColumnStatistics,
    IndexAdvice,
    IndexAdvisor,
    TableStatistics,
    collect_column_statistics,
    collect_table_statistics,
)
from .storage import TableStorage
from .types import SQLType, SQLValue, coerce

__all__ = [
    "AndExpr",
    "Column",
    "ColumnRef",
    "ColumnStatistics",
    "Comparison",
    "Constant",
    "Database",
    "ForeignKey",
    "InPredicate",
    "IndexAdvice",
    "IndexAdvisor",
    "IndexDef",
    "IsNullPredicate",
    "JoinClause",
    "LikePredicate",
    "NotExpr",
    "NullMeter",
    "OP_KINDS",
    "OperationMeter",
    "OrExpr",
    "OrderItem",
    "PlanNode",
    "Planner",
    "PlannerOptions",
    "QueryResult",
    "SQLType",
    "SQLValue",
    "SelectItem",
    "SelectStatement",
    "TableRef",
    "TableSchema",
    "TableStatistics",
    "TableStorage",
    "WhereExpr",
    "coerce",
    "collect_column_statistics",
    "collect_table_statistics",
    "conjunction",
    "conjuncts",
    "dump_sql",
    "load_sql",
    "split_statements",
    "like_to_regex",
    "parse_select",
    "parse_statement",
]
