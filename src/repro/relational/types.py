"""Value types for the relational substrate.

The engine supports the four types the normalized LSLOD tables need:
``INTEGER``, ``REAL``, ``TEXT`` and ``BOOLEAN``.  ``NULL`` is represented by
Python ``None`` and is a member of every type.
"""

from __future__ import annotations

import enum
from typing import Any

from ..exceptions import IntegrityError

SQLValue = int | float | str | bool | None


class SQLType(enum.Enum):
    """Column datatypes understood by the engine."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"

    @classmethod
    def from_name(cls, name: str) -> "SQLType":
        normalized = name.strip().upper()
        aliases = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "REAL": cls.REAL,
            "FLOAT": cls.REAL,
            "DOUBLE": cls.REAL,
            "NUMERIC": cls.REAL,
            "DECIMAL": cls.REAL,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "BOOLEAN": cls.BOOLEAN,
            "BOOL": cls.BOOLEAN,
        }
        if normalized not in aliases:
            raise IntegrityError(f"unknown SQL type {name!r}")
        return aliases[normalized]


def coerce(value: Any, sql_type: SQLType, column: str = "?") -> SQLValue:
    """Validate/convert *value* to *sql_type*; ``None`` always passes.

    Raises:
        IntegrityError: when the value cannot represent the column type.
    """
    if value is None:
        return None
    if sql_type is SQLType.INTEGER:
        if isinstance(value, bool):
            raise IntegrityError(f"boolean given for INTEGER column {column}")
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError as exc:
                raise IntegrityError(f"cannot store {value!r} in INTEGER column {column}") from exc
        raise IntegrityError(f"cannot store {value!r} in INTEGER column {column}")
    if sql_type is SQLType.REAL:
        if isinstance(value, bool):
            raise IntegrityError(f"boolean given for REAL column {column}")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value)
            except ValueError as exc:
                raise IntegrityError(f"cannot store {value!r} in REAL column {column}") from exc
        raise IntegrityError(f"cannot store {value!r} in REAL column {column}")
    if sql_type is SQLType.TEXT:
        if isinstance(value, str):
            return value
        if isinstance(value, (int, float, bool)):
            return str(value)
        raise IntegrityError(f"cannot store {value!r} in TEXT column {column}")
    if sql_type is SQLType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        if isinstance(value, str) and value.lower() in ("true", "false", "0", "1"):
            return value.lower() in ("true", "1")
        raise IntegrityError(f"cannot store {value!r} in BOOLEAN column {column}")
    raise IntegrityError(f"unsupported SQL type {sql_type!r}")


def comparable(left: SQLValue, right: SQLValue) -> bool:
    """True when ``left < right`` is meaningful (same comparison class)."""
    if left is None or right is None:
        return False
    left_numeric = isinstance(left, (int, float)) and not isinstance(left, bool)
    right_numeric = isinstance(right, (int, float)) and not isinstance(right, bool)
    if left_numeric and right_numeric:
        return True
    return type(left) is type(right)
