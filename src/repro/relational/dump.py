"""SQL-script dump/load for :class:`~repro.relational.database.Database`.

``dump_sql`` emits a portable script (CREATE TABLE with PK/FK, CREATE INDEX
for secondary indexes, batched INSERTs) that ``load_sql`` — or the
``Database.execute`` loop of any session — replays into an identical
database.  Used by the lake persistence layer.
"""

from __future__ import annotations

from typing import Iterator

from ..exceptions import SQLParseError
from .database import Database
from .schema import TableSchema
from .sql.ast import Constant
from .types import SQLType

_INSERT_BATCH = 200


def _render_column(schema: TableSchema, name: str) -> str:
    column = schema.column(name)
    parts = [column.name, column.sql_type.value]
    if not column.nullable and (column.name,) != schema.primary_key:
        parts.append("NOT NULL")
    return " ".join(parts)


def _create_table(schema: TableSchema) -> str:
    pieces = [_render_column(schema, column.name) for column in schema.columns]
    if schema.primary_key:
        pieces.append(f"PRIMARY KEY ({', '.join(schema.primary_key)})")
    for foreign_key in schema.foreign_keys:
        pieces.append(
            f"FOREIGN KEY ({foreign_key.column}) "
            f"REFERENCES {foreign_key.referenced_table} ({foreign_key.referenced_column})"
        )
    return f"CREATE TABLE {schema.name} ({', '.join(pieces)})"


def dump_sql(database: Database) -> str:
    """Serialize schema, secondary indexes and data as a SQL script."""
    statements: list[str] = [f"-- database {database.name}"]
    # Tables in FK-dependency order: referenced tables first.
    ordered = _topological_tables(database)
    for table_name in ordered:
        storage = database.table(table_name)
        statements.append(_create_table(storage.schema) + ";")
    for table_name in ordered:
        storage = database.table(table_name)
        for definition in storage.indexes.values():
            if definition.name.startswith("pk_"):
                continue
            unique = "UNIQUE " if definition.unique else ""
            statements.append(
                f"CREATE {unique}INDEX {definition.name} ON {definition.table} "
                f"({', '.join(definition.columns)});"
            )
    for table_name in ordered:
        storage = database.table(table_name)
        batch: list[str] = []
        for row in storage.rows():
            batch.append("(" + ", ".join(Constant(value).sql() for value in row) + ")")
            if len(batch) >= _INSERT_BATCH:
                statements.append(f"INSERT INTO {table_name} VALUES {', '.join(batch)};")
                batch = []
        if batch:
            statements.append(f"INSERT INTO {table_name} VALUES {', '.join(batch)};")
    return "\n".join(statements) + "\n"


def _topological_tables(database: Database) -> list[str]:
    remaining = set(database.table_names)
    ordered: list[str] = []
    while remaining:
        progressed = False
        for table_name in sorted(remaining):
            schema = database.table(table_name).schema
            depends = {
                fk.referenced_table
                for fk in schema.foreign_keys
                if fk.referenced_table != table_name
            }
            if depends <= set(ordered):
                ordered.append(table_name)
                remaining.discard(table_name)
                progressed = True
        if not progressed:  # FK cycle: emit the rest alphabetically
            ordered.extend(sorted(remaining))
            break
    return ordered


def split_statements(script: str) -> Iterator[str]:
    """Split a SQL script on top-level ``;`` (string-literal aware)."""
    buffer: list[str] = []
    in_string = False
    position = 0
    while position < len(script):
        char = script[position]
        if in_string:
            buffer.append(char)
            if char == "'":
                # '' is an escaped quote inside the string
                if position + 1 < len(script) and script[position + 1] == "'":
                    buffer.append("'")
                    position += 1
                else:
                    in_string = False
        elif char == "'":
            in_string = True
            buffer.append(char)
        elif char == ";":
            statement = "".join(buffer).strip()
            if statement:
                yield statement
            buffer = []
        elif char == "-" and script[position:position + 2] == "--":
            end = script.find("\n", position)
            position = len(script) if end < 0 else end
        else:
            buffer.append(char)
        position += 1
    tail = "".join(buffer).strip()
    if tail:
        yield tail


def load_sql(script: str, name: str = "restored") -> Database:
    """Replay a dump produced by :func:`dump_sql` into a fresh database."""
    database = Database(name)
    for statement in split_statements(script):
        try:
            database.execute(statement)
        except SQLParseError as exc:
            raise SQLParseError(f"while loading {name!r}: {exc}") from exc
    database.analyze()
    return database
