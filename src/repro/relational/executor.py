"""Physical operators of the relational engine.

Every operator is a node with a ``header`` (tuple of ``binding.column``
names) and an ``execute(meter)`` method yielding row tuples.  Operators
stream; blocking ones (sort, hash-join build) materialize only what they
must.  Each unit of work is reported to the :class:`OperationMeter` so the
federation layer can price executions into virtual time.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Iterator

from ..exceptions import ExecutionError
from .indexes import BTreeIndex
from .meter import OperationMeter
from .sql.ast import (
    AndExpr,
    ColumnRef,
    Comparison,
    Constant,
    InPredicate,
    IsNullPredicate,
    LikePredicate,
    NotExpr,
    OrExpr,
    WhereExpr,
)
from .storage import TableStorage
from .types import SQLValue, comparable

Row = tuple
Header = tuple[str, ...]


@lru_cache(maxsize=512)
def like_to_regex(pattern: str) -> re.Pattern:
    """Compile a SQL LIKE pattern (``%``, ``_``) into an anchored regex.

    Memoized: predicate compilation runs once per operator per execution,
    so the same LIKE pattern would otherwise be recompiled on every query.
    """
    parts: list[str] = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("^" + "".join(parts) + "$", re.DOTALL)


# ---------------------------------------------------------------------------
# Predicate compilation
# ---------------------------------------------------------------------------


def _column_position(header: Header, ref: ColumnRef) -> int:
    """Resolve *ref* against *header*; unqualified names must be unambiguous."""
    if ref.table:
        wanted = f"{ref.table}.{ref.column}"
        for position, name in enumerate(header):
            if name == wanted:
                return position
        raise ExecutionError(f"column {wanted!r} not in scope {header}")
    matches = [
        position for position, name in enumerate(header)
        if name.rpartition(".")[2] == ref.column
    ]
    if not matches:
        raise ExecutionError(f"column {ref.column!r} not in scope {header}")
    if len(matches) > 1:
        raise ExecutionError(f"ambiguous column {ref.column!r} in scope {header}")
    return matches[0]


def _operand_getter(header: Header, operand) -> Callable[[Row], SQLValue]:
    if isinstance(operand, Constant):
        value = operand.value
        return lambda row: value
    if isinstance(operand, ColumnRef):
        position = _column_position(header, operand)
        return lambda row: row[position]
    raise ExecutionError(f"unsupported operand {operand!r}")


def _is_string_predicate(predicate: WhereExpr) -> bool:
    """True for predicates that do per-row string *pattern* work (LIKE).

    The distinction feeds the cost model: the paper observed that string
    filtering is comparatively expensive inside the RDBMS — that is the
    pattern-matching path (LIKE with wildcards), not hash-comparable
    equality, which stays on the cheap ``filter_evals`` meter.
    """
    return isinstance(predicate, LikePredicate)


_MEMOIZE_PREDICATES = True


def set_predicate_memoization(enabled: bool) -> None:
    """Toggle the process-wide predicate-compilation memo (and clear it off)."""
    global _MEMOIZE_PREDICATES
    _MEMOIZE_PREDICATES = enabled
    if not enabled:
        _compile_predicate_memo.cache_clear()


def compile_predicate(header: Header, predicate: WhereExpr) -> Callable[[Row], bool]:
    """Compile a WHERE expression into a row predicate closure.

    Compiled closures are pure functions of (header, predicate) — the AST
    nodes are frozen dataclasses — so compilation is memoized across
    queries.  Constants that happen to be unhashable fall back to direct
    compilation.
    """
    if _MEMOIZE_PREDICATES:
        try:
            return _compile_predicate_memo(header, predicate)
        except TypeError:
            pass
    return _compile_predicate(header, predicate)


def _compile_predicate(header: Header, predicate: WhereExpr) -> Callable[[Row], bool]:
    if isinstance(predicate, Comparison):
        left = _operand_getter(header, predicate.left)
        right = _operand_getter(header, predicate.right)
        operator = predicate.operator

        def compare(row: Row) -> bool:
            left_value = left(row)
            right_value = right(row)
            if operator == "=":
                return left_value is not None and left_value == right_value
            if operator == "<>":
                return (
                    left_value is not None
                    and right_value is not None
                    and left_value != right_value
                )
            if not comparable(left_value, right_value):
                return False
            if operator == "<":
                return left_value < right_value
            if operator == ">":
                return left_value > right_value
            if operator == "<=":
                return left_value <= right_value
            return left_value >= right_value

        return compare
    if isinstance(predicate, LikePredicate):
        position = _column_position(header, predicate.column)
        regex = like_to_regex(predicate.pattern)
        negated = predicate.negated

        def like(row: Row) -> bool:
            value = row[position]
            if not isinstance(value, str):
                return False
            matched = regex.match(value) is not None
            return matched != negated

        return like
    if isinstance(predicate, InPredicate):
        position = _column_position(header, predicate.column)
        values = set(predicate.values)
        negated = predicate.negated

        def contains(row: Row) -> bool:
            value = row[position]
            if value is None:
                return False
            return (value in values) != negated

        return contains
    if isinstance(predicate, IsNullPredicate):
        position = _column_position(header, predicate.column)
        negated = predicate.negated
        return lambda row: (row[position] is None) != negated
    if isinstance(predicate, NotExpr):
        inner = compile_predicate(header, predicate.operand)
        return lambda row: not inner(row)
    if isinstance(predicate, AndExpr):
        inners = [compile_predicate(header, operand) for operand in predicate.operands]
        return lambda row: all(inner(row) for inner in inners)
    if isinstance(predicate, OrExpr):
        inners = [compile_predicate(header, operand) for operand in predicate.operands]
        return lambda row: any(inner(row) for inner in inners)
    raise ExecutionError(f"unsupported predicate {predicate!r}")


_compile_predicate_memo = lru_cache(maxsize=2048)(_compile_predicate)


# ---------------------------------------------------------------------------
# Plan nodes
# ---------------------------------------------------------------------------


class PlanNode:
    """Base physical operator: a header plus an execute() stream."""

    header: Header

    def execute(self, meter: OperationMeter) -> Iterator[Row]:
        raise NotImplementedError

    def children(self) -> list["PlanNode"]:
        return []

    def label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        lines.extend(child.explain(indent + 1) for child in self.children())
        return "\n".join(lines)


@dataclass
class SeqScan(PlanNode):
    """Full table scan, optionally filtering with pushed-down predicates."""

    storage: TableStorage
    binding: str
    predicates: list[WhereExpr] = field(default_factory=list)

    def __post_init__(self):
        self.header = tuple(f"{self.binding}.{name}" for name in self.storage.schema.column_names)
        self._compiled = [compile_predicate(self.header, p) for p in self.predicates]
        self._string_flags = [_is_string_predicate(p) for p in self.predicates]

    def execute(self, meter: OperationMeter) -> Iterator[Row]:
        compiled = self._compiled
        string_flags = self._string_flags
        for __, row in self.storage.scan():
            meter.count("rows_scanned")
            accepted = True
            for predicate, is_string in zip(compiled, string_flags):
                meter.count("string_filter_evals" if is_string else "filter_evals")
                if not predicate(row):
                    accepted = False
                    break
            if accepted:
                yield row

    def label(self) -> str:
        rendered = " AND ".join(p.sql() for p in self.predicates)
        suffix = f" [{rendered}]" if rendered else ""
        return f"SeqScan({self.storage.schema.name} AS {self.binding}){suffix}"


@dataclass
class IndexScan(PlanNode):
    """Index-backed access: equality lookup or B-tree range scan."""

    storage: TableStorage
    binding: str
    index_name: str
    equality_key: tuple | None = None
    in_keys: list[tuple] | None = None
    range_low: tuple | None = None
    range_high: tuple | None = None
    include_low: bool = True
    include_high: bool = True
    residual_predicates: list[WhereExpr] = field(default_factory=list)

    def __post_init__(self):
        self.header = tuple(f"{self.binding}.{name}" for name in self.storage.schema.column_names)
        self._compiled = [compile_predicate(self.header, p) for p in self.residual_predicates]
        self._string_flags = [_is_string_predicate(p) for p in self.residual_predicates]

    def _row_ids(self, meter: OperationMeter) -> Iterator[int]:
        index = self.storage.index(self.index_name)
        if self.equality_key is not None:
            meter.count("index_probes")
            yield from index.lookup(self.equality_key)
            return
        if self.in_keys is not None:
            for key in self.in_keys:
                meter.count("index_probes")
                yield from index.lookup(key)
            return
        meter.count("index_probes")
        if not isinstance(index, BTreeIndex):
            raise ExecutionError(f"index {self.index_name!r} cannot serve range scans")
        yield from index.scan_range(
            self.range_low, self.range_high, self.include_low, self.include_high
        )

    def execute(self, meter: OperationMeter) -> Iterator[Row]:
        for row_id in self._row_ids(meter):
            meter.count("index_row_fetches")
            row = self.storage.row(row_id)
            accepted = True
            for predicate, is_string in zip(self._compiled, self._string_flags):
                meter.count("string_filter_evals" if is_string else "filter_evals")
                if not predicate(row):
                    accepted = False
                    break
            if accepted:
                yield row

    def label(self) -> str:
        if self.equality_key is not None:
            access = f"= {self.equality_key!r}"
        elif self.in_keys is not None:
            access = f"IN ({len(self.in_keys)} keys)"
        else:
            access = f"range [{self.range_low!r}, {self.range_high!r}]"
        return (
            f"IndexScan({self.storage.schema.name} AS {self.binding}, "
            f"{self.index_name} {access})"
        )


@dataclass
class FilterNode(PlanNode):
    """Residual predicate applied on top of a child stream."""

    child: PlanNode
    predicates: list[WhereExpr]

    def __post_init__(self):
        self.header = self.child.header
        self._compiled = [compile_predicate(self.header, p) for p in self.predicates]
        self._string_flags = [_is_string_predicate(p) for p in self.predicates]

    def execute(self, meter: OperationMeter) -> Iterator[Row]:
        for row in self.child.execute(meter):
            accepted = True
            for predicate, is_string in zip(self._compiled, self._string_flags):
                meter.count("string_filter_evals" if is_string else "filter_evals")
                if not predicate(row):
                    accepted = False
                    break
            if accepted:
                yield row

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return "Filter[" + " AND ".join(p.sql() for p in self.predicates) + "]"


@dataclass
class HashJoin(PlanNode):
    """Classic build/probe equality hash join (build = left child)."""

    left: PlanNode
    right: PlanNode
    left_key: ColumnRef
    right_key: ColumnRef

    def __post_init__(self):
        self.header = self.left.header + self.right.header
        self._left_position = _column_position(self.left.header, self.left_key)
        self._right_position = _column_position(self.right.header, self.right_key)

    def execute(self, meter: OperationMeter) -> Iterator[Row]:
        table: dict[SQLValue, list[Row]] = {}
        for row in self.left.execute(meter):
            meter.count("hash_build_rows")
            key = row[self._left_position]
            if key is not None:
                table.setdefault(key, []).append(row)
        for row in self.right.execute(meter):
            meter.count("hash_probe_rows")
            key = row[self._right_position]
            if key is None:
                continue
            for matched in table.get(key, ()):
                meter.count("join_output_rows")
                yield matched + row

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def label(self) -> str:
        return f"HashJoin[{self.left_key.sql()} = {self.right_key.sql()}]"


@dataclass
class IndexNestedLoopJoin(PlanNode):
    """For each outer row, probe the inner table through its index."""

    outer: PlanNode
    storage: TableStorage
    binding: str
    index_name: str
    outer_key: ColumnRef
    inner_predicates: list[WhereExpr] = field(default_factory=list)

    def __post_init__(self):
        inner_header = tuple(
            f"{self.binding}.{name}" for name in self.storage.schema.column_names
        )
        self.header = self.outer.header + inner_header
        self._outer_position = _column_position(self.outer.header, self.outer_key)
        self._compiled = [compile_predicate(inner_header, p) for p in self.inner_predicates]
        self._string_flags = [_is_string_predicate(p) for p in self.inner_predicates]

    def execute(self, meter: OperationMeter) -> Iterator[Row]:
        index = self.storage.index(self.index_name)
        for outer_row in self.outer.execute(meter):
            key = outer_row[self._outer_position]
            if key is None:
                continue
            meter.count("index_probes")
            for row_id in index.lookup((key,)):
                meter.count("index_row_fetches")
                inner_row = self.storage.row(row_id)
                accepted = True
                for predicate, is_string in zip(self._compiled, self._string_flags):
                    meter.count("string_filter_evals" if is_string else "filter_evals")
                    if not predicate(inner_row):
                        accepted = False
                        break
                if accepted:
                    meter.count("join_output_rows")
                    yield outer_row + inner_row

    def children(self) -> list[PlanNode]:
        return [self.outer]

    def label(self) -> str:
        return (
            f"IndexNestedLoopJoin({self.storage.schema.name} AS {self.binding} "
            f"via {self.index_name}, outer={self.outer_key.sql()})"
        )


@dataclass
class ProjectNode(PlanNode):
    """Column projection with output renaming."""

    child: PlanNode
    columns: list[ColumnRef]
    output_names: list[str]

    def __post_init__(self):
        self.header = tuple(self.output_names)
        self._positions = [_column_position(self.child.header, ref) for ref in self.columns]

    def execute(self, meter: OperationMeter) -> Iterator[Row]:
        positions = self._positions
        for row in self.child.execute(meter):
            meter.count("rows_output")
            yield tuple(row[position] for position in positions)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return "Project[" + ", ".join(self.header) + "]"


@dataclass
class DistinctNode(PlanNode):
    child: PlanNode

    def __post_init__(self):
        self.header = self.child.header

    def execute(self, meter: OperationMeter) -> Iterator[Row]:
        seen: set[Row] = set()
        for row in self.child.execute(meter):
            meter.count("distinct_rows")
            if row not in seen:
                seen.add(row)
                yield row

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return "Distinct"


@dataclass
class SortNode(PlanNode):
    """Blocking sort over (column, ascending) keys; NULLs sort first."""

    child: PlanNode
    keys: list[tuple[ColumnRef, bool]]

    def __post_init__(self):
        self.header = self.child.header
        self._positions = [
            (_column_position(self.header, ref), ascending) for ref, ascending in self.keys
        ]

    def execute(self, meter: OperationMeter) -> Iterator[Row]:
        rows = list(self.child.execute(meter))
        meter.count("sort_rows", len(rows))

        def key_for(position: int) -> Callable[[Row], tuple]:
            def key(row: Row) -> tuple:
                value = row[position]
                if value is None:
                    return (0, 0)
                if isinstance(value, bool):
                    return (1, int(value))
                if isinstance(value, (int, float)):
                    return (2, value)
                return (3, str(value))

            return key

        for position, ascending in reversed(self._positions):
            rows.sort(key=key_for(position), reverse=not ascending)
        yield from rows

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        keys = ", ".join(ref.sql() + ("" if asc else " DESC") for ref, asc in self.keys)
        return f"Sort[{keys}]"


@dataclass
class LimitNode(PlanNode):
    child: PlanNode
    limit: int | None = None
    offset: int | None = None

    def __post_init__(self):
        self.header = self.child.header

    def execute(self, meter: OperationMeter) -> Iterator[Row]:
        skipped = 0
        produced = 0
        for row in self.child.execute(meter):
            if self.offset and skipped < self.offset:
                skipped += 1
                continue
            if self.limit is not None and produced >= self.limit:
                return
            produced += 1
            yield row

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"Limit[{self.limit}, offset={self.offset}]"


@dataclass
class AggregateNode(PlanNode):
    """Hash aggregation: GROUP BY columns + aggregate functions.

    ``group_columns`` are resolved against the child's header; each
    aggregate is ``(function, column_position_or_None, output_name)``.
    COUNT ignores NULLs when given a column and counts rows for ``*``;
    SUM/AVG/MIN/MAX ignore NULLs and yield NULL over empty groups.
    """

    child: PlanNode
    group_columns: list[ColumnRef]
    aggregates: list[tuple[str, ColumnRef | None, str]]

    def __post_init__(self):
        self._group_positions = [
            _column_position(self.child.header, ref) for ref in self.group_columns
        ]
        self._aggregate_positions = [
            (function, _column_position(self.child.header, ref) if ref is not None else None)
            for function, ref, __ in self.aggregates
        ]
        group_names = tuple(self.child.header[p] for p in self._group_positions)
        self.header = group_names + tuple(name for __, __c, name in self.aggregates)

    def execute(self, meter: OperationMeter) -> Iterator[Row]:
        groups: dict[tuple, list[_Accumulator]] = {}
        for row in self.child.execute(meter):
            meter.count("hash_build_rows")
            key = tuple(row[position] for position in self._group_positions)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [
                    _Accumulator(function) for function, __ in self._aggregate_positions
                ]
                groups[key] = accumulators
            for accumulator, (__, position) in zip(accumulators, self._aggregate_positions):
                accumulator.add(row[position] if position is not None else 1)
        if not groups and not self._group_positions:
            # Aggregates over an empty input yield one row of identities.
            groups[()] = [_Accumulator(function) for function, __ in self._aggregate_positions]
        for key, accumulators in groups.items():
            meter.count("rows_output")
            yield key + tuple(accumulator.result() for accumulator in accumulators)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        rendered = ", ".join(name for __, __c, name in self.aggregates)
        by = ", ".join(ref.sql() for ref in self.group_columns)
        return f"Aggregate[{rendered}{' BY ' + by if by else ''}]"


class _Accumulator:
    """One aggregate function's running state."""

    __slots__ = ("function", "count", "total", "minimum", "maximum")

    def __init__(self, function: str):
        self.function = function
        self.count = 0
        self.total: float | int = 0
        self.minimum: SQLValue = None
        self.maximum: SQLValue = None

    def add(self, value: SQLValue) -> None:
        if value is None:
            return
        self.count += 1
        if self.function in ("SUM", "AVG") and isinstance(value, (int, float)):
            self.total += value
        if self.function == "MIN" and (self.minimum is None or value < self.minimum):
            self.minimum = value
        if self.function == "MAX" and (self.maximum is None or value > self.maximum):
            self.maximum = value

    def result(self) -> SQLValue:
        if self.function == "COUNT":
            return self.count
        if self.count == 0:
            return None
        if self.function == "SUM":
            return self.total
        if self.function == "AVG":
            return self.total / self.count
        if self.function == "MIN":
            return self.minimum
        return self.maximum


@dataclass
class CountNode(PlanNode):
    """COUNT(*) — consumes the child and emits a single-row count."""

    child: PlanNode

    def __post_init__(self):
        self.header = ("count",)

    def execute(self, meter: OperationMeter) -> Iterator[Row]:
        count = 0
        for __ in self.child.execute(meter):
            count += 1
        meter.count("rows_output")
        yield (count,)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return "Count(*)"
