"""Tokenizer for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass

from ...exceptions import SQLParseError

_PUNCTUATION = ("<>", "!=", "<=", ">=", "(", ")", ",", ".", ";", "*", "=", "<", ">")

KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "JOIN",
        "INNER",
        "ON",
        "AND",
        "OR",
        "NOT",
        "LIKE",
        "IN",
        "IS",
        "NULL",
        "AS",
        "ORDER",
        "BY",
        "ASC",
        "DESC",
        "LIMIT",
        "OFFSET",
        "INSERT",
        "INTO",
        "UPDATE",
        "SET",
        "DELETE",
        "VALUES",
        "CREATE",
        "TABLE",
        "INDEX",
        "UNIQUE",
        "PRIMARY",
        "KEY",
        "FOREIGN",
        "REFERENCES",
        "COUNT",
        "SUM",
        "AVG",
        "MIN",
        "MAX",
        "GROUP",
        "HAVING",
        "TRUE",
        "FALSE",
    }
)


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # IDENT | KEYWORD | STRING | INTEGER | REAL | PUNCT | EOF
    value: str
    position: int


class Lexer:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> SQLParseError:
        return SQLParseError(f"{message} (near position {self.pos})")

    def tokens(self) -> list[Token]:
        result: list[Token] = []
        while True:
            token = self._next()
            result.append(token)
            if token.kind == "EOF":
                return result

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _next(self) -> Token:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\r\n":
            self.pos += 1
        if self.pos >= len(self.text):
            return Token("EOF", "", self.pos)
        start = self.pos
        char = self.text[self.pos]
        if char == "-" and self._peek(1) == "-":  # line comment
            while self.pos < len(self.text) and self.text[self.pos] != "\n":
                self.pos += 1
            return self._next()
        if char == "'":
            return self._read_string(start)
        if char.isdigit():
            return self._read_number(start)
        if char == "-" and self._peek(1).isdigit():
            # negative numeric literal (the subset has no arithmetic, so a
            # dash followed by a digit is always a signed constant)
            self.pos += 1
            return self._read_number(start)
        if char.isalpha() or char == "_":
            return self._read_word(start)
        if char == '"' or char == "`":  # quoted identifier
            return self._read_quoted_identifier(start, char)
        for punct in _PUNCTUATION:
            if self.text.startswith(punct, self.pos):
                self.pos += len(punct)
                return Token("PUNCT", punct, start)
        raise self.error(f"unexpected character {char!r}")

    def _read_string(self, start: int) -> Token:
        self.pos += 1
        parts: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self.error("unterminated string literal")
            char = self.text[self.pos]
            if char == "'":
                if self._peek(1) == "'":  # escaped quote
                    parts.append("'")
                    self.pos += 2
                    continue
                self.pos += 1
                return Token("STRING", "".join(parts), start)
            parts.append(char)
            self.pos += 1

    def _read_number(self, start: int) -> Token:
        saw_dot = False
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char.isdigit():
                self.pos += 1
            elif char == "." and not saw_dot and self._peek(1).isdigit():
                saw_dot = True
                self.pos += 1
            else:
                break
        value = self.text[start:self.pos]
        return Token("REAL" if saw_dot else "INTEGER", value, start)

    def _read_word(self, start: int) -> Token:
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] == "_"
        ):
            self.pos += 1
        word = self.text[start:self.pos]
        if word.upper() in KEYWORDS:
            return Token("KEYWORD", word.upper(), start)
        return Token("IDENT", word, start)

    def _read_quoted_identifier(self, start: int, quote: str) -> Token:
        self.pos += 1
        end = self.text.find(quote, self.pos)
        if end < 0:
            raise self.error("unterminated quoted identifier")
        value = self.text[self.pos:end]
        self.pos = end + 1
        return Token("IDENT", value, start)


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SQLParseError` on bad input."""
    return Lexer(text).tokens()
