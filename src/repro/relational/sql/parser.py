"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from ...exceptions import SQLParseError
from ..types import SQLType, SQLValue
from .ast import (
    AggregateCall,
    AndExpr,
    ColumnDef,
    ColumnRef,
    Comparison,
    Constant,
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    InPredicate,
    InsertStatement,
    IsNullPredicate,
    JoinClause,
    LikePredicate,
    NotExpr,
    Operand,
    OrExpr,
    OrderItem,
    SelectItem,
    SelectStatement,
    Statement,
    TableRef,
    UpdateStatement,
    WhereExpr,
)
from .lexer import Token, tokenize

_COMPARISON_OPERATORS = {"=": "=", "<>": "<>", "!=": "<>", "<": "<", ">": ">", "<=": "<=", ">=": ">="}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def error(self, message: str) -> SQLParseError:
        token = self.peek()
        return SQLParseError(f"{message}, found {token.value!r} (position {token.position})")

    def at_keyword(self, *values: str) -> bool:
        token = self.peek()
        return token.kind == "KEYWORD" and token.value in values

    def at_punct(self, value: str) -> bool:
        token = self.peek()
        return token.kind == "PUNCT" and token.value == value

    def expect_keyword(self, value: str) -> Token:
        if not self.at_keyword(value):
            raise self.error(f"expected {value}")
        return self.advance()

    def expect_punct(self, value: str) -> Token:
        if not self.at_punct(value):
            raise self.error(f"expected {value!r}")
        return self.advance()

    def expect_identifier(self, what: str = "identifier") -> str:
        token = self.peek()
        if token.kind != "IDENT":
            raise self.error(f"expected {what}")
        self.advance()
        return token.value

    # -- entry --------------------------------------------------------------

    def parse_statement(self) -> Statement:
        if self.at_keyword("SELECT"):
            statement = self.parse_select()
        elif self.at_keyword("INSERT"):
            statement = self.parse_insert()
        elif self.at_keyword("UPDATE"):
            statement = self.parse_update()
        elif self.at_keyword("DELETE"):
            statement = self.parse_delete()
        elif self.at_keyword("CREATE"):
            statement = self.parse_create()
        else:
            raise self.error("expected SELECT, INSERT, UPDATE, DELETE or CREATE")
        if self.at_punct(";"):
            self.advance()
        if self.peek().kind != "EOF":
            raise self.error("unexpected trailing input")
        return statement

    # -- SELECT -------------------------------------------------------------

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        distinct = False
        if self.at_keyword("DISTINCT"):
            distinct = True
            self.advance()
        count_star = False
        items: list = None
        if self.at_punct("*"):
            self.advance()
        else:
            items = [self.parse_select_item()]
            while self.at_punct(","):
                self.advance()
                items.append(self.parse_select_item())
            if (
                len(items) == 1
                and isinstance(items[0], AggregateCall)
                and items[0].function == "COUNT"
                and items[0].column is None
                and items[0].alias is None
            ):
                # plain SELECT COUNT(*): keep the simple executor path
                count_star = True
                items = None
        self.expect_keyword("FROM")
        table = self.parse_table_ref()
        joins: list[JoinClause] = []
        while self.at_keyword("JOIN", "INNER"):
            if self.at_keyword("INNER"):
                self.advance()
            self.expect_keyword("JOIN")
            join_table = self.parse_table_ref()
            self.expect_keyword("ON")
            left = self.parse_column_ref()
            self.expect_punct("=")
            right = self.parse_column_ref()
            joins.append(JoinClause(join_table, left, right))
        where: WhereExpr | None = None
        if self.at_keyword("WHERE"):
            self.advance()
            where = self.parse_where()
        group_by: list[ColumnRef] = []
        having: WhereExpr | None = None
        if self.at_keyword("GROUP"):
            self.advance()
            self.expect_keyword("BY")
            group_by.append(self.parse_column_ref())
            while self.at_punct(","):
                self.advance()
                group_by.append(self.parse_column_ref())
        if self.at_keyword("HAVING"):
            self.advance()
            having = self.parse_where()
        order_by: list[OrderItem] = []
        if self.at_keyword("ORDER"):
            self.advance()
            self.expect_keyword("BY")
            order_by.append(self.parse_order_item())
            while self.at_punct(","):
                self.advance()
                order_by.append(self.parse_order_item())
        limit = offset = None
        if self.at_keyword("LIMIT"):
            self.advance()
            limit = self.parse_integer("LIMIT")
        if self.at_keyword("OFFSET"):
            self.advance()
            offset = self.parse_integer("OFFSET")
        return SelectStatement(
            items=items,
            table=table,
            joins=joins,
            where=where,
            distinct=distinct,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            count_star=count_star,
        )

    def parse_integer(self, clause: str) -> int:
        token = self.peek()
        if token.kind != "INTEGER":
            raise self.error(f"{clause} expects an integer")
        self.advance()
        return int(token.value)

    def parse_select_item(self) -> SelectItem | AggregateCall:
        if self.at_keyword("COUNT", "SUM", "AVG", "MIN", "MAX"):
            function = self.advance().value
            self.expect_punct("(")
            column: ColumnRef | None = None
            if self.at_punct("*"):
                if function != "COUNT":
                    raise self.error(f"{function}(*) is not valid SQL")
                self.advance()
            else:
                column = self.parse_column_ref()
            self.expect_punct(")")
            alias = self.parse_optional_alias()
            return AggregateCall(function, column, alias)
        column = self.parse_column_ref()
        return SelectItem(column, self.parse_optional_alias())

    def parse_optional_alias(self) -> str | None:
        if self.at_keyword("AS"):
            self.advance()
            return self.expect_identifier("alias")
        if self.peek().kind == "IDENT":
            return self.advance().value
        return None

    def parse_table_ref(self) -> TableRef:
        name = self.expect_identifier("table name")
        alias = None
        if self.at_keyword("AS"):
            self.advance()
            alias = self.expect_identifier("alias")
        elif self.peek().kind == "IDENT":
            alias = self.advance().value
        return TableRef(name, alias)

    def parse_column_ref(self) -> ColumnRef:
        first = self.expect_identifier("column name")
        if self.at_punct("."):
            self.advance()
            second = self.expect_identifier("column name")
            return ColumnRef(first, second)
        return ColumnRef(None, first)

    def parse_order_item(self) -> OrderItem:
        column = self.parse_column_ref()
        ascending = True
        if self.at_keyword("ASC"):
            self.advance()
        elif self.at_keyword("DESC"):
            self.advance()
            ascending = False
        return OrderItem(column, ascending)

    # -- WHERE --------------------------------------------------------------

    def parse_where(self) -> WhereExpr:
        return self.parse_or_expr()

    def parse_or_expr(self) -> WhereExpr:
        operands = [self.parse_and_expr()]
        while self.at_keyword("OR"):
            self.advance()
            operands.append(self.parse_and_expr())
        if len(operands) == 1:
            return operands[0]
        return OrExpr(tuple(operands))

    def parse_and_expr(self) -> WhereExpr:
        operands = [self.parse_not_expr()]
        while self.at_keyword("AND"):
            self.advance()
            operands.append(self.parse_not_expr())
        if len(operands) == 1:
            return operands[0]
        return AndExpr(tuple(operands))

    def parse_not_expr(self) -> WhereExpr:
        if self.at_keyword("NOT"):
            self.advance()
            return NotExpr(self.parse_not_expr())
        return self.parse_predicate()

    def parse_predicate(self) -> WhereExpr:
        if self.at_punct("("):
            self.advance()
            inner = self.parse_or_expr()
            self.expect_punct(")")
            return inner
        left = self.parse_operand()
        if self.at_keyword("IS"):
            self.advance()
            negated = False
            if self.at_keyword("NOT"):
                self.advance()
                negated = True
            self.expect_keyword("NULL")
            if not isinstance(left, ColumnRef):
                raise self.error("IS NULL expects a column")
            return IsNullPredicate(left, negated)
        negated = False
        if self.at_keyword("NOT"):
            self.advance()
            negated = True
        if self.at_keyword("LIKE"):
            self.advance()
            token = self.peek()
            if token.kind != "STRING":
                raise self.error("LIKE expects a string pattern")
            self.advance()
            if not isinstance(left, ColumnRef):
                raise self.error("LIKE expects a column on the left")
            return LikePredicate(left, token.value, negated)
        if self.at_keyword("IN"):
            self.advance()
            self.expect_punct("(")
            values = [self.parse_constant_value()]
            while self.at_punct(","):
                self.advance()
                values.append(self.parse_constant_value())
            self.expect_punct(")")
            if not isinstance(left, ColumnRef):
                raise self.error("IN expects a column on the left")
            return InPredicate(left, tuple(values), negated)
        if negated:
            raise self.error("expected LIKE or IN after NOT")
        token = self.peek()
        if token.kind == "PUNCT" and token.value in _COMPARISON_OPERATORS:
            self.advance()
            right = self.parse_operand()
            return Comparison(_COMPARISON_OPERATORS[token.value], left, right)
        raise self.error("expected a comparison, LIKE, IN or IS NULL")

    def parse_operand(self) -> Operand:
        token = self.peek()
        if token.kind == "IDENT":
            return self.parse_column_ref()
        return Constant(self.parse_constant_value())

    def parse_constant_value(self) -> SQLValue:
        token = self.peek()
        if token.kind == "STRING":
            self.advance()
            return token.value
        if token.kind == "INTEGER":
            self.advance()
            return int(token.value)
        if token.kind == "REAL":
            self.advance()
            return float(token.value)
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            self.advance()
            return token.value == "TRUE"
        if token.kind == "KEYWORD" and token.value == "NULL":
            self.advance()
            return None
        raise self.error("expected a literal value")

    # -- INSERT -------------------------------------------------------------

    def parse_insert(self) -> InsertStatement:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_identifier("table name")
        columns: list[str] | None = None
        if self.at_punct("("):
            self.advance()
            columns = [self.expect_identifier("column name")]
            while self.at_punct(","):
                self.advance()
                columns.append(self.expect_identifier("column name"))
            self.expect_punct(")")
        self.expect_keyword("VALUES")
        rows: list[list[SQLValue]] = [self.parse_value_row()]
        while self.at_punct(","):
            self.advance()
            rows.append(self.parse_value_row())
        return InsertStatement(table, columns, rows)

    def parse_value_row(self) -> list[SQLValue]:
        self.expect_punct("(")
        values = [self.parse_constant_value()]
        while self.at_punct(","):
            self.advance()
            values.append(self.parse_constant_value())
        self.expect_punct(")")
        return values

    # -- UPDATE / DELETE ------------------------------------------------------

    def parse_update(self) -> UpdateStatement:
        self.expect_keyword("UPDATE")
        table = self.expect_identifier("table name")
        self.expect_keyword("SET")
        assignments = [self.parse_assignment()]
        while self.at_punct(","):
            self.advance()
            assignments.append(self.parse_assignment())
        where = None
        if self.at_keyword("WHERE"):
            self.advance()
            where = self.parse_where()
        return UpdateStatement(table, assignments, where)

    def parse_assignment(self) -> tuple[str, SQLValue]:
        column = self.expect_identifier("column name")
        self.expect_punct("=")
        return column, self.parse_constant_value()

    def parse_delete(self) -> DeleteStatement:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_identifier("table name")
        where = None
        if self.at_keyword("WHERE"):
            self.advance()
            where = self.parse_where()
        return DeleteStatement(table, where)

    # -- CREATE -------------------------------------------------------------

    def parse_create(self) -> Statement:
        self.expect_keyword("CREATE")
        if self.at_keyword("TABLE"):
            return self.parse_create_table()
        unique = False
        if self.at_keyword("UNIQUE"):
            unique = True
            self.advance()
        if self.at_keyword("INDEX"):
            return self.parse_create_index(unique)
        raise self.error("expected TABLE or INDEX after CREATE")

    def parse_create_table(self) -> CreateTableStatement:
        self.expect_keyword("TABLE")
        table = self.expect_identifier("table name")
        self.expect_punct("(")
        columns: list[ColumnDef] = []
        primary_key: tuple[str, ...] = ()
        foreign_keys: list[tuple[str, str, str]] = []
        while True:
            if self.at_keyword("PRIMARY"):
                self.advance()
                self.expect_keyword("KEY")
                self.expect_punct("(")
                key = [self.expect_identifier("column name")]
                while self.at_punct(","):
                    self.advance()
                    key.append(self.expect_identifier("column name"))
                self.expect_punct(")")
                primary_key = tuple(key)
            elif self.at_keyword("FOREIGN"):
                self.advance()
                self.expect_keyword("KEY")
                self.expect_punct("(")
                column = self.expect_identifier("column name")
                self.expect_punct(")")
                self.expect_keyword("REFERENCES")
                referenced_table = self.expect_identifier("table name")
                self.expect_punct("(")
                referenced_column = self.expect_identifier("column name")
                self.expect_punct(")")
                foreign_keys.append((column, referenced_table, referenced_column))
            else:
                columns.append(self.parse_column_def())
            if self.at_punct(","):
                self.advance()
                continue
            break
        self.expect_punct(")")
        return CreateTableStatement(table, columns, primary_key, foreign_keys)

    def parse_column_def(self) -> ColumnDef:
        name = self.expect_identifier("column name")
        token = self.peek()
        if token.kind not in ("IDENT", "KEYWORD"):
            raise self.error("expected a column type")
        self.advance()
        sql_type = SQLType.from_name(token.value)
        nullable = True
        primary_key = False
        while True:
            if self.at_keyword("NOT"):
                self.advance()
                self.expect_keyword("NULL")
                nullable = False
            elif self.at_keyword("PRIMARY"):
                self.advance()
                self.expect_keyword("KEY")
                primary_key = True
                nullable = False
            else:
                break
        return ColumnDef(name, sql_type, nullable, primary_key)

    def parse_create_index(self, unique: bool) -> CreateIndexStatement:
        self.expect_keyword("INDEX")
        name = self.expect_identifier("index name")
        self.expect_keyword("ON")
        table = self.expect_identifier("table name")
        self.expect_punct("(")
        columns = [self.expect_identifier("column name")]
        while self.at_punct(","):
            self.advance()
            columns.append(self.expect_identifier("column name"))
        self.expect_punct(")")
        return CreateIndexStatement(name, table, tuple(columns), unique)


def parse_statement(text: str) -> Statement:
    """Parse one SQL statement."""
    return _Parser(tokenize(text)).parse_statement()


def parse_select(text: str) -> SelectStatement:
    """Parse a SELECT statement; raises when the text is another statement."""
    statement = parse_statement(text)
    if not isinstance(statement, SelectStatement):
        raise SQLParseError("expected a SELECT statement")
    return statement
