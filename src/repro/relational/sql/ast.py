"""AST for the SQL subset understood by the relational substrate.

The subset covers what the SPARQL-to-SQL translator emits and what the
benchmarks need: SELECT with inner joins, conjunctive/disjunctive WHERE
clauses (comparisons, LIKE, IN, IS NULL), DISTINCT, ORDER BY, LIMIT/OFFSET,
COUNT(*) aggregation, plus INSERT, CREATE TABLE and CREATE INDEX.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

from ..types import SQLType, SQLValue


@dataclass(frozen=True, slots=True)
class ColumnRef:
    """A possibly table-qualified column reference."""

    table: str | None
    column: str

    def qualified(self, default_table: str | None = None) -> str:
        table = self.table or default_table
        return f"{table}.{self.column}" if table else self.column

    def sql(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True, slots=True)
class Constant:
    """A literal value in a SQL expression."""

    value: SQLValue

    def sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


Operand = Union[ColumnRef, Constant]


@dataclass(frozen=True, slots=True)
class Comparison:
    """``left OP right`` where OP in =, <>, <, >, <=, >=."""

    operator: str
    left: Operand
    right: Operand

    def sql(self) -> str:
        return f"{self.left.sql()} {self.operator} {self.right.sql()}"


@dataclass(frozen=True, slots=True)
class LikePredicate:
    """``column [NOT] LIKE pattern`` with SQL ``%`` / ``_`` wildcards."""

    column: ColumnRef
    pattern: str
    negated: bool = False

    def sql(self) -> str:
        negation = "NOT " if self.negated else ""
        escaped = self.pattern.replace("'", "''")
        return f"{self.column.sql()} {negation}LIKE '{escaped}'"


@dataclass(frozen=True, slots=True)
class InPredicate:
    """``column [NOT] IN (v1, v2, ...)``."""

    column: ColumnRef
    values: tuple[SQLValue, ...]
    negated: bool = False

    def sql(self) -> str:
        rendered = ", ".join(Constant(value).sql() for value in self.values)
        negation = "NOT " if self.negated else ""
        return f"{self.column.sql()} {negation}IN ({rendered})"


@dataclass(frozen=True, slots=True)
class IsNullPredicate:
    """``column IS [NOT] NULL``."""

    column: ColumnRef
    negated: bool = False

    def sql(self) -> str:
        negation = "NOT " if self.negated else ""
        return f"{self.column.sql()} IS {negation}NULL"


@dataclass(frozen=True, slots=True)
class NotExpr:
    operand: "WhereExpr"

    def sql(self) -> str:
        return f"NOT ({self.operand.sql()})"


@dataclass(frozen=True, slots=True)
class AndExpr:
    operands: tuple["WhereExpr", ...]

    def sql(self) -> str:
        return " AND ".join(
            f"({operand.sql()})" if isinstance(operand, OrExpr) else operand.sql()
            for operand in self.operands
        )


@dataclass(frozen=True, slots=True)
class OrExpr:
    operands: tuple["WhereExpr", ...]

    def sql(self) -> str:
        return " OR ".join(operand.sql() for operand in self.operands)


WhereExpr = Union[Comparison, LikePredicate, InPredicate, IsNullPredicate, NotExpr, AndExpr, OrExpr]


def conjuncts(expression: WhereExpr | None) -> list[WhereExpr]:
    """Flatten a WHERE expression into its top-level AND-ed conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, AndExpr):
        result: list[WhereExpr] = []
        for operand in expression.operands:
            result.extend(conjuncts(operand))
        return result
    return [expression]


def conjunction(parts: Sequence[WhereExpr]) -> WhereExpr | None:
    """Combine conjuncts back into a single expression (None when empty)."""
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return AndExpr(tuple(parts))


#: Aggregate functions the engine evaluates.
AGGREGATE_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


@dataclass(frozen=True, slots=True)
class AggregateCall:
    """An aggregate select item: ``FUNC(column)`` or ``COUNT(*)``.

    ``column is None`` means ``COUNT(*)``.
    """

    function: str  # one of AGGREGATE_FUNCTIONS
    column: ColumnRef | None = None
    alias: str | None = None

    def sql(self) -> str:
        argument = self.column.sql() if self.column is not None else "*"
        rendered = f"{self.function}({argument})"
        return f"{rendered} AS {self.alias}" if self.alias else rendered

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        argument = self.column.column if self.column is not None else "star"
        return f"{self.function.lower()}_{argument}"


@dataclass(frozen=True, slots=True)
class SelectItem:
    """One projected column with an optional alias."""

    expr: ColumnRef
    alias: str | None = None

    def sql(self) -> str:
        return f"{self.expr.sql()} AS {self.alias}" if self.alias else self.expr.sql()

    @property
    def output_name(self) -> str:
        return self.alias or self.expr.column


@dataclass(frozen=True, slots=True)
class TableRef:
    """A table in the FROM clause, with an optional alias."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name the table is referred to by inside the query."""
        return self.alias or self.name

    def sql(self) -> str:
        return f"{self.name} AS {self.alias}" if self.alias else self.name


@dataclass(frozen=True, slots=True)
class JoinClause:
    """``JOIN table ON left = right`` (inner join, equality only)."""

    table: TableRef
    left: ColumnRef
    right: ColumnRef

    def sql(self) -> str:
        return f"JOIN {self.table.sql()} ON {self.left.sql()} = {self.right.sql()}"


@dataclass(frozen=True, slots=True)
class OrderItem:
    column: ColumnRef
    ascending: bool = True

    def sql(self) -> str:
        return self.column.sql() + ("" if self.ascending else " DESC")


@dataclass
class SelectStatement:
    """A parsed (or programmatically built) SELECT query.

    ``items`` mixes plain columns and :class:`AggregateCall`s; aggregates
    require every bare column to appear in ``group_by`` (enforced by the
    planner).  ``count_star`` is kept as a convenience flag for the common
    ``SELECT COUNT(*)`` form (equivalent to a lone AggregateCall).
    """

    items: list[SelectItem | AggregateCall] | None  # None means SELECT *
    table: TableRef
    joins: list[JoinClause] = field(default_factory=list)
    where: WhereExpr | None = None
    distinct: bool = False
    group_by: list[ColumnRef] = field(default_factory=list)
    #: HAVING predicate; may reference select-list aliases / output names.
    having: WhereExpr | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    offset: int | None = None
    count_star: bool = False

    def has_aggregates(self) -> bool:
        if self.count_star:
            return True
        if self.items is None:
            return False
        return any(isinstance(item, AggregateCall) for item in self.items)

    def sql(self) -> str:
        """Render back to SQL text (canonical layout)."""
        if self.count_star:
            projection = "COUNT(*)"
        elif self.items is None:
            projection = "*"
        else:
            projection = ", ".join(item.sql() for item in self.items)
        distinct = "DISTINCT " if self.distinct else ""
        parts = [f"SELECT {distinct}{projection}", f"FROM {self.table.sql()}"]
        parts.extend(join.sql() for join in self.joins)
        if self.where is not None:
            parts.append(f"WHERE {self.where.sql()}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(ref.sql() for ref in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having.sql()}")
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(item.sql() for item in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.offset is not None:
            parts.append(f"OFFSET {self.offset}")
        return " ".join(parts)

    def referenced_tables(self) -> list[TableRef]:
        return [self.table] + [join.table for join in self.joins]


@dataclass
class InsertStatement:
    table: str
    columns: list[str] | None
    rows: list[list[SQLValue]]

    def sql(self) -> str:
        columns = f" ({', '.join(self.columns)})" if self.columns else ""
        rendered_rows = ", ".join(
            "(" + ", ".join(Constant(value).sql() for value in row) + ")" for row in self.rows
        )
        return f"INSERT INTO {self.table}{columns} VALUES {rendered_rows}"


@dataclass(frozen=True, slots=True)
class ColumnDef:
    name: str
    sql_type: SQLType
    nullable: bool = True
    primary_key: bool = False


@dataclass
class CreateTableStatement:
    table: str
    columns: list[ColumnDef]
    primary_key: tuple[str, ...] = ()
    foreign_keys: list[tuple[str, str, str]] = field(default_factory=list)  # (col, ref_table, ref_col)


@dataclass
class CreateIndexStatement:
    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False


@dataclass
class UpdateStatement:
    """``UPDATE table SET col = value, ... [WHERE ...]``."""

    table: str
    assignments: list[tuple[str, SQLValue]]
    where: WhereExpr | None = None

    def sql(self) -> str:
        sets = ", ".join(
            f"{column} = {Constant(value).sql()}" for column, value in self.assignments
        )
        clause = f" WHERE {self.where.sql()}" if self.where is not None else ""
        return f"UPDATE {self.table} SET {sets}{clause}"


@dataclass
class DeleteStatement:
    """``DELETE FROM table [WHERE ...]``."""

    table: str
    where: WhereExpr | None = None

    def sql(self) -> str:
        clause = f" WHERE {self.where.sql()}" if self.where is not None else ""
        return f"DELETE FROM {self.table}{clause}"


Statement = Union[
    SelectStatement,
    InsertStatement,
    UpdateStatement,
    DeleteStatement,
    CreateTableStatement,
    CreateIndexStatement,
]
