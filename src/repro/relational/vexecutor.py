"""Vectorized relational statement execution for the batch data plane.

The row-mode SQL wrapper pulls a plan's ``execute(meter)`` generator one row
at a time and re-prices the meter's cumulative counts after every row — per
row that is a handful of generator resumes, dict updates and an O(kinds)
priced sum.  This module executes the same plan eagerly, tracking for every
*output row* the cumulative operation counts as plain integer lists, and
then prices all rows at once with a few NumPy array operations.

Bit-identity argument (the numbers the wrapper charges must equal row mode's
to the last ULP):

* **Counts are exact.** All meter counts are small integers, exactly
  representable in float64; the per-node loops below replicate the row
  executor's counting statements one for one, so the cumulative count of
  every kind at every output row is the same integer.
* **Order of summation.** Row mode prices a snapshot by summing
  ``price * count`` in the meter dict's insertion order — the order in
  which kinds *first fired*.  The static per-plan kind order used here is
  the program order of the counting statements (children before own
  kinds).  Every kind of a subtree that fires at all fires no later than
  the subtree's first output row (rejected rows only evaluate predicate
  prefixes that accepted rows evaluate fully), so among kinds with nonzero
  counts the static order equals first-fire order; kinds not yet (or
  never) fired contribute exactly ``+0.0``, which is an exact identity on
  a non-negative accumulator.
* **Same IEEE ops.** NumPy's elementwise ``*``/``+``/``-`` on float64 are
  the same IEEE-754 operations the scalar code performs per row.

Unsupported node shapes (aggregation, anything unknown) fall back to
:func:`drained_reference`, which drains the row executor once and prices
meter snapshots with the row-mode arithmetic — always correct, still far
cheaper than the row-mode pull chain.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..network.costmodel import CostModel
from .executor import (
    DistinctNode,
    FilterNode,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    LimitNode,
    PlanNode,
    ProjectNode,
    Row,
    SeqScan,
    SortNode,
)
from .meter import OperationMeter

#: (output rows, per-row charge deltas, residual charge after the last row)
PricedRows = tuple[list[Row], list[float], float]


class _VStream:
    """An eagerly-executed subtree: rows plus cumulative counts per row."""

    __slots__ = ("rows", "counts", "final", "order")

    def __init__(
        self,
        rows: list[Row],
        counts: dict[str, list[int]],
        final: dict[str, int],
        order: list[str],
    ):
        self.rows = rows
        #: kind -> cumulative count at the moment each row was output.
        self.counts = counts
        #: kind -> cumulative count after the subtree fully drained.
        self.final = final
        #: Static first-fire order of the kinds (see module docstring).
        self.order = order


def _add_kind(
    counts: dict[str, list[int]],
    final: dict[str, int],
    order: list[str],
    kind: str,
    cumulative: list[int],
    total: int,
) -> None:
    """Fold one kind's cumulative list into a stream being assembled."""
    existing = counts.get(kind)
    if existing is None:
        counts[kind] = cumulative
        order.append(kind)
    else:
        counts[kind] = [a + b for a, b in zip(existing, cumulative)]
    final[kind] = final.get(kind, 0) + total


def _sampled(child: _VStream, keep: list[int]) -> tuple[dict[str, list[int]], list[str]]:
    """Child cumulative counts sampled at the surviving row indices."""
    counts = {
        kind: [cumulative[i] for i in keep] for kind, cumulative in child.counts.items()
    }
    return counts, list(child.order)


def _v_seqscan(node: SeqScan) -> _VStream:
    live = node.storage.live_rows()
    compiled = node._compiled
    if not compiled:
        n = len(live)
        return _VStream(
            live,
            {"rows_scanned": list(range(1, n + 1))},
            {"rows_scanned": n},
            ["rows_scanned"],
        )
    flags = node._string_flags
    rows: list[Row] = []
    scanned_cum: list[int] = []
    eval_cums: list[list[int]] = [[] for __ in compiled]
    evals = [0] * len(compiled)
    scanned = 0
    for row in live:
        scanned += 1
        accepted = True
        for j, predicate in enumerate(compiled):
            evals[j] += 1
            if not predicate(row):
                accepted = False
                break
        if accepted:
            rows.append(row)
            scanned_cum.append(scanned)
            for j, count in enumerate(evals):
                eval_cums[j].append(count)
    counts = {"rows_scanned": scanned_cum}
    final = {"rows_scanned": scanned}
    order = ["rows_scanned"]
    for j, is_string in enumerate(flags):
        kind = "string_filter_evals" if is_string else "filter_evals"
        _add_kind(counts, final, order, kind, eval_cums[j], evals[j])
    return _VStream(rows, counts, final, order)


def _v_indexscan(node: IndexScan) -> _VStream:
    index = node.storage.index(node.index_name)
    entries: list[tuple[int, int]] = []  # (probes so far, row_id)
    probes = 0
    if node.equality_key is not None:
        probes = 1
        entries = [(1, row_id) for row_id in index.lookup(node.equality_key)]
    elif node.in_keys is not None:
        for key in node.in_keys:
            probes += 1
            for row_id in index.lookup(key):
                entries.append((probes, row_id))
    else:
        probes = 1
        entries = [
            (1, row_id)
            for row_id in index.scan_range(
                node.range_low, node.range_high, node.include_low, node.include_high
            )
        ]
    compiled = node._compiled
    flags = node._string_flags
    storage_row = node.storage.row
    rows: list[Row] = []
    probe_cum: list[int] = []
    fetch_cum: list[int] = []
    eval_cums: list[list[int]] = [[] for __ in compiled]
    evals = [0] * len(compiled)
    fetches = 0
    for probes_at, row_id in entries:
        fetches += 1
        row = storage_row(row_id)
        accepted = True
        for j, predicate in enumerate(compiled):
            evals[j] += 1
            if not predicate(row):
                accepted = False
                break
        if accepted:
            rows.append(row)
            probe_cum.append(probes_at)
            fetch_cum.append(fetches)
            for j, count in enumerate(evals):
                eval_cums[j].append(count)
    counts = {"index_probes": probe_cum, "index_row_fetches": fetch_cum}
    final = {"index_probes": probes, "index_row_fetches": fetches}
    order = ["index_probes", "index_row_fetches"]
    for j, is_string in enumerate(flags):
        kind = "string_filter_evals" if is_string else "filter_evals"
        _add_kind(counts, final, order, kind, eval_cums[j], evals[j])
    return _VStream(rows, counts, final, order)


def _v_filter(node: FilterNode) -> _VStream | None:
    child = _vrun(node.child)
    if child is None:
        return None
    compiled = node._compiled
    flags = node._string_flags
    rows: list[Row] = []
    keep: list[int] = []
    eval_cums: list[list[int]] = [[] for __ in compiled]
    evals = [0] * len(compiled)
    for i, row in enumerate(child.rows):
        accepted = True
        for j, predicate in enumerate(compiled):
            evals[j] += 1
            if not predicate(row):
                accepted = False
                break
        if accepted:
            rows.append(row)
            keep.append(i)
            for j, count in enumerate(evals):
                eval_cums[j].append(count)
    counts, order = _sampled(child, keep)
    final = dict(child.final)
    for j, is_string in enumerate(flags):
        kind = "string_filter_evals" if is_string else "filter_evals"
        _add_kind(counts, final, order, kind, eval_cums[j], evals[j])
    return _VStream(rows, counts, final, order)


def _v_hashjoin(node: HashJoin) -> _VStream | None:
    left = _vrun(node.left)
    if left is None:
        return None
    right = _vrun(node.right)
    if right is None:
        return None
    left_position = node._left_position
    table: dict[object, list[Row]] = {}
    for row in left.rows:
        key = row[left_position]
        if key is not None:
            table.setdefault(key, []).append(row)
    n_left = len(left.rows)
    right_position = node._right_position
    rows: list[Row] = []
    keep_right: list[int] = []
    out_cum: list[int] = []
    produced = 0
    empty: tuple[Row, ...] = ()
    for i, row in enumerate(right.rows):
        key = row[right_position]
        if key is None:
            continue
        for matched in table.get(key, empty):
            produced += 1
            rows.append(matched + row)
            keep_right.append(i)
            out_cum.append(produced)
    n_out = len(rows)
    # At any output row the build side has fully drained: the left child's
    # counts (and the build counter) are constants.
    counts: dict[str, list[int]] = {
        kind: [left.final.get(kind, 0)] * n_out for kind in left.order
    }
    final = dict(left.final)
    order = list(left.order)
    _add_kind(counts, final, order, "hash_build_rows", [n_left] * n_out, n_left)
    for kind in right.order:
        _add_kind(
            counts,
            final,
            order,
            kind,
            [right.counts[kind][i] for i in keep_right],
            right.final.get(kind, 0),
        )
    probe_cum = [i + 1 for i in keep_right]
    _add_kind(counts, final, order, "hash_probe_rows", probe_cum, len(right.rows))
    _add_kind(counts, final, order, "join_output_rows", out_cum, produced)
    return _VStream(rows, counts, final, order)


def _v_inlj(node: IndexNestedLoopJoin) -> _VStream | None:
    outer = _vrun(node.outer)
    if outer is None:
        return None
    index = node.storage.index(node.index_name)
    storage_row = node.storage.row
    outer_position = node._outer_position
    compiled = node._compiled
    flags = node._string_flags
    rows: list[Row] = []
    keep_outer: list[int] = []
    probe_cum: list[int] = []
    fetch_cum: list[int] = []
    out_cum: list[int] = []
    eval_cums: list[list[int]] = [[] for __ in compiled]
    evals = [0] * len(compiled)
    probes = 0
    fetches = 0
    produced = 0
    for i, outer_row in enumerate(outer.rows):
        key = outer_row[outer_position]
        if key is None:
            continue
        probes += 1
        for row_id in index.lookup((key,)):
            fetches += 1
            inner_row = storage_row(row_id)
            accepted = True
            for j, predicate in enumerate(compiled):
                evals[j] += 1
                if not predicate(inner_row):
                    accepted = False
                    break
            if accepted:
                produced += 1
                rows.append(outer_row + inner_row)
                keep_outer.append(i)
                probe_cum.append(probes)
                fetch_cum.append(fetches)
                out_cum.append(produced)
                for j, count in enumerate(evals):
                    eval_cums[j].append(count)
    counts, order = _sampled(outer, keep_outer)
    final = dict(outer.final)
    _add_kind(counts, final, order, "index_probes", probe_cum, probes)
    _add_kind(counts, final, order, "index_row_fetches", fetch_cum, fetches)
    for j, is_string in enumerate(flags):
        kind = "string_filter_evals" if is_string else "filter_evals"
        _add_kind(counts, final, order, kind, eval_cums[j], evals[j])
    _add_kind(counts, final, order, "join_output_rows", out_cum, produced)
    return _VStream(rows, counts, final, order)


def _v_project(node: ProjectNode) -> _VStream | None:
    child = _vrun(node.child)
    if child is None:
        return None
    positions = node._positions
    rows = [tuple(row[p] for p in positions) for row in child.rows]
    n = len(rows)
    counts = dict(child.counts)
    final = dict(child.final)
    order = list(child.order)
    _add_kind(counts, final, order, "rows_output", list(range(1, n + 1)), n)
    return _VStream(rows, counts, final, order)


def _v_distinct(node: DistinctNode) -> _VStream | None:
    child = _vrun(node.child)
    if child is None:
        return None
    seen: set[Row] = set()
    rows: list[Row] = []
    keep: list[int] = []
    for i, row in enumerate(child.rows):
        if row not in seen:
            seen.add(row)
            rows.append(row)
            keep.append(i)
    counts, order = _sampled(child, keep)
    final = dict(child.final)
    n_in = len(child.rows)
    _add_kind(counts, final, order, "distinct_rows", [i + 1 for i in keep], n_in)
    return _VStream(rows, counts, final, order)


def _v_sort(node: SortNode) -> _VStream | None:
    child = _vrun(node.child)
    if child is None:
        return None
    rows = list(child.rows)
    n = len(rows)

    def key_for(position: int) -> Callable[[Row], tuple]:
        def key(row: Row) -> tuple:
            value = row[position]
            if value is None:
                return (0, 0)
            if isinstance(value, bool):
                return (1, int(value))
            if isinstance(value, (int, float)):
                return (2, value)
            return (3, str(value))

        return key

    for position, ascending in reversed(node._positions):
        rows.sort(key=key_for(position), reverse=not ascending)
    # The single sort_rows event (and the full child drain) precede every
    # output: all counts are final constants.
    counts = {kind: [child.final.get(kind, 0)] * n for kind in child.order}
    final = dict(child.final)
    order = list(child.order)
    _add_kind(counts, final, order, "sort_rows", [n] * n, n)
    return _VStream(rows, counts, final, order)


def _v_limit(node: LimitNode) -> _VStream | None:
    child = _vrun(node.child)
    if child is None:
        return None
    start = node.offset or 0
    if node.limit is None:
        keep = list(range(start, len(child.rows)))
        final = dict(child.final)
    else:
        keep = list(range(start, min(start + node.limit, len(child.rows))))
        cutoff = start + node.limit
        if cutoff < len(child.rows):
            # Row mode pulls one child row past the limit before returning;
            # the final meter state is the child's snapshot at that row.
            final = {
                kind: cumulative[cutoff] for kind, cumulative in child.counts.items()
            }
        else:
            final = dict(child.final)
    rows = [child.rows[i] for i in keep]
    counts, order = _sampled(child, keep)
    return _VStream(rows, counts, final, order)


_DISPATCH: dict[type, Callable[[PlanNode], _VStream | None]] = {
    SeqScan: _v_seqscan,
    IndexScan: _v_indexscan,
    FilterNode: _v_filter,
    HashJoin: _v_hashjoin,
    IndexNestedLoopJoin: _v_inlj,
    ProjectNode: _v_project,
    DistinctNode: _v_distinct,
    SortNode: _v_sort,
    LimitNode: _v_limit,
}


def _vrun(node: PlanNode) -> _VStream | None:
    handler = _DISPATCH.get(type(node))
    if handler is None:
        return None
    return handler(node)


def _price_stream(stream: _VStream, cost_model: CostModel) -> tuple[list[float], float]:
    mapping = cost_model.rdb_price_mapping()
    n = len(stream.rows)
    if n:
        total = np.zeros(n)
        for kind in stream.order:
            price = mapping.get(kind, 0.0)
            if price:
                total = total + price * np.asarray(stream.counts[kind], dtype=np.float64)
        deltas = np.empty(n)
        deltas[0] = total[0]
        np.subtract(total[1:], total[:-1], out=deltas[1:])
        delta_list = deltas.tolist()
        last_total = float(total[-1])
    else:
        delta_list = []
        last_total = 0.0
    final_total = 0.0
    for kind in stream.order:
        final_total += mapping.get(kind, 0.0) * stream.final.get(kind, 0)
    return delta_list, final_total - last_total


def drained_reference(plan: PlanNode, cost_model: CostModel) -> PricedRows:
    """Row-executor drain with row-mode pricing arithmetic (fallback/oracle).

    Replays exactly what the row-mode wrapper computes: a cumulative-counts
    snapshot priced after every yielded row (insertion-order sum), the delta
    against the previously priced total, and the residual after exhaustion.
    """
    meter = OperationMeter()
    rows: list[Row] = []
    snapshots: list[tuple[tuple[str, int], ...]] = []
    for row in plan.execute(meter):
        rows.append(row)
        snapshots.append(tuple(meter.counts.items()))
    mapping = cost_model.rdb_price_mapping()
    deltas: list[float] = []
    priced = 0.0
    for snapshot in snapshots:
        total = sum(mapping.get(kind, 0.0) * amount for kind, amount in snapshot)
        deltas.append(total - priced)
        priced = total
    final_total = sum(
        mapping.get(kind, 0.0) * amount for kind, amount in meter.counts.items()
    )
    return rows, deltas, final_total - priced


def execute_priced(plan: PlanNode, cost_model: CostModel) -> PricedRows:
    """Run *plan* eagerly; rows plus bit-identical row-mode charge deltas."""
    stream = _vrun(plan)
    if stream is None:
        return drained_reference(plan, cost_model)
    deltas, residual = _price_stream(stream, cost_model)
    return stream.rows, deltas, residual
