"""Secondary index structures: hash indexes and B-tree-like ordered indexes.

Both map (tuples of) column values to row identifiers.  The ordered index is
a sorted array maintained with :mod:`bisect`, which gives the logarithmic
point lookups and ordered range scans the planner's cost model assumes for
``btree`` indexes.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator

from .types import SQLValue

Key = tuple


class HashIndex:
    """Equality-only index: key tuple -> list of row ids."""

    kind = "hash"

    def __init__(self, name: str, columns: tuple[str, ...], unique: bool = False):
        self.name = name
        self.columns = columns
        self.unique = unique
        self._buckets: dict[Key, list[int]] = {}

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._buckets.values())

    def insert(self, key: Key, row_id: int) -> None:
        self._buckets.setdefault(key, []).append(row_id)

    def remove(self, key: Key, row_id: int) -> None:
        rows = self._buckets.get(key)
        if rows and row_id in rows:
            rows.remove(row_id)
            if not rows:
                del self._buckets[key]

    def lookup(self, key: Key) -> list[int]:
        """Row ids with exactly this key (empty list when absent)."""
        return list(self._buckets.get(key, ()))

    def contains_key(self, key: Key) -> bool:
        return key in self._buckets

    def distinct_keys(self) -> int:
        return len(self._buckets)

    def scan_range(self, low, high, include_low=True, include_high=True) -> Iterator[int]:
        raise NotImplementedError("hash indexes do not support range scans")


class _OrderedKey:
    """Total order over heterogeneous keys: None < bool < numbers < strings."""

    __slots__ = ("key",)

    _RANKS = {type(None): 0, bool: 1, int: 2, float: 2, str: 3}

    def __init__(self, key: Key):
        self.key = key

    def _rank_tuple(self):
        return tuple(
            (self._RANKS.get(type(part), 4), part if part is not None else 0)
            for part in self.key
        )

    def __lt__(self, other: "_OrderedKey") -> bool:
        for (rank_a, value_a), (rank_b, value_b) in zip(self._rank_tuple(), other._rank_tuple()):
            if rank_a != rank_b:
                return rank_a < rank_b
            if value_a != value_b:
                try:
                    return value_a < value_b
                except TypeError:
                    return str(value_a) < str(value_b)
        return len(self.key) < len(other.key)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _OrderedKey) and self.key == other.key


class BTreeIndex:
    """Ordered index supporting point lookups and range scans.

    Implemented as parallel sorted arrays (keys, row-id lists).  Insertion is
    O(n) worst case but the reproduction's tables are loaded once and then
    read-heavy, matching the benchmark's usage.
    """

    kind = "btree"

    def __init__(self, name: str, columns: tuple[str, ...], unique: bool = False):
        self.name = name
        self.columns = columns
        self.unique = unique
        self._keys: list[_OrderedKey] = []
        self._rows: list[list[int]] = []

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._rows)

    def insert(self, key: Key, row_id: int) -> None:
        wrapped = _OrderedKey(key)
        position = bisect.bisect_left(self._keys, wrapped)
        if position < len(self._keys) and self._keys[position] == wrapped:
            self._rows[position].append(row_id)
        else:
            self._keys.insert(position, wrapped)
            self._rows.insert(position, [row_id])

    def remove(self, key: Key, row_id: int) -> None:
        wrapped = _OrderedKey(key)
        position = bisect.bisect_left(self._keys, wrapped)
        if position < len(self._keys) and self._keys[position] == wrapped:
            rows = self._rows[position]
            if row_id in rows:
                rows.remove(row_id)
                if not rows:
                    del self._keys[position]
                    del self._rows[position]

    def lookup(self, key: Key) -> list[int]:
        wrapped = _OrderedKey(key)
        position = bisect.bisect_left(self._keys, wrapped)
        if position < len(self._keys) and self._keys[position] == wrapped:
            return list(self._rows[position])
        return []

    def contains_key(self, key: Key) -> bool:
        wrapped = _OrderedKey(key)
        position = bisect.bisect_left(self._keys, wrapped)
        return position < len(self._keys) and self._keys[position] == wrapped

    def distinct_keys(self) -> int:
        return len(self._keys)

    def scan_range(
        self,
        low: Key | None,
        high: Key | None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[int]:
        """Yield row ids with low <= key <= high (bounds optional)."""
        if low is None:
            start = 0
        else:
            wrapped_low = _OrderedKey(low)
            start = (
                bisect.bisect_left(self._keys, wrapped_low)
                if include_low
                else bisect.bisect_right(self._keys, wrapped_low)
            )
        if high is None:
            stop = len(self._keys)
        else:
            wrapped_high = _OrderedKey(high)
            stop = (
                bisect.bisect_right(self._keys, wrapped_high)
                if include_high
                else bisect.bisect_left(self._keys, wrapped_high)
            )
        for position in range(start, stop):
            yield from self._rows[position]

    def scan_all(self) -> Iterator[int]:
        """Yield every row id in key order."""
        for rows in self._rows:
            yield from rows


Index = HashIndex | BTreeIndex


def make_index(kind: str, name: str, columns: tuple[str, ...], unique: bool = False) -> Index:
    """Build an index of the requested *kind* (``btree`` or ``hash``)."""
    if kind == "hash":
        return HashIndex(name, columns, unique)
    if kind == "btree":
        return BTreeIndex(name, columns, unique)
    raise ValueError(f"unknown index kind {kind!r}")


def key_of(row: tuple, positions: Iterable[int]) -> Key:
    """Extract the index key of *row* for the column *positions*."""
    return tuple(row[position] for position in positions)
