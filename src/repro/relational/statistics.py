"""Table statistics, selectivity estimation and the 15 %-rule index advisor.

The paper's motivating example explains that *"No index is created since
there are values that are present in more than 15% of the records"* — the
advisor here implements exactly that rule: a candidate column is indexed only
when no single value covers more than ``max_value_fraction`` (default 0.15)
of the rows.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .storage import TableStorage
from .types import SQLValue

#: Fraction above which a column value makes the column a poor index target.
DEFAULT_MAX_VALUE_FRACTION = 0.15


@dataclass
class ColumnStatistics:
    """Summary statistics of one column.

    Attributes:
        column: column name.
        row_count: rows examined (including NULLs).
        null_count: how many values are NULL.
        distinct_count: number of distinct non-NULL values.
        most_common_value: the modal value (None when the column is empty).
        most_common_fraction: fraction of non-NULL rows holding the mode.
        min_value / max_value: extrema for orderable columns, else None.
    """

    column: str
    row_count: int = 0
    null_count: int = 0
    distinct_count: int = 0
    most_common_value: SQLValue = None
    most_common_fraction: float = 0.0
    min_value: SQLValue = None
    max_value: SQLValue = None

    @property
    def non_null_count(self) -> int:
        return self.row_count - self.null_count

    def equality_selectivity(self, value: SQLValue | None = None) -> float:
        """Estimated fraction of rows matching ``column = value``.

        Without a concrete value, assumes the uniform 1/distinct estimate;
        a concrete value equal to the mode uses the observed mode fraction.
        """
        if self.non_null_count == 0 or self.distinct_count == 0:
            return 0.0
        if value is not None and value == self.most_common_value:
            return self.most_common_fraction
        return 1.0 / self.distinct_count

    def range_selectivity(self) -> float:
        """Default estimate for open range predicates (the classic 1/3)."""
        if self.non_null_count == 0:
            return 0.0
        return 1.0 / 3.0


@dataclass
class TableStatistics:
    """Statistics of one table: row count plus per-column summaries."""

    table: str
    row_count: int = 0
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStatistics:
        if name not in self.columns:
            return ColumnStatistics(column=name, row_count=self.row_count)
        return self.columns[name]


def collect_column_statistics(storage: TableStorage, column: str) -> ColumnStatistics:
    """Compute :class:`ColumnStatistics` by a full pass over the table."""
    counter: Counter = Counter()
    null_count = 0
    row_count = 0
    minimum: SQLValue = None
    maximum: SQLValue = None
    for value in storage.column_values(column):
        row_count += 1
        if value is None:
            null_count += 1
            continue
        counter[value] += 1
        try:
            if minimum is None or value < minimum:
                minimum = value
            if maximum is None or value > maximum:
                maximum = value
        except TypeError:
            minimum = maximum = None
    non_null = row_count - null_count
    most_common_value: SQLValue = None
    most_common_fraction = 0.0
    if counter:
        most_common_value, count = counter.most_common(1)[0]
        most_common_fraction = count / non_null if non_null else 0.0
    return ColumnStatistics(
        column=column,
        row_count=row_count,
        null_count=null_count,
        distinct_count=len(counter),
        most_common_value=most_common_value,
        most_common_fraction=most_common_fraction,
        min_value=minimum,
        max_value=maximum,
    )


def collect_table_statistics(storage: TableStorage) -> TableStatistics:
    """Compute statistics for every column of *storage* (ANALYZE)."""
    statistics = TableStatistics(table=storage.schema.name, row_count=len(storage))
    for column in storage.schema.column_names:
        statistics.columns[column] = collect_column_statistics(storage, column)
    return statistics


@dataclass(frozen=True, slots=True)
class IndexAdvice:
    """The advisor's verdict for one candidate column."""

    table: str
    column: str
    create: bool
    reason: str
    most_common_fraction: float
    distinct_count: int


class IndexAdvisor:
    """Decides whether a column deserves a secondary index.

    Implements the paper's physical-design rule: create an index unless some
    value occurs in more than *max_value_fraction* of the records (such a
    column makes the index useless for the skewed value and misleads the
    optimizer).  Columns with a single distinct value are likewise rejected.
    """

    def __init__(self, max_value_fraction: float = DEFAULT_MAX_VALUE_FRACTION):
        if not 0.0 < max_value_fraction <= 1.0:
            raise ValueError("max_value_fraction must be in (0, 1]")
        self.max_value_fraction = max_value_fraction

    def advise(self, storage: TableStorage, column: str) -> IndexAdvice:
        """Evaluate one candidate column of one table."""
        statistics = collect_column_statistics(storage, column)
        if statistics.non_null_count == 0:
            return IndexAdvice(
                table=storage.schema.name,
                column=column,
                create=False,
                reason="column has no non-NULL values",
                most_common_fraction=statistics.most_common_fraction,
                distinct_count=statistics.distinct_count,
            )
        if statistics.distinct_count <= 1:
            return IndexAdvice(
                table=storage.schema.name,
                column=column,
                create=False,
                reason="column has a single distinct value",
                most_common_fraction=statistics.most_common_fraction,
                distinct_count=statistics.distinct_count,
            )
        if statistics.distinct_count == statistics.non_null_count:
            return IndexAdvice(
                table=storage.schema.name,
                column=column,
                create=True,
                reason="column is unique over its non-NULL values",
                most_common_fraction=statistics.most_common_fraction,
                distinct_count=statistics.distinct_count,
            )
        if statistics.most_common_fraction > self.max_value_fraction:
            return IndexAdvice(
                table=storage.schema.name,
                column=column,
                create=False,
                reason=(
                    f"value {statistics.most_common_value!r} covers "
                    f"{statistics.most_common_fraction:.1%} of records "
                    f"(> {self.max_value_fraction:.0%} rule)"
                ),
                most_common_fraction=statistics.most_common_fraction,
                distinct_count=statistics.distinct_count,
            )
        return IndexAdvice(
            table=storage.schema.name,
            column=column,
            create=True,
            reason=(
                f"{statistics.distinct_count} distinct values, mode covers "
                f"{statistics.most_common_fraction:.1%} of records"
            ),
            most_common_fraction=statistics.most_common_fraction,
            distinct_count=statistics.distinct_count,
        )
