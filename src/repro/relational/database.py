"""The `Database` facade: DDL, DML, querying and statistics.

One :class:`Database` instance plays the role of one MySQL container in the
paper's setup — each LSLOD data set gets its own database, queried through
the federation's SQL wrapper.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from ..exceptions import CatalogError, SchemaError
from .executor import PlanNode, Row
from .meter import NullMeter, OperationMeter
from .planner import Planner, PlannerOptions
from .schema import Column, ForeignKey, IndexDef, TableSchema
from .sql.ast import (
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from .executor import compile_predicate
from .sql.parser import parse_statement
from .statistics import (
    IndexAdvice,
    IndexAdvisor,
    TableStatistics,
    collect_table_statistics,
)
from .storage import TableStorage
from .types import SQLType, SQLValue


class QueryResult:
    """A streaming query result: header plus an iterator of rows."""

    def __init__(self, header: tuple[str, ...], rows: Iterator[Row]):
        self.header = header
        self._rows = rows

    def __iter__(self) -> Iterator[Row]:
        return self._rows

    def fetchall(self) -> list[Row]:
        return list(self._rows)

    def as_dicts(self) -> Iterator[dict[str, SQLValue]]:
        short_names = [name.rpartition(".")[2] for name in self.header]
        for row in self._rows:
            yield dict(zip(short_names, row))


class Database:
    """An in-process relational database with a SQL interface.

    Example:
        >>> db = Database("diseasome")
        >>> db.execute("CREATE TABLE gene (id INTEGER PRIMARY KEY, name TEXT)")
        >>> db.execute("INSERT INTO gene VALUES (1, 'BRCA1')")
        1
        >>> db.query("SELECT name FROM gene WHERE id = 1").fetchall()
        [('BRCA1',)]
    """

    def __init__(self, name: str, planner_options: PlannerOptions | None = None):
        self.name = name
        self._tables: dict[str, TableStorage] = {}
        self._statistics: dict[str, TableStatistics] = {}
        self._data_version = 0
        self.planner = Planner(self, planner_options)

    @property
    def data_version(self) -> int:
        """Monotonic counter of result-affecting changes to this database.

        Bumped by every INSERT/DELETE/UPDATE, CREATE/DROP INDEX, and
        CREATE/DROP TABLE — including DML issued directly against a
        :class:`TableStorage` obtained via :meth:`table` (storages report
        changes back through their ``on_change`` hook).  The federation's
        plan and sub-result caches embed this value in their keys, so any
        write silently invalidates everything cached over this source.
        """
        return self._data_version

    def _bump_data_version(self) -> None:
        self._data_version += 1

    # -- catalog --------------------------------------------------------------

    def table(self, name: str) -> TableStorage:
        if name not in self._tables:
            raise CatalogError(f"no table {name!r} in database {self.name!r}")
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def indexes(self, table: str) -> dict[str, IndexDef]:
        return self.table(table).indexes

    def has_index_on(self, table: str, column: str) -> bool:
        """True when *column* is the leading column of some index of *table*.

        This is the physical-design fact the paper's heuristics consult.
        """
        return self.table(table).has_index_on(column)

    # -- DDL --------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Sequence[str] = (),
        foreign_keys: Sequence[ForeignKey] = (),
    ) -> TableSchema:
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists in database {self.name!r}")
        schema = TableSchema(
            name=name,
            columns=list(columns),
            primary_key=tuple(primary_key),
            foreign_keys=list(foreign_keys),
        )
        self._tables[name] = TableStorage(schema, on_change=self._bump_data_version)
        self._bump_data_version()
        return schema

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise SchemaError(f"no table {name!r} in database {self.name!r}")
        del self._tables[name]
        self._statistics.pop(name, None)
        self._bump_data_version()

    def create_index(
        self,
        table: str,
        columns: Sequence[str],
        name: str | None = None,
        unique: bool = False,
        kind: str = "btree",
    ) -> IndexDef:
        storage = self.table(table)
        index_name = name or f"ix_{table}_{'_'.join(columns)}"
        definition = IndexDef(
            name=index_name, table=table, columns=tuple(columns), unique=unique, kind=kind
        )
        storage.create_index(definition)
        return definition

    def drop_index(self, table: str, name: str) -> None:
        self.table(table).drop_index(name)

    # -- DML ---------------------------------------------------------------------

    def insert(self, table: str, values: Mapping[str, SQLValue] | Sequence[SQLValue]) -> int:
        row_id = self.table(table).insert(values)
        self._statistics.pop(table, None)  # invalidate cached stats
        return row_id

    def insert_many(
        self, table: str, rows: Sequence[Mapping[str, SQLValue] | Sequence[SQLValue]]
    ) -> int:
        storage = self.table(table)
        for row in rows:
            storage.insert(row)
        self._statistics.pop(table, None)
        return len(rows)

    # -- statistics ----------------------------------------------------------------

    def statistics(self, table: str) -> TableStatistics:
        """Cached ANALYZE output for *table* (recomputed after inserts)."""
        if table not in self._statistics:
            self._statistics[table] = collect_table_statistics(self.table(table))
        return self._statistics[table]

    def analyze(self) -> None:
        """Refresh statistics for every table."""
        for table in self._tables:
            self._statistics[table] = collect_table_statistics(self._tables[table])

    def advise_index(
        self, table: str, column: str, max_value_fraction: float = 0.15
    ) -> IndexAdvice:
        """Run the 15 %-rule index advisor on one column."""
        advisor = IndexAdvisor(max_value_fraction)
        return advisor.advise(self.table(table), column)

    def create_advised_indexes(
        self, table: str, columns: Sequence[str], max_value_fraction: float = 0.15
    ) -> list[IndexAdvice]:
        """Advise each candidate column and create indexes where advised."""
        advices = []
        for column in columns:
            advice = self.advise_index(table, column, max_value_fraction)
            if advice.create and not self.table(table).has_index_on(column):
                self.create_index(table, [column])
            advices.append(advice)
        return advices

    # -- querying --------------------------------------------------------------------

    def plan(self, statement: SelectStatement | str) -> PlanNode:
        """Plan a SELECT without executing it (EXPLAIN support)."""
        if isinstance(statement, str):
            parsed = parse_statement(statement)
            if not isinstance(parsed, SelectStatement):
                raise SchemaError("plan() expects a SELECT statement")
            statement = parsed
        return self.planner.plan(statement)

    def explain(self, statement: SelectStatement | str) -> str:
        return self.plan(statement).explain()

    def query(
        self,
        statement: SelectStatement | str,
        meter: OperationMeter | None = None,
    ) -> QueryResult:
        """Execute a SELECT, streaming rows and metering work into *meter*."""
        plan = self.plan(statement)
        return QueryResult(plan.header, plan.execute(meter or NullMeter()))

    def execute(self, statement: Statement | str, meter: OperationMeter | None = None):
        """Execute any supported statement.

        Returns a :class:`QueryResult` for SELECT, the inserted row count for
        INSERT, and None for DDL.
        """
        if isinstance(statement, str):
            statement = parse_statement(statement)
        if isinstance(statement, SelectStatement):
            return self.query(statement, meter)
        if isinstance(statement, InsertStatement):
            storage = self.table(statement.table)
            for row in statement.rows:
                if statement.columns:
                    storage.insert(dict(zip(statement.columns, row)))
                else:
                    storage.insert(row)
            self._statistics.pop(statement.table, None)
            return len(statement.rows)
        if isinstance(statement, UpdateStatement):
            return self._execute_update(statement)
        if isinstance(statement, DeleteStatement):
            return self._execute_delete(statement)
        if isinstance(statement, CreateTableStatement):
            columns = [
                Column(c.name, c.sql_type, nullable=c.nullable and not c.primary_key)
                for c in statement.columns
            ]
            primary_key = statement.primary_key or tuple(
                c.name for c in statement.columns if c.primary_key
            )
            foreign_keys = [
                ForeignKey(column, referenced_table, referenced_column)
                for column, referenced_table, referenced_column in statement.foreign_keys
            ]
            self.create_table(statement.table, columns, primary_key, foreign_keys)
            return None
        if isinstance(statement, CreateIndexStatement):
            self.create_index(
                statement.table,
                statement.columns,
                name=statement.name,
                unique=statement.unique,
            )
            return None
        raise SchemaError(f"unsupported statement {statement!r}")

    def _matching_row_ids(self, storage: TableStorage, where) -> list[int]:
        if where is None:
            return [row_id for row_id, __ in storage.scan()]
        header = tuple(
            f"{storage.schema.name}.{name}" for name in storage.schema.column_names
        )
        predicate = compile_predicate(header, where)
        return [row_id for row_id, row in storage.scan() if predicate(row)]

    def _execute_update(self, statement: UpdateStatement) -> int:
        """UPDATE: delete + re-insert matching rows with new values.

        Note: the engine has no transactions; a constraint violation during
        re-insertion aborts mid-statement (already-updated rows stay).
        """
        storage = self.table(statement.table)
        positions = {
            column: storage.schema.column_index(column)
            for column, __ in statement.assignments
        }
        row_ids = self._matching_row_ids(storage, statement.where)
        for row_id in row_ids:
            old_row = list(storage.row(row_id))
            for column, value in statement.assignments:
                old_row[positions[column]] = value
            storage.delete(row_id)
            storage.insert(old_row)
        if row_ids:
            self._statistics.pop(statement.table, None)
        return len(row_ids)

    def _execute_delete(self, statement: DeleteStatement) -> int:
        storage = self.table(statement.table)
        row_ids = self._matching_row_ids(storage, statement.where)
        for row_id in row_ids:
            storage.delete(row_id)
        if row_ids:
            self._statistics.pop(statement.table, None)
        return len(row_ids)

    def __repr__(self) -> str:
        return f"Database({self.name!r}, tables={self.table_names})"
