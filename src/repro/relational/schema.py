"""Relational schema objects: columns, keys, tables.

The LSLOD reproduction stores each data set as a 3NF schema: the RDF subject
becomes the primary key, functional properties become columns, and
multi-valued properties become satellite tables with composite keys — see
:mod:`repro.mapping.normalizer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import SchemaError
from .types import SQLType


@dataclass(frozen=True, slots=True)
class Column:
    """A typed column; ``nullable`` is enforced on insert."""

    name: str
    sql_type: SQLType
    nullable: bool = True

    def __post_init__(self):
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name {self.name!r}")


@dataclass(frozen=True, slots=True)
class ForeignKey:
    """A single-column foreign key reference."""

    column: str
    referenced_table: str
    referenced_column: str


@dataclass
class TableSchema:
    """Schema of one table: columns, primary key, foreign keys.

    Attributes:
        name: table name, unique within a database.
        columns: ordered column definitions.
        primary_key: names of the PK columns (possibly composite).
        foreign_keys: FK declarations (used by H1 join push-down reasoning).
    """

    name: str
    columns: list[Column]
    primary_key: tuple[str, ...] = ()
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def __post_init__(self):
        if not self.name:
            raise SchemaError("table name must be non-empty")
        seen: set[str] = set()
        for column in self.columns:
            if column.name in seen:
                raise SchemaError(f"duplicate column {column.name!r} in table {self.name!r}")
            seen.add(column.name)
        for key_column in self.primary_key:
            if key_column not in seen:
                raise SchemaError(
                    f"primary key column {key_column!r} not in table {self.name!r}"
                )
        for foreign_key in self.foreign_keys:
            if foreign_key.column not in seen:
                raise SchemaError(
                    f"foreign key column {foreign_key.column!r} not in table {self.name!r}"
                )

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        return any(column.name == name for column in self.columns)

    def column_index(self, name: str) -> int:
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def is_primary_key(self, column: str) -> bool:
        return self.primary_key == (column,)

    def foreign_key_for(self, column: str) -> ForeignKey | None:
        for foreign_key in self.foreign_keys:
            if foreign_key.column == column:
                return foreign_key
        return None


@dataclass(frozen=True, slots=True)
class IndexDef:
    """Metadata of one index (the physical-design catalog exposes these)."""

    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False
    kind: str = "btree"  # "btree" | "hash"

    def covers(self, column: str) -> bool:
        """True when the index can serve equality lookups on *column*
        (i.e. *column* is the leading index column)."""
        return bool(self.columns) and self.columns[0] == column
