"""Row storage for one table, with index maintenance and constraints."""

from __future__ import annotations

from typing import Callable, Iterator, Mapping, Sequence

from ..exceptions import IntegrityError, SchemaError
from .indexes import Index, key_of, make_index
from .schema import IndexDef, TableSchema
from .types import SQLValue, coerce

Row = tuple


class TableStorage:
    """Rows of one table plus its indexes.

    Rows are tuples ordered like ``schema.columns``.  Row ids are stable
    positions in the heap; deletion leaves a tombstone (``None``) so index
    entries can be invalidated cheaply.

    ``version`` is a monotonic data-version counter, bumped by every change
    that can alter query results or plans — INSERT, DELETE, CREATE INDEX,
    DROP INDEX.  The federation's caches key on it, so bumping is how
    cached plans and sub-results get invalidated.  ``on_change`` (set by
    the owning :class:`~repro.relational.database.Database`) propagates
    bumps upward.
    """

    def __init__(self, schema: TableSchema, on_change: Callable[[], None] | None = None):
        self.schema = schema
        self.version = 0
        self.on_change = on_change
        self._rows: list[Row | None] = []
        self._live_count = 0
        self._indexes: dict[str, Index] = {}
        self._index_defs: dict[str, IndexDef] = {}
        self._index_positions: dict[str, tuple[int, ...]] = {}
        if schema.primary_key:
            self.create_index(
                IndexDef(
                    name=f"pk_{schema.name}",
                    table=schema.name,
                    columns=tuple(schema.primary_key),
                    unique=True,
                    kind="btree",
                )
            )

    def _bump_version(self) -> None:
        self.version += 1
        if self.on_change is not None:
            self.on_change()

    # -- index management ---------------------------------------------------

    def create_index(self, definition: IndexDef) -> None:
        """Create an index and backfill it from existing rows."""
        if definition.name in self._indexes:
            raise SchemaError(f"index {definition.name!r} already exists")
        for column in definition.columns:
            if not self.schema.has_column(column):
                raise SchemaError(
                    f"index {definition.name!r} references unknown column {column!r}"
                )
        index = make_index(definition.kind, definition.name, definition.columns, definition.unique)
        positions = tuple(self.schema.column_index(column) for column in definition.columns)
        for row_id, row in enumerate(self._rows):
            if row is not None:
                index.insert(key_of(row, positions), row_id)
        self._indexes[definition.name] = index
        self._index_defs[definition.name] = definition
        self._index_positions[definition.name] = positions
        self._bump_version()

    def drop_index(self, name: str) -> None:
        if name not in self._indexes:
            raise SchemaError(f"no index {name!r} on table {self.schema.name!r}")
        del self._indexes[name]
        del self._index_defs[name]
        del self._index_positions[name]
        self._bump_version()

    @property
    def indexes(self) -> dict[str, IndexDef]:
        return dict(self._index_defs)

    def index(self, name: str) -> Index:
        return self._indexes[name]

    def indexes_on(self, column: str) -> list[IndexDef]:
        """Index definitions whose leading column is *column*."""
        return [definition for definition in self._index_defs.values() if definition.covers(column)]

    def has_index_on(self, column: str) -> bool:
        return bool(self.indexes_on(column))

    # -- DML ----------------------------------------------------------------

    def insert(self, values: Mapping[str, SQLValue] | Sequence[SQLValue]) -> int:
        """Insert one row given as a mapping or a positional sequence.

        Returns the new row id.  Enforces types, NOT NULL, and PK/unique
        index uniqueness.
        """
        if isinstance(values, Mapping):
            row_values = [values.get(column.name) for column in self.schema.columns]
            unknown = set(values) - set(self.schema.column_names)
            if unknown:
                raise IntegrityError(
                    f"unknown column(s) {sorted(unknown)} for table {self.schema.name!r}"
                )
        else:
            if len(values) != len(self.schema.columns):
                raise IntegrityError(
                    f"table {self.schema.name!r} expects {len(self.schema.columns)} values, "
                    f"got {len(values)}"
                )
            row_values = list(values)
        coerced = []
        for column, value in zip(self.schema.columns, row_values):
            value = coerce(value, column.sql_type, f"{self.schema.name}.{column.name}")
            if value is None and not column.nullable:
                raise IntegrityError(
                    f"NULL in non-nullable column {self.schema.name}.{column.name}"
                )
            coerced.append(value)
        row = tuple(coerced)

        row_id = len(self._rows)
        # One key computation per index, shared by the uniqueness pre-check
        # and the insertion below.
        keyed = [
            (index, key_of(row, self._index_positions[name]))
            for name, index in self._indexes.items()
        ]
        for (index, key), name in zip(keyed, self._indexes):
            if self._index_defs[name].unique and index.contains_key(key):
                raise IntegrityError(
                    f"duplicate key {key!r} for unique index {name!r} "
                    f"on table {self.schema.name!r}"
                )
        self._rows.append(row)
        self._live_count += 1
        for index, key in keyed:
            index.insert(key, row_id)
        self._bump_version()
        return row_id

    def delete(self, row_id: int) -> bool:
        """Delete the row with *row_id*; returns False when already gone."""
        if row_id < 0 or row_id >= len(self._rows) or self._rows[row_id] is None:
            return False
        row = self._rows[row_id]
        for name, index in self._indexes.items():
            index.remove(key_of(row, self._index_positions[name]), row_id)
        self._rows[row_id] = None
        self._live_count -= 1
        self._bump_version()
        return True

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return self._live_count

    def row(self, row_id: int) -> Row:
        row = self._rows[row_id]
        if row is None:
            raise IntegrityError(f"row {row_id} of table {self.schema.name!r} was deleted")
        return row

    def scan(self) -> Iterator[tuple[int, Row]]:
        """Yield (row_id, row) for every live row, heap order."""
        for row_id, row in enumerate(self._rows):
            if row is not None:
                yield row_id, row

    def rows(self) -> Iterator[Row]:
        for __, row in self.scan():
            yield row

    def live_rows(self) -> list[Row]:
        """All live rows in heap order, as one list (vectorized scans).

        With no tombstones this aliases nothing and copies one pointer per
        row; the batch executor prefers it over ``scan()`` because a single
        C-level list comprehension replaces one generator resume per row.
        """
        if self._live_count == len(self._rows):
            return list(self._rows)
        return [row for row in self._rows if row is not None]

    def column_values(self, column: str) -> Iterator[SQLValue]:
        position = self.schema.column_index(column)
        for row in self.rows():
            yield row[position]
