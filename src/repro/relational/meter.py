"""Operation metering for the relational executor.

The substrate counts *operations* (rows scanned, index probes, filter
evaluations, ...); the federation layer prices those counts into virtual
time using :class:`repro.network.costmodel.CostModel`.  Separating counting
from pricing keeps the relational engine usable standalone and lets
benchmarks re-price a single execution under different cost assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Operation kinds the executor reports.
OP_KINDS = (
    "rows_scanned",
    "index_probes",
    "index_row_fetches",
    "filter_evals",
    "string_filter_evals",
    "hash_build_rows",
    "hash_probe_rows",
    "join_output_rows",
    "sort_rows",
    "distinct_rows",
    "rows_output",
)


@dataclass
class OperationMeter:
    """Mutable counter of executor operations.

    Operators call :meth:`count` while streaming; observers may read
    :attr:`counts` between pulls to price incremental work (that is how the
    SQL wrapper advances the virtual clock per produced answer).
    """

    counts: dict[str, int] = field(default_factory=dict)

    def count(self, kind: str, amount: int = 1) -> None:
        if amount:
            self.counts[kind] = self.counts.get(kind, 0) + amount

    def get(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    def total(self) -> int:
        return sum(self.counts.values())

    def snapshot(self) -> dict[str, int]:
        return dict(self.counts)

    def merge(self, other: "OperationMeter") -> None:
        for kind, amount in other.counts.items():
            self.count(kind, amount)

    def reset(self) -> None:
        self.counts.clear()


class NullMeter(OperationMeter):
    """A meter that discards counts (for callers indifferent to costs)."""

    def count(self, kind: str, amount: int = 1) -> None:  # noqa: D102
        return
