"""Cost-based planner for single-database SQL queries.

Given a :class:`SelectStatement` and a :class:`Database`, the planner

1. classifies WHERE conjuncts into per-table predicates, equi-join
   conditions and residual filters,
2. selects an access path per table (index equality / range scan when an
   index covers the predicate, otherwise a filtered sequential scan),
3. orders joins greedily by estimated cardinality, choosing index
   nested-loop joins when the inner table has an index on its join column
   and hash joins otherwise, and
4. applies residual filters, sorting, projection, DISTINCT and LIMIT.

The planner embodies the "relational databases are designed to find
effective plans for joins and filters exploiting indexes if beneficial"
assumption the paper's Heuristic 1 builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..exceptions import PlanningError
from .executor import (
    AggregateNode,
    CountNode,
    DistinctNode,
    FilterNode,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    LimitNode,
    PlanNode,
    ProjectNode,
    SeqScan,
    SortNode,
)
from .sql.ast import (
    AggregateCall,
    ColumnRef,
    SelectItem,
    Comparison,
    Constant,
    InPredicate,
    IsNullPredicate,
    LikePredicate,
    NotExpr,
    OrExpr,
    AndExpr,
    SelectStatement,
    WhereExpr,
    conjuncts,
)
from .statistics import TableStatistics
from .storage import TableStorage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import Database

#: Default selectivity guesses when statistics cannot decide.
LIKE_PREFIX_SELECTIVITY = 0.05
LIKE_INFIX_SELECTIVITY = 0.25
COLUMN_EQ_COLUMN_SELECTIVITY = 0.1
NEGATION_SELECTIVITY = 0.9


@dataclass
class PlannerOptions:
    """Tunables for the planner (exposed for the ablation benchmarks)."""

    allow_index_scans: bool = True
    allow_index_joins: bool = True
    allow_hash_joins: bool = True


@dataclass
class _TableInfo:
    binding: str
    storage: TableStorage
    statistics: TableStatistics
    predicates: list[WhereExpr] = field(default_factory=list)

    @property
    def base_rows(self) -> int:
        return len(self.storage)


def _referenced_bindings(predicate: WhereExpr, resolver: "_ColumnResolver") -> set[str]:
    if isinstance(predicate, Comparison):
        bindings: set[str] = set()
        for operand in (predicate.left, predicate.right):
            if isinstance(operand, ColumnRef):
                bindings.add(resolver.binding_of(operand))
        return bindings
    if isinstance(predicate, (LikePredicate, InPredicate, IsNullPredicate)):
        return {resolver.binding_of(predicate.column)}
    if isinstance(predicate, NotExpr):
        return _referenced_bindings(predicate.operand, resolver)
    if isinstance(predicate, (AndExpr, OrExpr)):
        bindings = set()
        for operand in predicate.operands:
            bindings |= _referenced_bindings(operand, resolver)
        return bindings
    raise PlanningError(f"unsupported predicate {predicate!r}")


class _ColumnResolver:
    """Resolves (possibly unqualified) column refs to bindings."""

    def __init__(self, tables: dict[str, _TableInfo]):
        self._tables = tables

    def binding_of(self, ref: ColumnRef) -> str:
        if ref.table:
            if ref.table not in self._tables:
                raise PlanningError(f"unknown table alias {ref.table!r}")
            if not self._tables[ref.table].storage.schema.has_column(ref.column):
                raise PlanningError(f"no column {ref.column!r} in table {ref.table!r}")
            return ref.table
        matches = [
            binding
            for binding, info in self._tables.items()
            if info.storage.schema.has_column(ref.column)
        ]
        if not matches:
            raise PlanningError(f"unknown column {ref.column!r}")
        if len(matches) > 1:
            raise PlanningError(f"ambiguous column {ref.column!r} (in {sorted(matches)})")
        return matches[0]

    def qualify(self, ref: ColumnRef) -> ColumnRef:
        if ref.table:
            return ref
        return ColumnRef(self.binding_of(ref), ref.column)


@dataclass(frozen=True)
class _JoinEdge:
    left: ColumnRef  # qualified
    right: ColumnRef  # qualified


class Planner:
    """Builds physical plans for one database."""

    def __init__(self, database: "Database", options: PlannerOptions | None = None):
        self.database = database
        self.options = options or PlannerOptions()

    # -- public -------------------------------------------------------------

    def plan(self, statement: SelectStatement) -> PlanNode:
        tables = self._collect_tables(statement)
        resolver = _ColumnResolver(tables)
        edges, residuals = self._classify_where(statement, tables, resolver)
        root = self._plan_joins(tables, edges, resolver)
        if residuals:
            root = FilterNode(root, residuals)
        root = self._apply_modifiers(root, statement, resolver)
        return root

    # -- scaffolding ---------------------------------------------------------

    def _collect_tables(self, statement: SelectStatement) -> dict[str, _TableInfo]:
        tables: dict[str, _TableInfo] = {}
        for ref in statement.referenced_tables():
            if ref.binding in tables:
                raise PlanningError(f"duplicate table binding {ref.binding!r}")
            storage = self.database.table(ref.name)
            tables[ref.binding] = _TableInfo(
                binding=ref.binding,
                storage=storage,
                statistics=self.database.statistics(ref.name),
            )
        return tables

    def _classify_where(
        self,
        statement: SelectStatement,
        tables: dict[str, _TableInfo],
        resolver: _ColumnResolver,
    ) -> tuple[list[_JoinEdge], list[WhereExpr]]:
        edges = [
            _JoinEdge(resolver.qualify(join.left), resolver.qualify(join.right))
            for join in statement.joins
        ]
        residuals: list[WhereExpr] = []
        for predicate in conjuncts(statement.where):
            bindings = _referenced_bindings(predicate, resolver)
            if len(bindings) == 1:
                tables[next(iter(bindings))].predicates.append(predicate)
            elif (
                isinstance(predicate, Comparison)
                and predicate.operator == "="
                and isinstance(predicate.left, ColumnRef)
                and isinstance(predicate.right, ColumnRef)
                and len(bindings) == 2
            ):
                edges.append(
                    _JoinEdge(resolver.qualify(predicate.left), resolver.qualify(predicate.right))
                )
            else:
                residuals.append(predicate)
        for edge in edges:
            if resolver.binding_of(edge.left) == resolver.binding_of(edge.right):
                raise PlanningError("self-join conditions within one binding are unsupported")
        return edges, residuals

    # -- selectivity estimation ----------------------------------------------

    def _predicate_selectivity(self, info: _TableInfo, predicate: WhereExpr) -> float:
        statistics = info.statistics
        if isinstance(predicate, Comparison):
            column_ref = None
            constant = None
            for operand, other in (
                (predicate.left, predicate.right),
                (predicate.right, predicate.left),
            ):
                if isinstance(operand, ColumnRef) and isinstance(other, Constant):
                    column_ref, constant = operand, other
                    break
            if column_ref is None:
                return COLUMN_EQ_COLUMN_SELECTIVITY
            column_statistics = statistics.column(column_ref.column)
            if predicate.operator == "=":
                return column_statistics.equality_selectivity(constant.value)
            if predicate.operator == "<>":
                return 1.0 - column_statistics.equality_selectivity(constant.value)
            return column_statistics.range_selectivity()
        if isinstance(predicate, LikePredicate):
            base = (
                LIKE_INFIX_SELECTIVITY
                if predicate.pattern.startswith("%")
                else LIKE_PREFIX_SELECTIVITY
            )
            return 1.0 - base if predicate.negated else base
        if isinstance(predicate, InPredicate):
            column_statistics = statistics.column(predicate.column.column)
            each = column_statistics.equality_selectivity()
            selectivity = min(1.0, each * len(predicate.values))
            return 1.0 - selectivity if predicate.negated else selectivity
        if isinstance(predicate, IsNullPredicate):
            column_statistics = statistics.column(predicate.column.column)
            if column_statistics.row_count == 0:
                return 0.0
            fraction = column_statistics.null_count / column_statistics.row_count
            return 1.0 - fraction if predicate.negated else fraction
        if isinstance(predicate, NotExpr):
            return max(0.0, 1.0 - self._predicate_selectivity(info, predicate.operand))
        if isinstance(predicate, AndExpr):
            selectivity = 1.0
            for operand in predicate.operands:
                selectivity *= self._predicate_selectivity(info, operand)
            return selectivity
        if isinstance(predicate, OrExpr):
            selectivity = 0.0
            for operand in predicate.operands:
                selectivity += self._predicate_selectivity(info, operand)
            return min(1.0, selectivity)
        return 0.5

    def _estimated_rows(self, info: _TableInfo) -> float:
        rows = float(info.base_rows)
        for predicate in info.predicates:
            rows *= self._predicate_selectivity(info, predicate)
        return max(rows, 0.0)

    # -- access paths ---------------------------------------------------------

    def _access_path(self, info: _TableInfo) -> PlanNode:
        """Pick the cheapest access path for one table.

        Preference order: indexed equality, indexed IN list, indexed range,
        filtered sequential scan.  The predicate served by the index is
        removed from the residual list; everything else stays.
        """
        if not self.options.allow_index_scans:
            return SeqScan(info.storage, info.binding, list(info.predicates))

        equality: list[tuple[int, str, object]] = []
        in_lists: list[tuple[int, str, tuple]] = []
        ranges: list[tuple[int, str, str, object]] = []
        for position, predicate in enumerate(info.predicates):
            extracted = _constant_comparison(predicate)
            if extracted is not None:
                column, operator, value = extracted
                if operator == "=":
                    equality.append((position, column, value))
                elif operator in ("<", "<=", ">", ">="):
                    ranges.append((position, column, operator, value))
                continue
            if (
                isinstance(predicate, InPredicate)
                and not predicate.negated
                and predicate.values
                and all(value is not None for value in predicate.values)
            ):
                in_lists.append((position, predicate.column.column, predicate.values))

        def residual_without(position: int) -> list[WhereExpr]:
            return [p for index, p in enumerate(info.predicates) if index != position]

        def single_column_index(column: str, btree_only: bool = False):
            definitions = [
                d
                for d in info.storage.indexes_on(column)
                if len(d.columns) == 1 and (not btree_only or d.kind == "btree")
            ]
            return definitions[0] if definitions else None

        for position, column, value in equality:
            definition = single_column_index(column)
            if definition is not None:
                return IndexScan(
                    info.storage,
                    info.binding,
                    definition.name,
                    equality_key=(value,),
                    residual_predicates=residual_without(position),
                )
        for position, column, values in in_lists:
            definition = single_column_index(column)
            if definition is not None:
                return IndexScan(
                    info.storage,
                    info.binding,
                    definition.name,
                    in_keys=[(value,) for value in values],
                    residual_predicates=residual_without(position),
                )
        for position, column, operator, value in ranges:
            definition = single_column_index(column, btree_only=True)
            if definition is not None:
                low = high = None
                include_low = include_high = True
                if operator in (">", ">="):
                    low, include_low = (value,), operator == ">="
                else:
                    high, include_high = (value,), operator == "<="
                return IndexScan(
                    info.storage,
                    info.binding,
                    definition.name,
                    range_low=low,
                    range_high=high,
                    include_low=include_low,
                    include_high=include_high,
                    residual_predicates=residual_without(position),
                )
        return SeqScan(info.storage, info.binding, list(info.predicates))

    # -- joins ------------------------------------------------------------------

    def _plan_joins(
        self,
        tables: dict[str, _TableInfo],
        edges: list[_JoinEdge],
        resolver: _ColumnResolver,
    ) -> PlanNode:
        if len(tables) == 1:
            return self._access_path(next(iter(tables.values())))

        estimates = {binding: self._estimated_rows(info) for binding, info in tables.items()}
        start = min(estimates, key=estimates.get)
        joined = {start}
        root = self._access_path(tables[start])
        current_estimate = estimates[start]
        remaining_edges = list(edges)

        while len(joined) < len(tables):
            chosen: tuple[_JoinEdge, str, ColumnRef, ColumnRef] | None = None
            best_estimate = None
            for edge in remaining_edges:
                left_binding = resolver.binding_of(edge.left)
                right_binding = resolver.binding_of(edge.right)
                if left_binding in joined and right_binding not in joined:
                    candidate = (edge, right_binding, edge.left, edge.right)
                elif right_binding in joined and left_binding not in joined:
                    candidate = (edge, left_binding, edge.right, edge.left)
                else:
                    continue
                estimate = estimates[candidate[1]]
                if best_estimate is None or estimate < best_estimate:
                    chosen = candidate
                    best_estimate = estimate
            if chosen is None:
                missing = sorted(set(tables) - joined)
                raise PlanningError(
                    f"query requires a cartesian product to reach table(s) {missing}"
                )
            edge, new_binding, outer_key, inner_key = chosen
            remaining_edges.remove(edge)
            info = tables[new_binding]
            root = self._join(root, info, outer_key, inner_key, current_estimate)
            joined.add(new_binding)
            current_estimate = max(
                1.0, current_estimate * estimates[new_binding] / max(info.base_rows, 1)
            )
            # Consume any further edges now internal to the joined set as residuals.
            internal = [
                e
                for e in remaining_edges
                if resolver.binding_of(e.left) in joined and resolver.binding_of(e.right) in joined
            ]
            for extra in internal:
                remaining_edges.remove(extra)
                root = FilterNode(root, [Comparison("=", extra.left, extra.right)])
        return root

    def _join(
        self,
        outer: PlanNode,
        info: _TableInfo,
        outer_key: ColumnRef,
        inner_key: ColumnRef,
        outer_estimate: float,
    ) -> PlanNode:
        inner_column = inner_key.column
        index_definitions = [
            d for d in info.storage.indexes_on(inner_column) if len(d.columns) == 1
        ]
        use_index_join = (
            self.options.allow_index_joins
            and index_definitions
            and (
                not self.options.allow_hash_joins
                or outer_estimate <= max(len(info.storage), 1)
            )
        )
        if use_index_join:
            return IndexNestedLoopJoin(
                outer=outer,
                storage=info.storage,
                binding=info.binding,
                index_name=index_definitions[0].name,
                outer_key=outer_key,
                inner_predicates=list(info.predicates),
            )
        if not self.options.allow_hash_joins:
            raise PlanningError(
                f"no index on {info.binding}.{inner_column} and hash joins are disabled"
            )
        inner = self._access_path(info)
        return HashJoin(left=inner, right=outer, left_key=inner_key, right_key=outer_key)

    # -- modifiers -----------------------------------------------------------------

    def _apply_modifiers(
        self,
        root: PlanNode,
        statement: SelectStatement,
        resolver: _ColumnResolver,
    ) -> PlanNode:
        if statement.count_star:
            return CountNode(root)
        if statement.has_aggregates() or statement.group_by:
            return self._apply_aggregation(root, statement, resolver)
        if statement.order_by:
            keys = []
            for item in statement.order_by:
                ref = self._resolve_order_column(item.column, statement, resolver)
                keys.append((ref, item.ascending))
            root = SortNode(root, keys)
        if statement.items is None:
            columns = [ColumnRef(*name.split(".", 1)) for name in root.header]
            output_names = list(root.header)
        else:
            columns = [resolver.qualify(item.expr) for item in statement.items]
            output_names = [item.output_name for item in statement.items]
        root = ProjectNode(root, columns, output_names)
        if statement.distinct:
            root = DistinctNode(root)
        if statement.limit is not None or statement.offset is not None:
            root = LimitNode(root, statement.limit, statement.offset)
        return root

    def _apply_aggregation(
        self,
        root: PlanNode,
        statement: SelectStatement,
        resolver: _ColumnResolver,
    ) -> PlanNode:
        """GROUP BY + aggregate pipeline: Aggregate -> Sort -> Project -> Limit."""
        if statement.items is None:
            raise PlanningError("GROUP BY requires an explicit select list")
        group_refs = [resolver.qualify(ref) for ref in statement.group_by]
        group_names = {ref.qualified() for ref in group_refs}
        aggregates: list[tuple[str, ColumnRef | None, str]] = []
        output_columns: list[ColumnRef] = []
        output_names: list[str] = []
        for item in statement.items:
            if isinstance(item, AggregateCall):
                column = resolver.qualify(item.column) if item.column is not None else None
                name = item.output_name
                aggregates.append((item.function, column, name))
                output_columns.append(ColumnRef(None, name))
                output_names.append(name)
            else:
                qualified = resolver.qualify(item.expr)
                if qualified.qualified() not in group_names:
                    raise PlanningError(
                        f"column {item.expr.sql()} must appear in GROUP BY "
                        "or inside an aggregate"
                    )
                output_columns.append(qualified)
                output_names.append(item.output_name)
        root = AggregateNode(root, group_refs, aggregates)
        if statement.having is not None:
            # HAVING references select-list aliases / aggregate output names,
            # which the aggregate header exposes directly.
            root = FilterNode(root, [statement.having])
        if statement.order_by:
            keys = []
            for order_item in statement.order_by:
                # Resolve against the aggregate header (group columns keep
                # their qualified names; aggregate outputs are plain names).
                keys.append((order_item.column, order_item.ascending))
            root = SortNode(root, keys)
        root = ProjectNode(root, output_columns, output_names)
        if statement.distinct:
            root = DistinctNode(root)
        if statement.limit is not None or statement.offset is not None:
            root = LimitNode(root, statement.limit, statement.offset)
        return root

    def _resolve_order_column(
        self,
        ref: ColumnRef,
        statement: SelectStatement,
        resolver: _ColumnResolver,
    ) -> ColumnRef:
        if ref.table is None and statement.items is not None:
            for item in statement.items:
                if isinstance(item, SelectItem) and item.alias == ref.column:
                    return resolver.qualify(item.expr)
        return resolver.qualify(ref)


def _constant_comparison(predicate: WhereExpr) -> tuple[str, str, object] | None:
    """Extract ``(column, operator, value)`` from a column-vs-constant
    comparison, normalizing the column to the left side."""
    if not isinstance(predicate, Comparison):
        return None
    if isinstance(predicate.left, ColumnRef) and isinstance(predicate.right, Constant):
        if predicate.right.value is None:
            return None
        return (predicate.left.column, predicate.operator, predicate.right.value)
    if isinstance(predicate.right, ColumnRef) and isinstance(predicate.left, Constant):
        if predicate.left.value is None:
            return None
        flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "<>": "<>"}
        return (predicate.right.column, flipped[predicate.operator], predicate.left.value)
    return None
