"""Setuptools shim.

The offline environment has no ``wheel`` package, so PEP 660 editable
installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517`` (and plain ``pip install -e .`` on
toolchains that have wheel) fall back to the legacy ``setup.py develop``
path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
