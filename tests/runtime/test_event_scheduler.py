"""Event-scheduler semantics: overlap, identity, and cross-runtime answers.

The acceptance bar for the concurrent runtime:

* on a 2-source symmetric-hash-join query under Gamma(3, 1.5), the
  event-scheduled virtual execution time is strictly less than the
  sequential one (delays overlap);
* single-source plans report bit-identical virtual times (and traces)
  under both runtimes;
* answer multisets agree across all three runtimes for every plan shape.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.benchmark.metrics import solution_key
from repro.core.engine import FederatedEngine
from repro.core.policy import PlanPolicy
from repro.datasets import BENCHMARK_QUERIES
from repro.federation.operators import DependentJoin, ServiceNode, SymmetricHashJoin
from repro.network.delays import NetworkSetting
from repro.runtime import RUNTIMES

from ..conftest import TINY_CROSS_SOURCE_QUERY, TINY_QUERY

GAMMA3 = NetworkSetting.gamma3()

OPTIONAL_ORDER_QUERY = """
PREFIX v: <http://ex/vocab#>
SELECT ?g ?sym ?dn WHERE {
  ?g a v:Gene ; v:geneSymbol ?sym .
  OPTIONAL { ?g v:associatedDisease ?d . ?d v:diseaseName ?dn . }
}
ORDER BY ?sym
"""

LIMIT_QUERY = """
PREFIX v: <http://ex/vocab#>
SELECT ?g ?sym WHERE { ?g a v:Gene ; v:geneSymbol ?sym . }
LIMIT 2
"""

UNION_QUERY = """
PREFIX v: <http://ex/vocab#>
SELECT ?name WHERE {
  { ?d a v:Disease ; v:diseaseName ?name . }
  UNION
  { ?p a v:Probeset ; v:symbol ?name . }
}
"""


def engine_for(lake, runtime, policy=None, network=GAMMA3, **kwargs):
    return FederatedEngine(
        lake,
        policy=policy or PlanPolicy.physical_design_aware(),
        network=network,
        runtime=runtime,
        **kwargs,
    )


def multiset(answers):
    return Counter(solution_key(solution) for solution in answers)


def count_leaves(op):
    if isinstance(op, ServiceNode):
        return 1
    return sum(count_leaves(child) for child in op.children())


def find_op(op, kind):
    if isinstance(op, kind):
        return op
    for child in op.children():
        found = find_op(child, kind)
        if found is not None:
            return found
    return None


# ---------------------------------------------------------------------------
# Acceptance: overlap on multi-source plans, identity on single-source ones
# ---------------------------------------------------------------------------


def test_two_source_join_overlaps_under_gamma3(tiny_lake):
    """Event-scheduled delays overlap: strictly less virtual time."""
    sequential = engine_for(tiny_lake, "sequential")
    plan = sequential.plan(TINY_CROSS_SOURCE_QUERY)
    assert find_op(plan.root, SymmetricHashJoin) is not None
    assert count_leaves(plan.root) == 2

    answers_seq, stats_seq = sequential.run(TINY_CROSS_SOURCE_QUERY, seed=11)
    answers_evt, stats_evt = engine_for(tiny_lake, "event").run(
        TINY_CROSS_SOURCE_QUERY, seed=11
    )
    assert multiset(answers_seq) == multiset(answers_evt)
    assert stats_evt.execution_time < stats_seq.execution_time


def test_single_source_plan_times_are_bit_identical(tiny_lake):
    """One producer degenerates to the sequential interleaving exactly."""
    query = """
    PREFIX v: <http://ex/vocab#>
    SELECT ?d ?dn WHERE { ?d a v:Disease ; v:diseaseName ?dn . }
    """
    sequential = engine_for(tiny_lake, "sequential")
    assert count_leaves(sequential.plan(query).root) == 1

    answers_seq, stats_seq = sequential.run(query, seed=11)
    answers_evt, stats_evt = engine_for(tiny_lake, "event").run(query, seed=11)
    assert [solution_key(s) for s in answers_seq] == [
        solution_key(s) for s in answers_evt
    ]
    assert stats_seq.execution_time == stats_evt.execution_time
    assert stats_seq.trace == stats_evt.trace
    assert stats_seq.messages == stats_evt.messages


def test_single_source_identity_on_lslod(small_lslod_lake):
    for name in ("Q2", "Q5"):
        query = BENCHMARK_QUERIES[name].text
        sequential = engine_for(small_lslod_lake, "sequential")
        if count_leaves(sequential.plan(query).root) != 1:
            continue
        __, stats_seq = sequential.run(query, seed=5)
        __, stats_evt = engine_for(small_lslod_lake, "event").run(query, seed=5)
        assert stats_seq.execution_time == stats_evt.execution_time
        assert stats_seq.trace == stats_evt.trace


def test_multi_source_benchmark_queries_drop_virtual_time(small_lslod_lake):
    for name in ("Q1", "Q4"):
        query = BENCHMARK_QUERIES[name].text
        sequential = engine_for(small_lslod_lake, "sequential")
        assert count_leaves(sequential.plan(query).root) >= 2
        answers_seq, stats_seq = sequential.run(query, seed=5)
        answers_evt, stats_evt = engine_for(small_lslod_lake, "event").run(query, seed=5)
        assert multiset(answers_seq) == multiset(answers_evt)
        assert stats_evt.execution_time < stats_seq.execution_time


# ---------------------------------------------------------------------------
# Cross-runtime answer equivalence on every operator shape
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "query",
    [TINY_QUERY, TINY_CROSS_SOURCE_QUERY, OPTIONAL_ORDER_QUERY, UNION_QUERY],
    ids=["join", "cross-filter", "optional-order", "union"],
)
def test_all_runtimes_agree_on_answers(tiny_lake, query):
    reference = None
    for runtime in RUNTIMES:
        answers, stats = engine_for(tiny_lake, runtime).run(query, seed=3)
        assert stats.execution_time > 0
        if reference is None:
            reference = multiset(answers)
        else:
            assert multiset(answers) == reference


def test_ordered_output_is_sorted_under_event_runtime(tiny_lake):
    answers, __ = engine_for(tiny_lake, "event").run(OPTIONAL_ORDER_QUERY, seed=3)
    symbols = [solution["sym"].lexical for solution in answers]
    assert symbols == sorted(symbols)


def test_limit_is_respected_and_stops_the_scheduler(tiny_lake):
    for runtime in RUNTIMES:
        answers, stats = engine_for(tiny_lake, runtime).run(LIMIT_QUERY, seed=3)
        assert len(answers) == 2
        assert stats.execution_time > 0


def test_dependent_join_agrees_across_runtimes(tiny_lake):
    policy = PlanPolicy.dependent_join()
    sequential = engine_for(tiny_lake, "sequential", policy=policy)
    plan = sequential.plan(TINY_CROSS_SOURCE_QUERY)
    assert find_op(plan.root, DependentJoin) is not None

    answers_seq, __ = sequential.run(TINY_CROSS_SOURCE_QUERY, seed=9)
    for runtime in ("event", "thread"):
        answers, __ = engine_for(tiny_lake, runtime, policy=policy).run(
            TINY_CROSS_SOURCE_QUERY, seed=9
        )
        assert multiset(answers) == multiset(answers_seq)


def test_event_and_thread_modes_match_to_float_noise(small_lslod_lake):
    """Thread mode replays the same virtual timeline as simulated mode.

    Timestamps may differ in the last ulps (local-clock deltas are
    re-associated), but never materially; answers agree as multisets.
    """
    query = BENCHMARK_QUERIES["Q1"].text
    answers_evt, stats_evt = engine_for(small_lslod_lake, "event").run(query, seed=21)
    answers_thr, stats_thr = engine_for(small_lslod_lake, "thread").run(query, seed=21)
    assert multiset(answers_evt) == multiset(answers_thr)
    assert stats_thr.execution_time == pytest.approx(stats_evt.execution_time)
    assert stats_thr.messages == stats_evt.messages


# ---------------------------------------------------------------------------
# Plumbing
# ---------------------------------------------------------------------------


def test_unknown_runtime_is_rejected(tiny_lake):
    with pytest.raises(ValueError, match="unknown runtime"):
        FederatedEngine(tiny_lake, runtime="parallel")
    engine = FederatedEngine(tiny_lake)
    with pytest.raises(ValueError, match="unknown runtime"):
        engine.execute(TINY_QUERY, runtime="evnet")


def test_execution_time_is_set_when_consumer_abandons_stream(tiny_lake):
    """A consumer breaking out early (LIMIT-style) still gets a well-defined
    execution time under every runtime."""
    for runtime in RUNTIMES:
        stream = engine_for(tiny_lake, runtime).execute(TINY_QUERY, seed=3)
        first = next(iter(stream))
        assert first
        stream._iterator.close()
        assert not stream.exhausted
        assert stream.stats.execution_time > 0
        assert stream.stats.execution_time == stream.context.now()
        assert stream.stats.answers == 1
