"""Scheduler determinism: bit-identical traces, and cache × runtime identity.

The guarantees two subsystems already depend on (cache replay, the
differential oracle) must survive the concurrent runtime:

* same seed ⇒ bit-identical answer sequences and traces across repeated
  runs, in both simulated-only ("event") and thread-pool ("thread") modes;
* warm-vs-cold cache runs are observationally identical under every
  runtime (caching saves machine time, never simulated time).
"""

from __future__ import annotations

import pytest

from repro.benchmark.metrics import solution_key
from repro.core.engine import FederatedEngine
from repro.core.policy import PlanPolicy
from repro.datasets import BENCHMARK_QUERIES
from repro.network.delays import NetworkSetting

from ..conftest import TINY_CROSS_SOURCE_QUERY

GAMMA3 = NetworkSetting.gamma3()
REPEATS = 10


def fingerprint(lake, runtime, query, seed, policy=None, cache=False):
    """Everything observable about one run, as one comparable value."""
    engine = FederatedEngine(
        lake,
        policy=policy or PlanPolicy.physical_design_aware(),
        network=GAMMA3,
        runtime=runtime,
        enable_plan_cache=cache,
        enable_subresult_cache=cache,
    )
    answers, stats = engine.run(query, seed=seed)
    return (
        [solution_key(solution) for solution in answers],
        stats.trace,
        stats.execution_time,
        stats.time_to_first_answer,
        stats.messages,
        stats.engine_cost,
    )


@pytest.mark.parametrize("runtime", ["event", "thread"])
def test_repeated_runs_are_bit_identical(tiny_lake, runtime):
    reference = fingerprint(tiny_lake, runtime, TINY_CROSS_SOURCE_QUERY, seed=42)
    for __ in range(REPEATS - 1):
        assert (
            fingerprint(tiny_lake, runtime, TINY_CROSS_SOURCE_QUERY, seed=42)
            == reference
        )


@pytest.mark.parametrize("runtime", ["event", "thread"])
def test_repeated_runs_on_lslod_are_bit_identical(small_lslod_lake, runtime):
    query = BENCHMARK_QUERIES["Q4"].text
    reference = fingerprint(small_lslod_lake, runtime, query, seed=42)
    for __ in range(2):
        assert fingerprint(small_lslod_lake, runtime, query, seed=42) == reference


def test_different_seeds_differ(tiny_lake):
    # Sanity: determinism is not degeneracy — the delay samples do move.
    a = fingerprint(tiny_lake, "event", TINY_CROSS_SOURCE_QUERY, seed=1)
    b = fingerprint(tiny_lake, "event", TINY_CROSS_SOURCE_QUERY, seed=2)
    assert a[2] != b[2]


@pytest.mark.parametrize("runtime", ["event", "thread"])
@pytest.mark.parametrize("policy_factory", [
    PlanPolicy.physical_design_aware,
    PlanPolicy.dependent_join,
])
def test_warm_cache_run_is_identical_to_cold(tiny_lake, runtime, policy_factory):
    """Scheduler × cache: warm replays re-charge the virtual clock exactly."""
    engine = FederatedEngine(
        tiny_lake,
        policy=policy_factory(),
        network=GAMMA3,
        runtime=runtime,
    )
    cold_answers, cold_stats = engine.run(TINY_CROSS_SOURCE_QUERY, seed=13)
    warm_answers, warm_stats = engine.run(TINY_CROSS_SOURCE_QUERY, seed=13)
    assert [solution_key(s) for s in warm_answers] == [
        solution_key(s) for s in cold_answers
    ]
    assert warm_stats.execution_time == cold_stats.execution_time
    assert warm_stats.trace == cold_stats.trace
    assert warm_stats.messages == cold_stats.messages
    assert warm_stats.plan_cache_hit is True


@pytest.mark.parametrize("runtime", ["event", "thread"])
def test_cached_engine_matches_uncached_engine(tiny_lake, runtime):
    cached = fingerprint(
        tiny_lake, runtime, TINY_CROSS_SOURCE_QUERY, seed=13, cache=True
    )
    uncached = fingerprint(
        tiny_lake, runtime, TINY_CROSS_SOURCE_QUERY, seed=13, cache=False
    )
    assert cached == uncached
