"""Tests for the RDF -> 3NF normalizer."""

import pytest

from repro.exceptions import SchemaError
from repro.mapping import normalize_graph
from repro.rdf import Graph, IRI, Literal, RDF_TYPE, Triple, XSD_INTEGER
from repro.relational import SQLType

from ..conftest import TINY_DISEASOME, make_tiny_graph

VOCAB = "http://ex/vocab#"


def add_entity(graph: Graph, class_name: str, key: int, **props):
    subject = IRI(f"http://ex/{class_name}/{key}")
    graph.add(Triple(subject, RDF_TYPE, IRI(VOCAB + class_name)))
    for name, value in props.items():
        if isinstance(value, IRI):
            graph.add(Triple(subject, IRI(VOCAB + name), value))
        elif isinstance(value, list):
            for item in value:
                graph.add(Triple(subject, IRI(VOCAB + name), Literal(str(item))))
        elif isinstance(value, int):
            graph.add(Triple(subject, IRI(VOCAB + name), Literal(str(value), XSD_INTEGER)))
        else:
            graph.add(Triple(subject, IRI(VOCAB + name), Literal(str(value))))
    return subject


class TestBasicNormalization:
    def test_base_tables_per_class(self):
        db, mapping, report = normalize_graph("tiny", make_tiny_graph(TINY_DISEASOME))
        assert set(report.base_tables) == {"disease", "gene"}

    def test_row_counts(self):
        db, __, report = normalize_graph("tiny", make_tiny_graph(TINY_DISEASOME))
        assert report.row_counts["disease"] == 3
        assert report.row_counts["gene"] == 4

    def test_subject_becomes_integer_pk(self):
        db, __, __r = normalize_graph("tiny", make_tiny_graph(TINY_DISEASOME))
        schema = db.table("gene").schema
        assert schema.primary_key == ("id",)
        assert schema.column("id").sql_type is SQLType.INTEGER

    def test_pk_index_created(self):
        db, __, __r = normalize_graph("tiny", make_tiny_graph(TINY_DISEASOME))
        assert db.has_index_on("gene", "id")

    def test_functional_literal_becomes_column(self):
        db, __, __r = normalize_graph("tiny", make_tiny_graph(TINY_DISEASOME))
        assert db.table("gene").schema.has_column("genesymbol")

    def test_link_becomes_fk_column(self):
        db, mapping, __ = normalize_graph("tiny", make_tiny_graph(TINY_DISEASOME))
        schema = db.table("gene").schema
        fk = schema.foreign_key_for("associateddisease")
        assert fk is not None
        assert fk.referenced_table == "disease"

    def test_data_loaded_correctly(self):
        db, __, __r = normalize_graph("tiny", make_tiny_graph(TINY_DISEASOME))
        rows = db.query(
            "SELECT genesymbol FROM gene WHERE associateddisease = 1 ORDER BY genesymbol"
        ).fetchall()
        assert rows == [("BRCA1",), ("TP53",)]

    def test_mapping_recorded(self):
        __, mapping, __r = normalize_graph("tiny", make_tiny_graph(TINY_DISEASOME))
        gene = mapping.class_mapping(IRI("http://ex/vocab#Gene"))
        assert gene.table == "gene"
        assert gene.subject_template == "http://ex/diseasome/Gene/{}"


class TestMultiValued:
    def test_satellite_table_created(self):
        graph = Graph()
        add_entity(graph, "Drug", 1, name="aspirin", effect=["rash", "nausea"])
        add_entity(graph, "Drug", 2, name="ibuprofen", effect=["pain"])
        db, mapping, report = normalize_graph("sider", graph)
        assert "drug_effect" in report.satellite_tables
        assert report.row_counts["drug_effect"] == 3

    def test_satellite_key_indexed(self):
        graph = Graph()
        add_entity(graph, "Drug", 1, effect=["a", "b"])
        db, __, __r = normalize_graph("sider", graph)
        assert db.has_index_on("drug_effect", "drug_id")

    def test_satellite_rows_deduplicated_per_subject(self):
        graph = Graph()
        add_entity(graph, "Drug", 1, effect=["a", "b"])
        add_entity(graph, "Drug", 2, effect=["a", "a"])  # graph dedups triples
        db, __, report = normalize_graph("sider", graph)
        assert report.row_counts["drug_effect"] == 3

    def test_mapping_kind_multivalued(self):
        graph = Graph()
        add_entity(graph, "Drug", 1, effect=["a", "b"])
        __, mapping, __r = normalize_graph("sider", graph)
        drug = mapping.class_mapping(IRI(VOCAB + "Drug"))
        predicate = drug.predicate_mapping(IRI(VOCAB + "effect"))
        assert predicate.kind == "multivalued"
        assert predicate.table == "drug_effect"


class TestTypeInference:
    def test_integer_column(self):
        graph = Graph()
        add_entity(graph, "Item", 1, degree=5)
        add_entity(graph, "Item", 2, degree=7)
        db, __, __r = normalize_graph("src", graph)
        assert db.table("item").schema.column("degree").sql_type is SQLType.INTEGER

    def test_mixed_numeric_becomes_real(self):
        graph = Graph()
        subject1 = IRI("http://ex/Item/1")
        graph.add(Triple(subject1, RDF_TYPE, IRI(VOCAB + "Item")))
        graph.add(Triple(subject1, IRI(VOCAB + "score"), Literal("1")))
        subject2 = IRI("http://ex/Item/2")
        graph.add(Triple(subject2, RDF_TYPE, IRI(VOCAB + "Item")))
        graph.add(Triple(subject2, IRI(VOCAB + "score"), Literal("2.5")))
        db, __, __r = normalize_graph("src", graph)
        assert db.table("item").schema.column("score").sql_type is SQLType.REAL

    def test_text_column(self):
        graph = Graph()
        add_entity(graph, "Item", 1, label="hello")
        db, __, __r = normalize_graph("src", graph)
        assert db.table("item").schema.column("label").sql_type is SQLType.TEXT

    def test_string_keys_supported(self):
        graph = Graph()
        subject = IRI("http://ex/Item/abc")
        graph.add(Triple(subject, RDF_TYPE, IRI(VOCAB + "Item")))
        graph.add(Triple(subject, IRI(VOCAB + "label"), Literal("x")))
        db, mapping, __ = normalize_graph("src", graph)
        assert db.table("item").schema.column("id").sql_type is SQLType.TEXT
        item = mapping.class_mapping(IRI(VOCAB + "Item"))
        assert item.subject_key(subject) == "abc"


class TestEdgeCases:
    def test_untyped_graph_rejected(self):
        graph = Graph()
        graph.add(Triple(IRI("http://ex/x"), IRI(VOCAB + "p"), Literal("v")))
        with pytest.raises(SchemaError):
            normalize_graph("src", graph)

    def test_links_to_external_iris_stored_as_text(self):
        graph = Graph()
        add_entity(graph, "Item", 1, sameAs=IRI("http://external/thing/9"))
        db, mapping, __ = normalize_graph("src", graph)
        item = mapping.class_mapping(IRI(VOCAB + "Item"))
        predicate = item.predicate_mapping(IRI(VOCAB + "sameAs"))
        assert predicate.object_template == "{}"
        rows = db.query("SELECT sameas FROM item").fetchall()
        assert rows == [("http://external/thing/9",)]

    def test_missing_functional_value_is_null(self):
        graph = Graph()
        add_entity(graph, "Item", 1, label="x")
        add_entity(graph, "Item", 2)
        db, __, __r = normalize_graph("src", graph)
        rows = dict(db.query("SELECT id, label FROM item").fetchall())
        assert rows[2] is None

    def test_statistics_analyzed_after_load(self):
        db, __, __r = normalize_graph("tiny", make_tiny_graph(TINY_DISEASOME))
        statistics = db.statistics("gene")
        assert statistics.row_count == 4
