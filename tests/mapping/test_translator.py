"""Tests for SSQ -> SQL translation."""

import pytest

from repro.core import decompose_star_shaped
from repro.exceptions import TranslationError
from repro.mapping import (
    can_translate_filter,
    filter_columns,
    normalize_graph,
    stars_variable_columns,
    translate_stars,
)
from repro.rdf import Graph, IRI, Literal, RDF_TYPE, Triple
from repro.sparql import parse_query

from ..conftest import TINY_DISEASOME, make_tiny_graph

PREFIX = "PREFIX v: <http://ex/vocab#>\n"
GENE = IRI("http://ex/vocab#Gene")
DISEASE = IRI("http://ex/vocab#Disease")


@pytest.fixture(scope="module")
def prepared():
    db, mapping, __ = normalize_graph("tiny", make_tiny_graph(TINY_DISEASOME))
    return db, mapping


def stars_for(text: str):
    return decompose_star_shaped(parse_query(PREFIX + text)).subqueries


class TestSingleStar:
    def test_variable_projection(self, prepared):
        db, mapping = prepared
        (star,) = stars_for("SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?s . }")
        result = translate_stars([(star, mapping.class_mapping(GENE))])
        assert "FROM gene" in result.sql
        assert {binding.variable for binding in result.outputs} == {"g", "s"}

    def test_null_guard_added(self, prepared):
        db, mapping = prepared
        (star,) = stars_for("SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?s . }")
        result = translate_stars([(star, mapping.class_mapping(GENE))])
        assert "IS NOT NULL" in result.sql

    def test_constant_object_becomes_where(self, prepared):
        db, mapping = prepared
        (star,) = stars_for('SELECT * WHERE { ?g a v:Gene ; v:geneSymbol "BRCA1" . }')
        result = translate_stars([(star, mapping.class_mapping(GENE))])
        assert "genesymbol = 'BRCA1'" in result.sql
        rows = db.query(result.statement).fetchall()
        assert len(rows) == 1

    def test_constant_link_object(self, prepared):
        db, mapping = prepared
        (star,) = stars_for(
            "SELECT * WHERE { ?g a v:Gene ; "
            "v:associatedDisease <http://ex/diseasome/Disease/1> . }"
        )
        result = translate_stars([(star, mapping.class_mapping(GENE))])
        assert "associateddisease = 1" in result.sql
        assert len(db.query(result.statement).fetchall()) == 2

    def test_constant_subject(self, prepared):
        db, mapping = prepared
        (star,) = stars_for(
            "SELECT * WHERE { <http://ex/diseasome/Gene/10> v:geneSymbol ?s . }"
        )
        result = translate_stars([(star, mapping.class_mapping(GENE))])
        assert "id = 10" in result.sql
        rows = db.query(result.statement).fetchall()
        solutions = [result.solution_for(row) for row in rows]
        assert solutions == [{"s": Literal("BRCA1")}]

    def test_solution_reconstruction(self, prepared):
        db, mapping = prepared
        (star,) = stars_for("SELECT * WHERE { ?g a v:Gene ; v:associatedDisease ?d . }")
        result = translate_stars([(star, mapping.class_mapping(GENE))])
        solutions = [result.solution_for(row) for row in db.query(result.statement)]
        assert all(isinstance(solution["g"], IRI) for solution in solutions)
        assert all(isinstance(solution["d"], IRI) for solution in solutions)
        assert all(
            solution["d"].value.startswith("http://ex/diseasome/Disease/")
            for solution in solutions
        )

    def test_wrong_class_type_rejected(self, prepared):
        db, mapping = prepared
        (star,) = stars_for("SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?s . }")
        with pytest.raises(TranslationError):
            translate_stars([(star, mapping.class_mapping(DISEASE))])

    def test_unknown_predicate_rejected(self, prepared):
        db, mapping = prepared
        (star,) = stars_for("SELECT * WHERE { ?g a v:Gene ; v:nope ?x . }")
        with pytest.raises(TranslationError):
            translate_stars([(star, mapping.class_mapping(GENE))])


class TestMergedStars:
    def get_stars(self):
        return stars_for(
            "SELECT * WHERE { "
            "?g a v:Gene ; v:geneSymbol ?s ; v:associatedDisease ?d . "
            "?d a v:Disease ; v:diseaseName ?dn . }"
        )

    def test_merged_sql_joins_base_tables(self, prepared):
        db, mapping = prepared
        star_g, star_d = self.get_stars()
        result = translate_stars(
            [
                (star_g, mapping.class_mapping(GENE)),
                (star_d, mapping.class_mapping(DISEASE)),
            ]
        )
        assert "JOIN disease" in result.sql
        assert "ON t0.associateddisease = t1.id" in result.sql

    def test_merged_results_match_engine_join(self, prepared):
        db, mapping = prepared
        star_g, star_d = self.get_stars()
        result = translate_stars(
            [
                (star_g, mapping.class_mapping(GENE)),
                (star_d, mapping.class_mapping(DISEASE)),
            ]
        )
        rows = db.query(result.statement).fetchall()
        assert len(rows) == 4  # every gene joins its disease

    def test_merge_without_shared_variable_rejected(self, prepared):
        db, mapping = prepared
        stars = stars_for(
            "SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?s . "
            "?d a v:Disease ; v:diseaseName ?dn . }"
        )
        with pytest.raises(TranslationError):
            translate_stars(
                [
                    (stars[0], mapping.class_mapping(GENE)),
                    (stars[1], mapping.class_mapping(DISEASE)),
                ]
            )

    def test_incompatible_templates_rejected(self, prepared):
        db, mapping = prepared
        # ?x is a gene subject in one star and a disease subject in the other
        stars = stars_for(
            "SELECT * WHERE { ?x a v:Gene ; v:geneSymbol ?s . }"
        ) + stars_for(
            "SELECT * WHERE { ?x a v:Disease ; v:diseaseName ?dn . }"
        )
        with pytest.raises(TranslationError):
            translate_stars(
                [
                    (stars[0], mapping.class_mapping(GENE)),
                    (stars[1], mapping.class_mapping(DISEASE)),
                ]
            )


class TestFilterTranslation:
    def star_with_filter(self, filter_text: str):
        return stars_for(
            "SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?s . " + filter_text + " }"
        )[0]

    def test_equality_filter(self, prepared):
        db, mapping = prepared
        star = self.star_with_filter('FILTER(?s = "BRCA1")')
        result = translate_stars(
            [(star, mapping.class_mapping(GENE))], pushed_filters=star.filters
        )
        assert "= 'BRCA1'" in result.sql

    def test_contains_becomes_like(self, prepared):
        db, mapping = prepared
        star = self.star_with_filter('FILTER(CONTAINS(?s, "RC"))')
        result = translate_stars(
            [(star, mapping.class_mapping(GENE))], pushed_filters=star.filters
        )
        assert "LIKE '%RC%'" in result.sql
        rows = db.query(result.statement).fetchall()
        assert len(rows) == 1

    def test_strstarts_strends(self, prepared):
        db, mapping = prepared
        star = self.star_with_filter('FILTER(STRSTARTS(?s, "BR"))')
        result = translate_stars(
            [(star, mapping.class_mapping(GENE))], pushed_filters=star.filters
        )
        assert "LIKE 'BR%'" in result.sql
        star = self.star_with_filter('FILTER(STRENDS(?s, "53"))')
        result = translate_stars(
            [(star, mapping.class_mapping(GENE))], pushed_filters=star.filters
        )
        assert "LIKE '%53'" in result.sql

    def test_logical_combination(self, prepared):
        db, mapping = prepared
        star = self.star_with_filter('FILTER(?s = "BRCA1" || ?s = "TP53")')
        result = translate_stars(
            [(star, mapping.class_mapping(GENE))], pushed_filters=star.filters
        )
        rows = db.query(result.statement).fetchall()
        assert len(rows) == 2

    def test_can_translate_filter(self, prepared):
        db, mapping = prepared
        pair = [(self.star_with_filter('FILTER(?s = "x")'), mapping.class_mapping(GENE))]
        star = pair[0][0]
        assert can_translate_filter(star.filters[0], pair)

    def test_regex_not_translatable(self, prepared):
        db, mapping = prepared
        star = self.star_with_filter('FILTER(REGEX(?s, "^B.*1$"))')
        pair = [(star, mapping.class_mapping(GENE))]
        assert not can_translate_filter(star.filters[0], pair)

    def test_entity_variable_filter_not_translatable(self, prepared):
        db, mapping = prepared
        star = stars_for(
            "SELECT * WHERE { ?g a v:Gene ; v:associatedDisease ?d . "
            "FILTER(?d = ?d) }"
        )[0]
        pair = [(star, mapping.class_mapping(GENE))]
        assert not can_translate_filter(star.filters[0], pair)

    def test_wildcard_pattern_not_translatable(self, prepared):
        db, mapping = prepared
        star = self.star_with_filter('FILTER(CONTAINS(?s, "100%"))')
        pair = [(star, mapping.class_mapping(GENE))]
        assert not can_translate_filter(star.filters[0], pair)

    def test_filter_columns(self, prepared):
        db, mapping = prepared
        star = self.star_with_filter('FILTER(?s = "BRCA1")')
        pair = [(star, mapping.class_mapping(GENE))]
        assert filter_columns(star.filters[0], pair) == [("gene", "genesymbol")]


class TestVariableColumns:
    def test_subject_and_object_columns(self, prepared):
        db, mapping = prepared
        (star,) = stars_for(
            "SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?s ; v:associatedDisease ?d . }"
        )
        columns = stars_variable_columns([(star, mapping.class_mapping(GENE))])
        assert columns["g"] == ("gene", "id")
        assert columns["s"] == ("gene", "genesymbol")
        assert columns["d"] == ("gene", "associateddisease")
