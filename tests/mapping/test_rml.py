"""Tests for the mapping model: templates, term/value conversion."""

import pytest

from repro.exceptions import TranslationError
from repro.mapping import (
    ClassMapping,
    PredicateMapping,
    SourceMapping,
    extract_value,
    render_iri,
    sql_type_for_datatype,
)
from repro.rdf import IRI, Literal, XSD_DOUBLE, XSD_INTEGER, XSD_STRING
from repro.relational import SQLType

TEMPLATE = "http://ex/diseasome/Gene/{}"


class TestTemplates:
    def test_render(self):
        assert render_iri(TEMPLATE, 7) == IRI("http://ex/diseasome/Gene/7")

    def test_extract(self):
        assert extract_value(TEMPLATE, IRI("http://ex/diseasome/Gene/7")) == "7"

    def test_extract_mismatch_returns_none(self):
        assert extract_value(TEMPLATE, IRI("http://other/Gene/7")) is None

    def test_extract_with_suffix(self):
        template = "http://ex/{}/info"
        assert extract_value(template, IRI("http://ex/42/info")) == "42"
        assert extract_value(template, IRI("http://ex/42/other")) is None

    def test_template_without_placeholder_rejected(self):
        with pytest.raises(TranslationError):
            render_iri("http://ex/static", 1)
        with pytest.raises(TranslationError):
            extract_value("http://ex/static", IRI("http://ex/static"))

    def test_roundtrip(self):
        for key in (7, "abc", "x-y_z"):
            iri = render_iri(TEMPLATE, key)
            assert extract_value(TEMPLATE, iri) == str(key)


class TestSQLTypeMapping:
    def test_datatype_to_sql_type(self):
        assert sql_type_for_datatype(XSD_INTEGER) is SQLType.INTEGER
        assert sql_type_for_datatype(XSD_DOUBLE) is SQLType.REAL
        assert sql_type_for_datatype(XSD_STRING) is SQLType.TEXT
        assert sql_type_for_datatype("http://www.w3.org/2001/XMLSchema#boolean") is SQLType.BOOLEAN


class TestPredicateMapping:
    def column_mapping(self) -> PredicateMapping:
        return PredicateMapping(
            predicate=IRI("http://ex/v#symbol"),
            kind="column",
            column="symbol",
            datatype=XSD_STRING,
        )

    def link_mapping(self) -> PredicateMapping:
        return PredicateMapping(
            predicate=IRI("http://ex/v#disease"),
            kind="link",
            column="disease_id",
            object_template="http://ex/Disease/{}",
            datatype=XSD_STRING,
        )

    def test_literal_term_roundtrip(self):
        mapping = self.column_mapping()
        assert mapping.value_for_term(Literal("BRCA1")) == "BRCA1"
        assert mapping.term_for_value("BRCA1") == Literal("BRCA1")

    def test_integer_literal(self):
        mapping = PredicateMapping(
            predicate=IRI("http://ex/v#degree"),
            kind="column",
            column="degree",
            datatype=XSD_INTEGER,
        )
        assert mapping.value_for_term(Literal("5", XSD_INTEGER)) == 5
        assert mapping.term_for_value(5) == Literal("5", XSD_INTEGER)

    def test_link_term_roundtrip(self):
        mapping = self.link_mapping()
        assert mapping.value_for_term(IRI("http://ex/Disease/3")) == 3
        assert mapping.term_for_value(3) == IRI("http://ex/Disease/3")

    def test_link_rejects_literal(self):
        with pytest.raises(TranslationError):
            self.link_mapping().value_for_term(Literal("3"))

    def test_link_rejects_foreign_iri(self):
        with pytest.raises(TranslationError):
            self.link_mapping().value_for_term(IRI("http://other/3"))

    def test_column_rejects_iri(self):
        with pytest.raises(TranslationError):
            self.column_mapping().value_for_term(IRI("http://ex/x"))

    def test_null_value_gives_no_term(self):
        assert self.column_mapping().term_for_value(None) is None

    def test_is_object_property(self):
        assert self.link_mapping().is_object_property
        assert not self.column_mapping().is_object_property


class TestClassAndSourceMapping:
    def make_class_mapping(self) -> ClassMapping:
        return ClassMapping(
            class_iri=IRI("http://ex/v#Gene"),
            source_id="diseasome",
            table="gene",
            subject_column="id",
            subject_template="http://ex/Gene/{}",
            predicates={
                IRI("http://ex/v#symbol"): PredicateMapping(
                    predicate=IRI("http://ex/v#symbol"), kind="column", column="symbol"
                )
            },
        )

    def test_subject_roundtrip(self):
        mapping = self.make_class_mapping()
        assert mapping.subject_term(5) == IRI("http://ex/Gene/5")
        assert mapping.subject_key(IRI("http://ex/Gene/5")) == 5

    def test_subject_key_mismatch(self):
        with pytest.raises(TranslationError):
            self.make_class_mapping().subject_key(IRI("http://other/5"))

    def test_predicate_lookup(self):
        mapping = self.make_class_mapping()
        assert mapping.has_predicate(IRI("http://ex/v#symbol"))
        with pytest.raises(TranslationError):
            mapping.predicate_mapping(IRI("http://ex/v#nope"))

    def test_source_mapping_lookup(self):
        source = SourceMapping(source_id="diseasome")
        class_mapping = self.make_class_mapping()
        source.add(class_mapping)
        assert source.class_mapping(IRI("http://ex/v#Gene")) is class_mapping
        with pytest.raises(TranslationError):
            source.class_mapping(IRI("http://ex/v#Other"))

    def test_classes_with_predicates(self):
        source = SourceMapping(source_id="diseasome")
        source.add(self.make_class_mapping())
        matches = source.classes_with_predicates({IRI("http://ex/v#symbol")})
        assert len(matches) == 1
        assert source.classes_with_predicates({IRI("http://ex/v#nope")}) == []
