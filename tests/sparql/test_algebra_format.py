"""Tests for algebra helpers and query formatting of complex groups."""

import pytest

from repro.rdf import IRI, Literal, Variable
from repro.sparql import (
    BinaryOp,
    Filter,
    FunctionCall,
    TermExpr,
    UnaryOp,
    VariableExpr,
    expression_variables,
    format_query,
    parse_query,
)
from repro.sparql.algebra import TriplePattern

PREFIX = "PREFIX ex: <http://ex/>\n"


class TestExpressionVariables:
    def test_collects_nested(self):
        expression = BinaryOp(
            "&&",
            FunctionCall("CONTAINS", (VariableExpr(Variable("a")), TermExpr(Literal("x")))),
            UnaryOp("!", BinaryOp("=", VariableExpr(Variable("b")), TermExpr(Literal("y")))),
        )
        assert {v.name for v in expression_variables(expression)} == {"a", "b"}

    def test_constant_has_none(self):
        assert expression_variables(TermExpr(Literal("x"))) == set()


class TestTriplePattern:
    def test_variables_and_ground(self):
        pattern = TriplePattern(Variable("s"), IRI("http://ex/p"), Literal("o"))
        assert pattern.variable_names() == {"s"}
        assert not pattern.is_ground()
        ground = TriplePattern(IRI("http://ex/s"), IRI("http://ex/p"), Literal("o"))
        assert ground.is_ground()

    def test_unpacking(self):
        pattern = TriplePattern(Variable("s"), IRI("http://ex/p"), Variable("o"))
        s, p, o = pattern
        assert s == Variable("s")


class TestFormatComplexGroups:
    def test_optional_rendered(self):
        query = parse_query(
            PREFIX + "SELECT * WHERE { ?s ex:p ?o OPTIONAL { ?s ex:q ?q } }"
        )
        text = format_query(query)
        assert "OPTIONAL {" in text
        reparsed = parse_query(text)
        assert len(reparsed.where.optionals) == 1

    def test_union_rendered(self):
        query = parse_query(
            PREFIX + "SELECT * WHERE { { ?s ex:p ?o } UNION { ?s ex:q ?o } }"
        )
        text = format_query(query)
        assert "UNION" in text
        reparsed = parse_query(text)
        assert len(reparsed.where.unions) == 1
        assert len(reparsed.where.unions[0]) == 2

    def test_group_variables_include_all_structures(self):
        query = parse_query(
            PREFIX
            + "SELECT * WHERE { ?s ex:p ?o OPTIONAL { ?s ex:q ?q } "
            "FILTER(?o > 1) }"
        )
        names = {v.name for v in query.where.variables()}
        assert names == {"s", "o", "q"}

    def test_all_triple_patterns_walks_structures(self):
        query = parse_query(
            PREFIX
            + "SELECT * WHERE { { ?a ex:p ?b } UNION { ?a ex:q ?b } "
            "OPTIONAL { ?a ex:r ?c } }"
        )
        # top group has no direct patterns but nested ones are reachable
        assert len(list(query.where.all_triple_patterns())) == 3


class TestMeterHelpers:
    def test_merge_and_reset(self):
        from repro.relational import OperationMeter

        first = OperationMeter()
        first.count("rows_scanned", 5)
        second = OperationMeter()
        second.count("rows_scanned", 2)
        second.count("index_probes", 1)
        first.merge(second)
        assert first.get("rows_scanned") == 7
        assert first.total() == 8
        snapshot = first.snapshot()
        first.reset()
        assert first.total() == 0
        assert snapshot["index_probes"] == 1  # snapshot decoupled

    def test_null_meter_discards(self):
        from repro.relational import NullMeter

        meter = NullMeter()
        meter.count("rows_scanned", 100)
        assert meter.total() == 0
