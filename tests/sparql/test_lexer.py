"""Tests for the SPARQL tokenizer."""

import pytest

from repro.exceptions import SPARQLParseError
from repro.sparql import tokenize


def kinds(text: str) -> list[str]:
    return [token.kind for token in tokenize(text)]


def values(text: str) -> list[str]:
    return [token.value for token in tokenize(text)][:-1]  # drop EOF


class TestTokens:
    def test_variable(self):
        tokens = tokenize("?gene $other")
        assert tokens[0].kind == "VAR" and tokens[0].value == "gene"
        assert tokens[1].kind == "VAR" and tokens[1].value == "other"

    def test_iri(self):
        token = tokenize("<http://ex/a>")[0]
        assert token.kind == "IRIREF"
        assert token.value == "http://ex/a"

    def test_pname(self):
        token = tokenize("ex:drug")[0]
        assert token.kind == "PNAME"
        assert token.value == "ex:drug"

    def test_pname_must_not_end_with_dot(self):
        tokens = tokenize("ex:drug.")
        assert tokens[0].value == "ex:drug"
        assert tokens[1].value == "."

    def test_keywords_uppercased(self):
        tokens = tokenize("select Where FILTER")
        assert all(token.kind == "KEYWORD" for token in tokens[:-1])
        assert [token.value for token in tokens[:-1]] == ["SELECT", "WHERE", "FILTER"]

    def test_function_name_is_name(self):
        assert tokenize("CONTAINS")[0].kind == "NAME"

    def test_string_escapes(self):
        token = tokenize(r'"a\n\t\"b"')[0]
        assert token.value == 'a\n\t"b'

    def test_single_quoted_string(self):
        assert tokenize("'hi'")[0].value == "hi"

    def test_numbers(self):
        tokens = tokenize("42 4.5 1e3")
        assert tokens[0].kind == "INTEGER"
        assert tokens[1].kind == "DECIMAL"
        assert tokens[2].kind == "DECIMAL"

    def test_multichar_punctuation(self):
        assert values("<= >= != && || ^^") == ["<=", ">=", "!=", "&&", "||", "^^"]

    def test_less_than_vs_iri(self):
        # `?a < 5` must lex `<` as punctuation, not an IRI opener.
        tokens = tokenize("?a < 5")
        assert tokens[1].kind == "PUNCT"
        assert tokens[1].value == "<"

    def test_comments_skipped(self):
        tokens = tokenize("?a # comment\n?b")
        assert [token.value for token in tokens[:-1]] == ["a", "b"]

    def test_positions_tracked(self):
        tokens = tokenize("?a\n  ?b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_langtag(self):
        tokens = tokenize('"hi"@en-GB')
        assert tokens[1].kind == "LANGTAG"
        assert tokens[1].value == "en-GB"


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(SPARQLParseError):
            tokenize('"unterminated')

    def test_empty_variable(self):
        with pytest.raises(SPARQLParseError):
            tokenize("? ")

    def test_unknown_character(self):
        with pytest.raises(SPARQLParseError):
            tokenize("@@@")

    def test_unknown_escape(self):
        with pytest.raises(SPARQLParseError):
            tokenize(r'"\q"')
