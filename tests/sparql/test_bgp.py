"""Tests for local SPARQL evaluation over a graph."""

import pytest

from repro.rdf import Graph, IRI, Literal, Variable
from repro.sparql import evaluate_bgp, evaluate_query, match_pattern, parse_query
from repro.sparql.algebra import TriplePattern

from ..conftest import TINY_DISEASOME, make_tiny_graph

PREFIX = "PREFIX v: <http://ex/vocab#>\n"


@pytest.fixture
def graph() -> Graph:
    return make_tiny_graph(TINY_DISEASOME)


def run(graph: Graph, text: str):
    return list(evaluate_query(graph, parse_query(PREFIX + text)))


class TestMatchPattern:
    def test_binds_variables(self, graph):
        pattern = TriplePattern(
            Variable("g"), IRI("http://ex/vocab#geneSymbol"), Variable("s")
        )
        solutions = list(match_pattern(graph, pattern, {}))
        assert len(solutions) == 4
        assert all({"g", "s"} <= set(solution) for solution in solutions)

    def test_respects_existing_bindings(self, graph):
        pattern = TriplePattern(
            Variable("g"), IRI("http://ex/vocab#geneSymbol"), Variable("s")
        )
        initial = {"s": Literal("BRCA1")}
        solutions = list(match_pattern(graph, pattern, initial))
        assert len(solutions) == 1
        assert solutions[0]["g"] == IRI("http://ex/diseasome/Gene/10")

    def test_repeated_variable_must_agree(self, graph):
        # ?x v:geneSymbol ?x can never match (IRI subject vs literal object)
        pattern = TriplePattern(
            Variable("x"), IRI("http://ex/vocab#geneSymbol"), Variable("x")
        )
        assert list(match_pattern(graph, pattern, {})) == []


class TestBGP:
    def test_join_across_patterns(self, graph):
        query = parse_query(
            PREFIX
            + "SELECT * WHERE { ?g v:geneSymbol ?s . ?g v:associatedDisease ?d . }"
        )
        solutions = list(evaluate_bgp(graph, query.where.patterns))
        assert len(solutions) == 4

    def test_empty_pattern_list_yields_empty_solution(self, graph):
        solutions = list(evaluate_bgp(graph, []))
        assert solutions == [{}]

    def test_no_match(self, graph):
        query = parse_query(PREFIX + 'SELECT * WHERE { ?g v:geneSymbol "NOPE" . }')
        assert list(evaluate_bgp(graph, query.where.patterns)) == []


class TestQueries:
    def test_star_join(self, graph):
        rows = run(
            graph,
            "SELECT ?g ?dn WHERE { ?g a v:Gene ; v:associatedDisease ?d . ?d v:diseaseName ?dn }",
        )
        assert len(rows) == 4

    def test_filter(self, graph):
        rows = run(
            graph,
            'SELECT ?dn WHERE { ?d a v:Disease ; v:diseaseName ?dn FILTER(CONTAINS(?dn, "cancer")) }',
        )
        assert {row["dn"].lexical for row in rows} == {"breast cancer", "lung cancer"}

    def test_projection(self, graph):
        rows = run(graph, "SELECT ?dn WHERE { ?d v:diseaseName ?dn }")
        assert all(set(row) == {"dn"} for row in rows)

    def test_distinct(self, graph):
        rows = run(graph, "SELECT DISTINCT ?dc WHERE { ?d v:diseaseClass ?dc }")
        assert len(rows) == 2

    def test_order_by(self, graph):
        rows = run(graph, "SELECT ?dn WHERE { ?d v:diseaseName ?dn } ORDER BY ?dn")
        names = [row["dn"].lexical for row in rows]
        assert names == sorted(names)

    def test_order_by_desc(self, graph):
        rows = run(graph, "SELECT ?dn WHERE { ?d v:diseaseName ?dn } ORDER BY DESC(?dn)")
        names = [row["dn"].lexical for row in rows]
        assert names == sorted(names, reverse=True)

    def test_limit_offset(self, graph):
        all_rows = run(graph, "SELECT ?dn WHERE { ?d v:diseaseName ?dn } ORDER BY ?dn")
        page = run(
            graph, "SELECT ?dn WHERE { ?d v:diseaseName ?dn } ORDER BY ?dn LIMIT 1 OFFSET 1"
        )
        assert page == all_rows[1:2]

    def test_optional_keeps_unmatched(self, graph):
        rows = run(
            graph,
            "SELECT * WHERE { ?d a v:Disease OPTIONAL { ?d v:missing ?m } }",
        )
        assert len(rows) == 3
        assert all("m" not in row for row in rows)

    def test_optional_extends_matched(self, graph):
        rows = run(
            graph,
            "SELECT * WHERE { ?d a v:Disease OPTIONAL { ?d v:diseaseName ?dn } }",
        )
        assert all("dn" in row for row in rows)

    def test_union(self, graph):
        rows = run(
            graph,
            'SELECT ?x WHERE { { ?x v:diseaseClass "cancer" } UNION { ?x v:geneSymbol "INS" } }',
        )
        assert len(rows) == 3

    def test_constant_subject(self, graph):
        rows = run(
            graph,
            "SELECT ?s WHERE { <http://ex/diseasome/Gene/10> v:geneSymbol ?s }",
        )
        assert rows == [{"s": Literal("BRCA1")}]

    def test_cross_product_of_disconnected_patterns(self, graph):
        rows = run(
            graph,
            "SELECT * WHERE { ?d a v:Disease . ?g a v:Gene . }",
        )
        assert len(rows) == 12  # 3 diseases x 4 genes
