"""Tests for the SPARQL parser."""

import pytest

from repro.exceptions import SPARQLParseError
from repro.rdf import IRI, Literal, Variable, XSD_BOOLEAN, XSD_DECIMAL, XSD_INTEGER
from repro.sparql import (
    BinaryOp,
    FunctionCall,
    TermExpr,
    VariableExpr,
    format_query,
    parse_query,
)


def parse(text: str):
    return parse_query("PREFIX ex: <http://ex/>\n" + text)


class TestProjection:
    def test_select_variables(self):
        query = parse("SELECT ?a ?b WHERE { ?a ex:p ?b }")
        assert query.variables == [Variable("a"), Variable("b")]

    def test_select_star(self):
        query = parse("SELECT * WHERE { ?a ex:p ?b }")
        assert query.is_select_star()
        assert query.projected_variables() == [Variable("a"), Variable("b")]

    def test_distinct(self):
        assert parse("SELECT DISTINCT ?a WHERE { ?a ex:p ?b }").distinct

    def test_reduced_not_distinct(self):
        assert not parse("SELECT REDUCED ?a WHERE { ?a ex:p ?b }").distinct

    def test_missing_projection_raises(self):
        with pytest.raises(SPARQLParseError):
            parse("SELECT WHERE { ?a ex:p ?b }")


class TestTriplePatterns:
    def test_simple_pattern(self):
        query = parse("SELECT * WHERE { ?s ex:p ?o . }")
        pattern = query.where.patterns[0]
        assert pattern.subject == Variable("s")
        assert pattern.predicate == IRI("http://ex/p")
        assert pattern.object == Variable("o")

    def test_a_expands_to_rdf_type(self):
        query = parse("SELECT * WHERE { ?s a ex:Gene }")
        assert query.where.patterns[0].predicate.value.endswith("#type")

    def test_semicolon_shares_subject(self):
        query = parse("SELECT * WHERE { ?s ex:p ?o ; ex:q ?p . }")
        assert len(query.where.patterns) == 2
        assert all(p.subject == Variable("s") for p in query.where.patterns)

    def test_comma_shares_subject_and_predicate(self):
        query = parse('SELECT * WHERE { ?s ex:p "a", "b" . }')
        objects = [p.object for p in query.where.patterns]
        assert objects == [Literal("a"), Literal("b")]

    def test_trailing_semicolon(self):
        query = parse("SELECT * WHERE { ?s ex:p ?o ; . }")
        assert len(query.where.patterns) == 1

    def test_full_iri_terms(self):
        query = parse("SELECT * WHERE { <http://ex/s> <http://ex/p> <http://ex/o> }")
        pattern = query.where.patterns[0]
        assert pattern.subject == IRI("http://ex/s")

    def test_integer_literal_object(self):
        query = parse("SELECT * WHERE { ?s ex:p 42 }")
        assert query.where.patterns[0].object == Literal("42", XSD_INTEGER)

    def test_decimal_literal_object(self):
        query = parse("SELECT * WHERE { ?s ex:p 4.5 }")
        assert query.where.patterns[0].object == Literal("4.5", XSD_DECIMAL)

    def test_boolean_literal_object(self):
        query = parse("SELECT * WHERE { ?s ex:p true }")
        assert query.where.patterns[0].object == Literal("true", XSD_BOOLEAN)

    def test_typed_literal_object(self):
        query = parse(
            'SELECT * WHERE { ?s ex:p "5"^^<http://www.w3.org/2001/XMLSchema#integer> }'
        )
        assert query.where.patterns[0].object == Literal("5", XSD_INTEGER)

    def test_language_literal_object(self):
        query = parse('SELECT * WHERE { ?s ex:p "hi"@en }')
        assert query.where.patterns[0].object == Literal("hi", language="en")

    def test_literal_subject_rejected(self):
        with pytest.raises(SPARQLParseError):
            parse('SELECT * WHERE { "s" ex:p ?o }')

    def test_unknown_prefix_rejected(self):
        with pytest.raises(SPARQLParseError):
            parse_query("SELECT * WHERE { ?s nope:p ?o }")


class TestFilters:
    def test_comparison_filter(self):
        query = parse("SELECT * WHERE { ?s ex:p ?o FILTER(?o > 5) }")
        expression = query.where.filters[0].expression
        assert isinstance(expression, BinaryOp)
        assert expression.operator == ">"

    def test_logical_precedence(self):
        query = parse("SELECT * WHERE { ?s ex:p ?o FILTER(?o > 1 && ?o < 9 || ?o = 0) }")
        expression = query.where.filters[0].expression
        assert expression.operator == "||"
        assert expression.left.operator == "&&"

    def test_function_call(self):
        query = parse('SELECT * WHERE { ?s ex:p ?o FILTER(CONTAINS(?o, "x")) }')
        expression = query.where.filters[0].expression
        assert isinstance(expression, FunctionCall)
        assert expression.name == "CONTAINS"

    def test_function_case_insensitive(self):
        query = parse('SELECT * WHERE { ?s ex:p ?o FILTER(contains(?o, "x")) }')
        assert query.where.filters[0].expression.name == "CONTAINS"

    def test_unknown_function_rejected(self):
        with pytest.raises(SPARQLParseError):
            parse('SELECT * WHERE { ?s ex:p ?o FILTER(FROBNICATE(?o)) }')

    def test_arithmetic(self):
        query = parse("SELECT * WHERE { ?s ex:p ?o FILTER(?o * 2 + 1 >= 7) }")
        expression = query.where.filters[0].expression
        assert expression.operator == ">="

    def test_negation(self):
        query = parse('SELECT * WHERE { ?s ex:p ?o FILTER(!CONTAINS(?o, "x")) }')
        assert query.where.filters[0].expression.operator == "!"


class TestGroups:
    def test_optional(self):
        query = parse("SELECT * WHERE { ?s ex:p ?o OPTIONAL { ?s ex:q ?q } }")
        assert len(query.where.optionals) == 1
        assert query.where.optionals[0].patterns[0].predicate == IRI("http://ex/q")

    def test_union(self):
        query = parse("SELECT * WHERE { { ?s ex:p ?o } UNION { ?s ex:q ?o } }")
        assert len(query.where.unions) == 1
        assert len(query.where.unions[0]) == 2

    def test_nested_group_merges(self):
        query = parse("SELECT * WHERE { { ?s ex:p ?o } ?s ex:q ?q }")
        assert len(query.where.patterns) == 2
        assert not query.where.unions

    def test_unterminated_group(self):
        with pytest.raises(SPARQLParseError):
            parse("SELECT * WHERE { ?s ex:p ?o")


class TestModifiers:
    def test_limit_offset(self):
        query = parse("SELECT * WHERE { ?s ex:p ?o } LIMIT 5 OFFSET 2")
        assert query.limit == 5
        assert query.offset == 2

    def test_order_by_variable(self):
        query = parse("SELECT * WHERE { ?s ex:p ?o } ORDER BY ?o")
        assert len(query.order_by) == 1
        assert query.order_by[0].ascending

    def test_order_by_desc(self):
        query = parse("SELECT * WHERE { ?s ex:p ?o } ORDER BY DESC(?o)")
        assert not query.order_by[0].ascending

    def test_order_by_multiple_keys(self):
        query = parse("SELECT * WHERE { ?s ex:p ?o } ORDER BY ?s DESC(?o)")
        assert len(query.order_by) == 2

    def test_bad_limit(self):
        with pytest.raises(SPARQLParseError):
            parse("SELECT * WHERE { ?s ex:p ?o } LIMIT x")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SPARQLParseError):
            parse("SELECT * WHERE { ?s ex:p ?o } garbage")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "SELECT ?a WHERE { ?a ex:p ?b . }",
            "SELECT DISTINCT ?a ?b WHERE { ?a ex:p ?b . ?b ex:q ?c . FILTER((?c > 5)) }",
            'SELECT * WHERE { ?a ex:p ?b . FILTER(CONTAINS(?b, "x")) }\nLIMIT 3',
        ],
    )
    def test_format_parse_fixpoint(self, text):
        query = parse(text)
        formatted = format_query(query)
        reparsed = parse_query(formatted)
        assert format_query(reparsed) == formatted

    def test_prefixes_preserved(self):
        query = parse("SELECT ?a WHERE { ?a ex:p ?b }")
        assert "PREFIX ex: <http://ex/>" in format_query(query)
