"""Tests for SPARQL filter-expression evaluation."""

import pytest

from repro.exceptions import ExpressionError
from repro.rdf import BNode, IRI, Literal, Variable, XSD_BOOLEAN, XSD_INTEGER
from repro.sparql import (
    BinaryOp,
    FunctionCall,
    TermExpr,
    UnaryOp,
    VariableExpr,
    effective_boolean_value,
    evaluate,
    holds,
)


def var(name: str) -> VariableExpr:
    return VariableExpr(Variable(name))


def lit(value, datatype=None) -> TermExpr:
    if isinstance(value, int):
        return TermExpr(Literal(str(value), XSD_INTEGER))
    return TermExpr(Literal(value, datatype) if datatype else Literal(value))


SOLUTION = {
    "n": Literal("5", XSD_INTEGER),
    "s": Literal("breast cancer"),
    "iri": IRI("http://ex/x"),
    "flag": Literal("true", XSD_BOOLEAN),
    "lang": Literal("bonjour", language="fr"),
    "blank": BNode("b"),
}


class TestBasics:
    def test_variable_lookup(self):
        assert evaluate(var("n"), SOLUTION) == Literal("5", XSD_INTEGER)

    def test_unbound_variable_raises(self):
        with pytest.raises(ExpressionError):
            evaluate(var("missing"), SOLUTION)

    def test_constant(self):
        assert evaluate(lit("x"), SOLUTION) == Literal("x")


class TestComparisons:
    def test_numeric_equality(self):
        assert holds(BinaryOp("=", var("n"), lit(5)), SOLUTION)

    def test_numeric_order(self):
        assert holds(BinaryOp("<", var("n"), lit(6)), SOLUTION)
        assert not holds(BinaryOp(">", var("n"), lit(6)), SOLUTION)
        assert holds(BinaryOp(">=", var("n"), lit(5)), SOLUTION)
        assert holds(BinaryOp("<=", var("n"), lit(5)), SOLUTION)

    def test_string_equality(self):
        assert holds(BinaryOp("=", var("s"), lit("breast cancer")), SOLUTION)

    def test_string_inequality(self):
        assert holds(BinaryOp("!=", var("s"), lit("x")), SOLUTION)

    def test_string_order(self):
        assert holds(BinaryOp("<", var("s"), lit("z")), SOLUTION)

    def test_number_vs_string_equality_false(self):
        assert not holds(BinaryOp("=", var("n"), lit("5x")), SOLUTION)

    def test_number_vs_string_order_is_error(self):
        # errors reject the solution
        assert not holds(BinaryOp("<", var("n"), lit("abc")), SOLUTION)


class TestLogical:
    def test_and(self):
        expression = BinaryOp(
            "&&", BinaryOp(">", var("n"), lit(1)), BinaryOp("<", var("n"), lit(9))
        )
        assert holds(expression, SOLUTION)

    def test_or(self):
        expression = BinaryOp(
            "||", BinaryOp(">", var("n"), lit(9)), BinaryOp("<", var("n"), lit(9))
        )
        assert holds(expression, SOLUTION)

    def test_not(self):
        assert holds(UnaryOp("!", BinaryOp(">", var("n"), lit(9))), SOLUTION)

    def test_or_true_dominates_error(self):
        # left errors (unbound) but right is true
        expression = BinaryOp(
            "||", BinaryOp("=", var("missing"), lit(1)), BinaryOp("=", var("n"), lit(5))
        )
        assert holds(expression, SOLUTION)

    def test_and_false_dominates_error(self):
        expression = BinaryOp(
            "&&", BinaryOp("=", var("missing"), lit(1)), BinaryOp("=", var("n"), lit(9))
        )
        assert not holds(expression, SOLUTION)


class TestArithmetic:
    def test_add_multiply(self):
        expression = BinaryOp(
            ">=", BinaryOp("+", BinaryOp("*", var("n"), lit(2)), lit(1)), lit(11)
        )
        assert holds(expression, SOLUTION)

    def test_division(self):
        assert evaluate(BinaryOp("/", var("n"), lit(2)), SOLUTION) == 2.5

    def test_division_by_zero_rejects(self):
        assert not holds(BinaryOp(">", BinaryOp("/", var("n"), lit(0)), lit(0)), SOLUTION)

    def test_unary_minus(self):
        assert evaluate(UnaryOp("-", var("n")), SOLUTION) == -5


class TestFunctions:
    def test_contains(self):
        assert holds(FunctionCall("CONTAINS", (var("s"), lit("cancer"))), SOLUTION)
        assert not holds(FunctionCall("CONTAINS", (var("s"), lit("zebra"))), SOLUTION)

    def test_strstarts_strends(self):
        assert holds(FunctionCall("STRSTARTS", (var("s"), lit("breast"))), SOLUTION)
        assert holds(FunctionCall("STRENDS", (var("s"), lit("cancer"))), SOLUTION)

    def test_regex(self):
        assert holds(FunctionCall("REGEX", (var("s"), lit("^b.*r$"))), SOLUTION)

    def test_regex_case_insensitive_flag(self):
        assert holds(FunctionCall("REGEX", (var("s"), lit("BREAST"), lit("i"))), SOLUTION)

    def test_regex_invalid_pattern_rejects(self):
        assert not holds(FunctionCall("REGEX", (var("s"), lit("("))), SOLUTION)

    def test_case_functions(self):
        assert evaluate(FunctionCall("UCASE", (var("s"),)), SOLUTION).lexical == "BREAST CANCER"
        assert evaluate(FunctionCall("LCASE", (lit("ABC"),)), SOLUTION).lexical == "abc"

    def test_strlen(self):
        assert evaluate(FunctionCall("STRLEN", (var("s"),)), SOLUTION) == 13

    def test_str_of_iri(self):
        assert evaluate(FunctionCall("STR", (var("iri"),)), SOLUTION).lexical == "http://ex/x"

    def test_abs(self):
        assert evaluate(FunctionCall("ABS", (UnaryOp("-", var("n")),)), SOLUTION) == 5

    def test_bound(self):
        assert holds(FunctionCall("BOUND", (var("n"),)), SOLUTION)
        assert not holds(FunctionCall("BOUND", (var("missing"),)), SOLUTION)

    def test_lang(self):
        assert evaluate(FunctionCall("LANG", (var("lang"),)), SOLUTION).lexical == "fr"
        assert evaluate(FunctionCall("LANG", (var("s"),)), SOLUTION).lexical == ""

    def test_datatype(self):
        result = evaluate(FunctionCall("DATATYPE", (var("n"),)), SOLUTION)
        assert result.value.endswith("#integer")

    def test_type_checks(self):
        assert holds(FunctionCall("ISIRI", (var("iri"),)), SOLUTION)
        assert holds(FunctionCall("ISLITERAL", (var("s"),)), SOLUTION)
        assert holds(FunctionCall("ISBLANK", (var("blank"),)), SOLUTION)
        assert holds(FunctionCall("ISNUMERIC", (var("n"),)), SOLUTION)
        assert not holds(FunctionCall("ISNUMERIC", (var("s"),)), SOLUTION)

    def test_wrong_arity_rejects(self):
        assert not holds(FunctionCall("CONTAINS", (var("s"),)), SOLUTION)


class TestEffectiveBooleanValue:
    def test_boolean_literal(self):
        assert effective_boolean_value(Literal("true", XSD_BOOLEAN)) is True
        assert effective_boolean_value(Literal("false", XSD_BOOLEAN)) is False

    def test_numeric_literal(self):
        assert effective_boolean_value(Literal("1", XSD_INTEGER)) is True
        assert effective_boolean_value(Literal("0", XSD_INTEGER)) is False

    def test_string_literal(self):
        assert effective_boolean_value(Literal("x")) is True
        assert effective_boolean_value(Literal("")) is False

    def test_python_values(self):
        assert effective_boolean_value(True) is True
        assert effective_boolean_value(0) is False
        assert effective_boolean_value("x") is True

    def test_iri_raises(self):
        with pytest.raises(ExpressionError):
            effective_boolean_value(IRI("http://ex/x"))
