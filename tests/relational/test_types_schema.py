"""Tests for SQL types, coercion and schema objects."""

import pytest

from repro.exceptions import IntegrityError, SchemaError
from repro.relational import Column, ForeignKey, IndexDef, SQLType, TableSchema, coerce
from repro.relational.types import comparable


class TestSQLType:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("INT", SQLType.INTEGER),
            ("integer", SQLType.INTEGER),
            ("VARCHAR", SQLType.TEXT),
            ("text", SQLType.TEXT),
            ("FLOAT", SQLType.REAL),
            ("double", SQLType.REAL),
            ("BOOL", SQLType.BOOLEAN),
        ],
    )
    def test_aliases(self, name, expected):
        assert SQLType.from_name(name) is expected

    def test_unknown_type(self):
        with pytest.raises(IntegrityError):
            SQLType.from_name("BLOB")


class TestCoerce:
    def test_none_passes_any_type(self):
        for sql_type in SQLType:
            assert coerce(None, sql_type) is None

    def test_integer(self):
        assert coerce(5, SQLType.INTEGER) == 5
        assert coerce("5", SQLType.INTEGER) == 5
        assert coerce(5.0, SQLType.INTEGER) == 5

    def test_integer_rejects_fraction(self):
        with pytest.raises(IntegrityError):
            coerce(5.5, SQLType.INTEGER)

    def test_integer_rejects_bool(self):
        with pytest.raises(IntegrityError):
            coerce(True, SQLType.INTEGER)

    def test_integer_rejects_garbage(self):
        with pytest.raises(IntegrityError):
            coerce("abc", SQLType.INTEGER)

    def test_real(self):
        assert coerce(5, SQLType.REAL) == 5.0
        assert coerce("2.5", SQLType.REAL) == 2.5

    def test_text(self):
        assert coerce("x", SQLType.TEXT) == "x"
        assert coerce(5, SQLType.TEXT) == "5"

    def test_boolean(self):
        assert coerce(True, SQLType.BOOLEAN) is True
        assert coerce(0, SQLType.BOOLEAN) is False
        assert coerce("true", SQLType.BOOLEAN) is True
        with pytest.raises(IntegrityError):
            coerce("maybe", SQLType.BOOLEAN)


class TestComparable:
    def test_numbers_comparable(self):
        assert comparable(1, 2.5)

    def test_none_not_comparable(self):
        assert not comparable(None, 1)
        assert not comparable("a", None)

    def test_mixed_not_comparable(self):
        assert not comparable(1, "a")

    def test_bool_not_numeric(self):
        assert not comparable(True, 1)

    def test_strings_comparable(self):
        assert comparable("a", "b")


class TestTableSchema:
    def make_schema(self) -> TableSchema:
        return TableSchema(
            name="gene",
            columns=[
                Column("id", SQLType.INTEGER, nullable=False),
                Column("symbol", SQLType.TEXT),
                Column("disease_id", SQLType.INTEGER),
            ],
            primary_key=("id",),
            foreign_keys=[ForeignKey("disease_id", "disease", "id")],
        )

    def test_column_lookup(self):
        schema = self.make_schema()
        assert schema.column("symbol").sql_type is SQLType.TEXT
        assert schema.column_index("disease_id") == 2
        assert schema.has_column("id")
        assert not schema.has_column("nope")

    def test_column_lookup_missing_raises(self):
        schema = self.make_schema()
        with pytest.raises(SchemaError):
            schema.column("nope")

    def test_is_primary_key(self):
        schema = self.make_schema()
        assert schema.is_primary_key("id")
        assert not schema.is_primary_key("symbol")

    def test_foreign_key_for(self):
        schema = self.make_schema()
        fk = schema.foreign_key_for("disease_id")
        assert fk is not None and fk.referenced_table == "disease"
        assert schema.foreign_key_for("symbol") is None

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", SQLType.TEXT), Column("a", SQLType.TEXT)])

    def test_pk_column_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", SQLType.TEXT)], primary_key=("b",))

    def test_fk_column_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", SQLType.TEXT)],
                foreign_keys=[ForeignKey("b", "other", "id")],
            )

    def test_invalid_column_name(self):
        with pytest.raises(SchemaError):
            Column("bad name", SQLType.TEXT)

    def test_empty_table_name(self):
        with pytest.raises(SchemaError):
            TableSchema("", [Column("a", SQLType.TEXT)])


class TestIndexDef:
    def test_covers_leading_column_only(self):
        definition = IndexDef("ix", "t", ("a", "b"))
        assert definition.covers("a")
        assert not definition.covers("b")

    def test_empty_columns_cover_nothing(self):
        assert not IndexDef("ix", "t", ()).covers("a")
