"""Tests for table storage: DML, constraints and index maintenance."""

import pytest

from repro.exceptions import IntegrityError, SchemaError
from repro.relational import Column, IndexDef, SQLType, TableSchema, TableStorage


def make_storage() -> TableStorage:
    schema = TableSchema(
        name="gene",
        columns=[
            Column("id", SQLType.INTEGER, nullable=False),
            Column("symbol", SQLType.TEXT),
            Column("disease_id", SQLType.INTEGER),
        ],
        primary_key=("id",),
    )
    return TableStorage(schema)


class TestInsert:
    def test_insert_mapping(self):
        storage = make_storage()
        row_id = storage.insert({"id": 1, "symbol": "BRCA1", "disease_id": 7})
        assert storage.row(row_id) == (1, "BRCA1", 7)

    def test_insert_sequence(self):
        storage = make_storage()
        storage.insert([1, "BRCA1", 7])
        assert len(storage) == 1

    def test_missing_optional_column_becomes_null(self):
        storage = make_storage()
        row_id = storage.insert({"id": 1})
        assert storage.row(row_id) == (1, None, None)

    def test_unknown_column_rejected(self):
        storage = make_storage()
        with pytest.raises(IntegrityError):
            storage.insert({"id": 1, "nope": "x"})

    def test_wrong_arity_rejected(self):
        storage = make_storage()
        with pytest.raises(IntegrityError):
            storage.insert([1, "x"])

    def test_not_null_enforced(self):
        storage = make_storage()
        with pytest.raises(IntegrityError):
            storage.insert({"symbol": "x"})

    def test_type_coercion(self):
        storage = make_storage()
        row_id = storage.insert({"id": "5", "symbol": "x"})
        assert storage.row(row_id)[0] == 5

    def test_pk_uniqueness(self):
        storage = make_storage()
        storage.insert({"id": 1})
        with pytest.raises(IntegrityError):
            storage.insert({"id": 1})

    def test_failed_insert_leaves_no_trace(self):
        storage = make_storage()
        storage.insert({"id": 1})
        with pytest.raises(IntegrityError):
            storage.insert({"id": 1, "symbol": "dup"})
        assert len(storage) == 1
        pk_index = storage.index("pk_gene")
        assert len(pk_index) == 1


class TestDelete:
    def test_delete(self):
        storage = make_storage()
        row_id = storage.insert({"id": 1, "symbol": "x"})
        assert storage.delete(row_id) is True
        assert len(storage) == 0
        with pytest.raises(IntegrityError):
            storage.row(row_id)

    def test_delete_cleans_indexes(self):
        storage = make_storage()
        row_id = storage.insert({"id": 1, "symbol": "x"})
        storage.delete(row_id)
        assert storage.index("pk_gene").lookup((1,)) == []

    def test_delete_twice_returns_false(self):
        storage = make_storage()
        row_id = storage.insert({"id": 1})
        storage.delete(row_id)
        assert storage.delete(row_id) is False

    def test_delete_bogus_id(self):
        storage = make_storage()
        assert storage.delete(99) is False

    def test_reinsert_after_delete(self):
        storage = make_storage()
        row_id = storage.insert({"id": 1})
        storage.delete(row_id)
        storage.insert({"id": 1})  # PK free again


class TestIndexManagement:
    def test_pk_index_created_automatically(self):
        storage = make_storage()
        assert "pk_gene" in storage.indexes
        assert storage.indexes["pk_gene"].unique

    def test_create_index_backfills(self):
        storage = make_storage()
        storage.insert({"id": 1, "symbol": "a"})
        storage.insert({"id": 2, "symbol": "b"})
        storage.create_index(IndexDef("ix_symbol", "gene", ("symbol",)))
        assert storage.index("ix_symbol").lookup(("b",)) == [1]

    def test_duplicate_index_name_rejected(self):
        storage = make_storage()
        with pytest.raises(SchemaError):
            storage.create_index(IndexDef("pk_gene", "gene", ("symbol",)))

    def test_index_unknown_column_rejected(self):
        storage = make_storage()
        with pytest.raises(SchemaError):
            storage.create_index(IndexDef("ix", "gene", ("nope",)))

    def test_indexes_on(self):
        storage = make_storage()
        storage.create_index(IndexDef("ix_symbol", "gene", ("symbol",)))
        assert [d.name for d in storage.indexes_on("symbol")] == ["ix_symbol"]
        assert storage.has_index_on("id")  # via the PK index
        assert not storage.has_index_on("disease_id")

    def test_drop_index(self):
        storage = make_storage()
        storage.create_index(IndexDef("ix_symbol", "gene", ("symbol",)))
        storage.drop_index("ix_symbol")
        assert not storage.has_index_on("symbol")
        with pytest.raises(SchemaError):
            storage.drop_index("ix_symbol")

    def test_inserts_maintain_secondary_index(self):
        storage = make_storage()
        storage.create_index(IndexDef("ix_symbol", "gene", ("symbol",)))
        storage.insert({"id": 1, "symbol": "a"})
        assert storage.index("ix_symbol").lookup(("a",)) == [0]


class TestScan:
    def test_scan_skips_deleted(self):
        storage = make_storage()
        keep = storage.insert({"id": 1})
        gone = storage.insert({"id": 2})
        storage.delete(gone)
        assert [row_id for row_id, __ in storage.scan()] == [keep]

    def test_column_values(self):
        storage = make_storage()
        storage.insert({"id": 1, "symbol": "a"})
        storage.insert({"id": 2})
        assert list(storage.column_values("symbol")) == ["a", None]
