"""Tests for statistics collection and the 15 %-rule index advisor."""

import pytest

from repro.relational import (
    Column,
    IndexAdvisor,
    SQLType,
    TableSchema,
    TableStorage,
    collect_column_statistics,
    collect_table_statistics,
)


def storage_with(values, sql_type=SQLType.TEXT) -> TableStorage:
    schema = TableSchema(
        "t",
        [Column("id", SQLType.INTEGER, nullable=False), Column("v", sql_type)],
        primary_key=("id",),
    )
    storage = TableStorage(schema)
    for index, value in enumerate(values):
        storage.insert({"id": index, "v": value})
    return storage


class TestColumnStatistics:
    def test_counts(self):
        storage = storage_with(["a", "a", "b", None])
        statistics = collect_column_statistics(storage, "v")
        assert statistics.row_count == 4
        assert statistics.null_count == 1
        assert statistics.distinct_count == 2
        assert statistics.non_null_count == 3

    def test_mode(self):
        storage = storage_with(["a", "a", "b"])
        statistics = collect_column_statistics(storage, "v")
        assert statistics.most_common_value == "a"
        assert statistics.most_common_fraction == pytest.approx(2 / 3)

    def test_min_max_numeric(self):
        storage = storage_with([5, 1, 9], SQLType.INTEGER)
        statistics = collect_column_statistics(storage, "v")
        assert statistics.min_value == 1
        assert statistics.max_value == 9

    def test_empty_column(self):
        storage = storage_with([])
        statistics = collect_column_statistics(storage, "v")
        assert statistics.distinct_count == 0
        assert statistics.equality_selectivity() == 0.0

    def test_equality_selectivity_uniform(self):
        storage = storage_with(["a", "b", "c", "d"])
        statistics = collect_column_statistics(storage, "v")
        assert statistics.equality_selectivity() == pytest.approx(0.25)

    def test_equality_selectivity_mode_value(self):
        storage = storage_with(["a"] * 8 + ["b", "c"])
        statistics = collect_column_statistics(storage, "v")
        assert statistics.equality_selectivity("a") == pytest.approx(0.8)
        assert statistics.equality_selectivity("b") == pytest.approx(1 / 3)

    def test_range_selectivity(self):
        storage = storage_with([1, 2, 3], SQLType.INTEGER)
        statistics = collect_column_statistics(storage, "v")
        assert statistics.range_selectivity() == pytest.approx(1 / 3)


class TestTableStatistics:
    def test_all_columns_collected(self):
        storage = storage_with(["a", "b"])
        statistics = collect_table_statistics(storage)
        assert set(statistics.columns) == {"id", "v"}
        assert statistics.row_count == 2

    def test_unknown_column_default(self):
        storage = storage_with(["a"])
        statistics = collect_table_statistics(storage)
        assert statistics.column("nope").distinct_count == 0


class TestIndexAdvisor:
    def test_uniform_column_advised(self):
        storage = storage_with([f"v{i}" for i in range(100)])
        advice = IndexAdvisor().advise(storage, "v")
        assert advice.create is True

    def test_skewed_column_rejected(self):
        # one value covers 40 % of records: the paper's species attribute
        values = ["Homo sapiens"] * 40 + [f"species {i}" for i in range(60)]
        advice = IndexAdvisor().advise(storage_with(values), "v")
        assert advice.create is False
        assert "15%" in advice.reason or "15 %" in advice.reason

    def test_boundary_respects_threshold(self):
        values = ["a"] * 15 + [f"v{i}" for i in range(85)]
        advice = IndexAdvisor(max_value_fraction=0.15).advise(storage_with(values), "v")
        assert advice.create is True  # exactly 15 % is allowed
        values = ["a"] * 16 + [f"v{i}" for i in range(84)]
        advice = IndexAdvisor(max_value_fraction=0.15).advise(storage_with(values), "v")
        assert advice.create is False

    def test_single_value_column_rejected(self):
        advice = IndexAdvisor().advise(storage_with(["x"] * 10), "v")
        assert advice.create is False
        assert "single distinct" in advice.reason

    def test_all_null_column_rejected(self):
        advice = IndexAdvisor().advise(storage_with([None, None]), "v")
        assert advice.create is False

    def test_custom_threshold(self):
        values = ["a"] * 30 + [f"v{i}" for i in range(70)]
        assert IndexAdvisor(max_value_fraction=0.5).advise(storage_with(values), "v").create
        assert not IndexAdvisor(max_value_fraction=0.15).advise(storage_with(values), "v").create

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            IndexAdvisor(max_value_fraction=0.0)
        with pytest.raises(ValueError):
            IndexAdvisor(max_value_fraction=1.5)
