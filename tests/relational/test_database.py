"""Tests for the Database facade: DDL, DML, querying, EXPLAIN."""

import pytest

from repro.exceptions import CatalogError, IntegrityError, SchemaError
from repro.relational import Database, OperationMeter


@pytest.fixture
def db() -> Database:
    database = Database("diseasome")
    database.execute(
        "CREATE TABLE disease (id INTEGER PRIMARY KEY, name TEXT NOT NULL, class TEXT)"
    )
    database.execute(
        "CREATE TABLE gene (id INTEGER PRIMARY KEY, symbol TEXT, disease_id INTEGER, "
        "FOREIGN KEY (disease_id) REFERENCES disease (id))"
    )
    database.execute(
        "INSERT INTO disease VALUES (1, 'breast cancer', 'cancer'), "
        "(2, 'diabetes', 'metabolic'), (3, 'lung cancer', 'cancer')"
    )
    database.execute(
        "INSERT INTO gene VALUES (10, 'BRCA1', 1), (11, 'TP53', 1), "
        "(12, 'KRAS', 3), (13, 'INS', 2)"
    )
    return database


class TestDDL:
    def test_tables_registered(self, db):
        assert db.table_names == ["disease", "gene"]
        assert db.has_table("gene")
        assert not db.has_table("nope")

    def test_unknown_table_raises(self, db):
        with pytest.raises(CatalogError):
            db.table("nope")

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(SchemaError):
            db.execute("CREATE TABLE gene (id INTEGER PRIMARY KEY)")

    def test_drop_table(self, db):
        db.drop_table("gene")
        assert not db.has_table("gene")
        with pytest.raises(SchemaError):
            db.drop_table("gene")

    def test_create_index_via_sql(self, db):
        db.execute("CREATE INDEX ix_sym ON gene (symbol)")
        assert db.has_index_on("gene", "symbol")

    def test_pk_is_indexed(self, db):
        assert db.has_index_on("gene", "id")
        assert not db.has_index_on("gene", "disease_id")


class TestDML:
    def test_insert_api(self, db):
        db.insert("disease", {"id": 4, "name": "asthma", "class": "respiratory"})
        assert db.query("SELECT COUNT(*) FROM disease").fetchall() == [(4,)]

    def test_insert_many(self, db):
        count = db.insert_many(
            "disease",
            [{"id": 4, "name": "a"}, {"id": 5, "name": "b"}],
        )
        assert count == 2

    def test_constraint_violation_propagates(self, db):
        with pytest.raises(IntegrityError):
            db.execute("INSERT INTO disease VALUES (1, 'dup', 'x')")

    def test_insert_invalidates_statistics(self, db):
        before = db.statistics("disease").row_count
        db.insert("disease", {"id": 9, "name": "new"})
        assert db.statistics("disease").row_count == before + 1


class TestQueries:
    def test_simple_select(self, db):
        rows = db.query("SELECT name FROM disease WHERE id = 2").fetchall()
        assert rows == [("diabetes",)]

    def test_join(self, db):
        rows = db.query(
            "SELECT g.symbol, d.name FROM gene g JOIN disease d ON g.disease_id = d.id "
            "WHERE d.class = 'cancer' ORDER BY g.symbol"
        ).fetchall()
        assert rows == [("BRCA1", "breast cancer"), ("KRAS", "lung cancer"), ("TP53", "breast cancer")]

    def test_join_with_selection_on_inner(self, db):
        rows = db.query(
            "SELECT g.symbol FROM gene g JOIN disease d ON g.disease_id = d.id "
            "WHERE d.name = 'diabetes'"
        ).fetchall()
        assert rows == [("INS",)]

    def test_like(self, db):
        rows = db.query("SELECT name FROM disease WHERE name LIKE '%cancer'").fetchall()
        assert len(rows) == 2

    def test_in(self, db):
        rows = db.query("SELECT symbol FROM gene WHERE id IN (10, 12)").fetchall()
        assert {row[0] for row in rows} == {"BRCA1", "KRAS"}

    def test_count(self, db):
        assert db.query("SELECT COUNT(*) FROM gene").fetchall() == [(4,)]

    def test_distinct(self, db):
        rows = db.query("SELECT DISTINCT class FROM disease").fetchall()
        assert len(rows) == 2

    def test_order_desc_limit(self, db):
        rows = db.query("SELECT symbol FROM gene ORDER BY symbol DESC LIMIT 2").fetchall()
        assert rows == [("TP53",), ("KRAS",)]

    def test_as_dicts(self, db):
        dicts = list(db.query("SELECT id, name FROM disease WHERE id = 1").as_dicts())
        assert dicts == [{"id": 1, "name": "breast cancer"}]

    def test_streaming(self, db):
        result = db.query("SELECT * FROM gene")
        first = next(iter(result))
        assert len(first) == 3

    def test_meter_collects_counts(self, db):
        meter = OperationMeter()
        db.query("SELECT * FROM disease WHERE class = 'cancer'", meter).fetchall()
        assert meter.get("rows_scanned") == 3
        assert meter.get("filter_evals") == 3  # equality is cheap-path

    def test_meter_counts_like_as_string_work(self, db):
        meter = OperationMeter()
        db.query("SELECT * FROM disease WHERE name LIKE '%cancer%'", meter).fetchall()
        assert meter.get("string_filter_evals") == 3


class TestExplain:
    def test_seq_scan_without_index(self, db):
        plan = db.explain("SELECT * FROM disease WHERE class = 'cancer'")
        assert "SeqScan" in plan

    def test_index_scan_with_index(self, db):
        db.create_index("disease", ["class"])
        plan = db.explain("SELECT * FROM disease WHERE class = 'cancer'")
        assert "IndexScan" in plan

    def test_index_join_when_inner_indexed(self, db):
        db.create_index("gene", ["disease_id"])
        plan = db.explain(
            "SELECT * FROM disease d JOIN gene g ON d.id = g.disease_id "
            "WHERE d.class = 'cancer'"
        )
        assert "IndexNestedLoopJoin" in plan

    def test_hash_join_without_index(self, db):
        plan = db.explain(
            "SELECT * FROM disease d JOIN gene g ON d.id = g.disease_id"
        )
        # joining towards gene.disease_id (no index): hash join somewhere
        assert "HashJoin" in plan or "IndexNestedLoopJoin" in plan


class TestAdvisor:
    def test_advise_and_create(self, db):
        advices = db.create_advised_indexes("gene", ["symbol"])
        assert advices[0].create is True
        assert db.has_index_on("gene", "symbol")

    def test_skewed_not_created(self, db):
        advice = db.advise_index("disease", "class")
        assert advice.create is False
        assert not db.has_index_on("disease", "class")
