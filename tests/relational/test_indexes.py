"""Tests for hash and B-tree indexes."""

import pytest

from repro.relational.indexes import BTreeIndex, HashIndex, key_of, make_index


class TestHashIndex:
    def test_insert_lookup(self):
        index = HashIndex("ix", ("a",))
        index.insert(("x",), 0)
        index.insert(("x",), 1)
        index.insert(("y",), 2)
        assert sorted(index.lookup(("x",))) == [0, 1]
        assert index.lookup(("z",)) == []

    def test_remove(self):
        index = HashIndex("ix", ("a",))
        index.insert(("x",), 0)
        index.remove(("x",), 0)
        assert index.lookup(("x",)) == []
        assert not index.contains_key(("x",))

    def test_remove_missing_is_noop(self):
        index = HashIndex("ix", ("a",))
        index.remove(("x",), 0)

    def test_len_and_distinct(self):
        index = HashIndex("ix", ("a",))
        index.insert(("x",), 0)
        index.insert(("x",), 1)
        index.insert(("y",), 2)
        assert len(index) == 3
        assert index.distinct_keys() == 2

    def test_range_scan_unsupported(self):
        index = HashIndex("ix", ("a",))
        with pytest.raises(NotImplementedError):
            list(index.scan_range(("a",), ("b",)))


class TestBTreeIndex:
    def build(self) -> BTreeIndex:
        index = BTreeIndex("ix", ("n",))
        for row_id, value in enumerate([5, 3, 9, 3, 7, 1]):
            index.insert((value,), row_id)
        return index

    def test_lookup(self):
        index = self.build()
        assert sorted(index.lookup((3,))) == [1, 3]
        assert index.lookup((4,)) == []

    def test_scan_all_in_key_order(self):
        index = self.build()
        ordered = [row_id for row_id in index.scan_all()]
        assert ordered == [5, 1, 3, 0, 4, 2]

    def test_range_inclusive(self):
        index = self.build()
        assert sorted(index.scan_range((3,), (7,))) == [0, 1, 3, 4]

    def test_range_exclusive_bounds(self):
        index = self.build()
        assert sorted(index.scan_range((3,), (7,), include_low=False, include_high=False)) == [0]

    def test_open_ranges(self):
        index = self.build()
        assert sorted(index.scan_range(None, (3,))) == [1, 3, 5]
        assert sorted(index.scan_range((7,), None)) == [2, 4]
        assert len(list(index.scan_range(None, None))) == 6

    def test_remove(self):
        index = self.build()
        index.remove((3,), 1)
        assert index.lookup((3,)) == [3]
        index.remove((3,), 3)
        assert not index.contains_key((3,))

    def test_mixed_types_do_not_crash(self):
        index = BTreeIndex("ix", ("v",))
        index.insert((1,), 0)
        index.insert(("a",), 1)
        index.insert((None,), 2)
        index.insert((2.5,), 3)
        # None < numbers < strings
        assert list(index.scan_all()) == [2, 0, 3, 1]

    def test_strings_ordered(self):
        index = BTreeIndex("ix", ("v",))
        for row_id, value in enumerate(["pear", "apple", "fig"]):
            index.insert((value,), row_id)
        assert list(index.scan_all()) == [1, 2, 0]


class TestFactory:
    def test_make_index(self):
        assert isinstance(make_index("hash", "ix", ("a",)), HashIndex)
        assert isinstance(make_index("btree", "ix", ("a",)), BTreeIndex)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_index("trie", "ix", ("a",))

    def test_key_of(self):
        assert key_of(("a", "b", "c"), (2, 0)) == ("c", "a")
