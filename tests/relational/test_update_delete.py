"""Tests for UPDATE and DELETE statements."""

import pytest

from repro.exceptions import IntegrityError
from repro.relational import Database


@pytest.fixture
def db() -> Database:
    database = Database("dml")
    database.execute(
        "CREATE TABLE gene (id INTEGER PRIMARY KEY, symbol TEXT, score REAL)"
    )
    database.execute(
        "INSERT INTO gene VALUES (1, 'BRCA1', 0.5), (2, 'TP53', 0.9), (3, 'KRAS', 0.1)"
    )
    database.execute("CREATE INDEX ix_symbol ON gene (symbol)")
    return database


class TestDelete:
    def test_delete_with_where(self, db):
        assert db.execute("DELETE FROM gene WHERE symbol = 'TP53'") == 1
        assert db.query("SELECT COUNT(*) FROM gene").fetchall() == [(3 - 1,)]

    def test_delete_all(self, db):
        assert db.execute("DELETE FROM gene") == 3
        assert db.query("SELECT COUNT(*) FROM gene").fetchall() == [(0,)]

    def test_delete_none_matching(self, db):
        assert db.execute("DELETE FROM gene WHERE symbol = 'NOPE'") == 0

    def test_delete_maintains_indexes(self, db):
        db.execute("DELETE FROM gene WHERE symbol = 'BRCA1'")
        rows = db.query("SELECT id FROM gene WHERE symbol = 'BRCA1'").fetchall()
        assert rows == []
        # re-insert is possible (PK freed)
        db.execute("INSERT INTO gene VALUES (1, 'NEW', 0.0)")

    def test_delete_invalidates_statistics(self, db):
        before = db.statistics("gene").row_count
        db.execute("DELETE FROM gene WHERE id = 1")
        assert db.statistics("gene").row_count == before - 1

    def test_delete_with_range_predicate(self, db):
        assert db.execute("DELETE FROM gene WHERE score >= 0.5") == 2


class TestUpdate:
    def test_update_with_where(self, db):
        count = db.execute("UPDATE gene SET score = 1.0 WHERE symbol = 'BRCA1'")
        assert count == 1
        assert db.query("SELECT score FROM gene WHERE id = 1").fetchall() == [(1.0,)]

    def test_update_all_rows(self, db):
        assert db.execute("UPDATE gene SET score = 0.0") == 3
        rows = db.query("SELECT DISTINCT score FROM gene").fetchall()
        assert rows == [(0.0,)]

    def test_update_multiple_columns(self, db):
        db.execute("UPDATE gene SET symbol = 'RENAMED', score = 2.5 WHERE id = 2")
        assert db.query("SELECT symbol, score FROM gene WHERE id = 2").fetchall() == [
            ("RENAMED", 2.5)
        ]

    def test_update_maintains_indexes(self, db):
        db.execute("UPDATE gene SET symbol = 'XYZ' WHERE id = 1")
        assert db.query("SELECT id FROM gene WHERE symbol = 'XYZ'").fetchall() == [(1,)]
        assert db.query("SELECT id FROM gene WHERE symbol = 'BRCA1'").fetchall() == []

    def test_update_pk_collision_rejected(self, db):
        with pytest.raises(IntegrityError):
            db.execute("UPDATE gene SET id = 2 WHERE id = 1")

    def test_update_type_coercion(self, db):
        db.execute("UPDATE gene SET score = 3 WHERE id = 1")
        rows = db.query("SELECT score FROM gene WHERE id = 1").fetchall()
        assert rows == [(3.0,)]

    def test_update_to_null(self, db):
        db.execute("UPDATE gene SET symbol = NULL WHERE id = 3")
        assert db.query("SELECT COUNT(*) FROM gene WHERE symbol IS NULL").fetchall() == [(1,)]

    def test_update_none_matching(self, db):
        assert db.execute("UPDATE gene SET score = 9.9 WHERE id = 99") == 0


class TestRendering:
    def test_update_sql_rendering(self):
        from repro.relational import parse_statement

        statement = parse_statement("UPDATE t SET a = 1, b = 'x' WHERE c IS NULL")
        assert statement.sql() == "UPDATE t SET a = 1, b = 'x' WHERE c IS NULL"

    def test_delete_sql_rendering(self):
        from repro.relational import parse_statement

        statement = parse_statement("DELETE FROM t WHERE a IN (1, 2)")
        assert statement.sql() == "DELETE FROM t WHERE a IN (1, 2)"
