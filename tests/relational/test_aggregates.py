"""Tests for aggregates and GROUP BY in the relational engine."""

import pytest

from repro.exceptions import PlanningError
from repro.relational import Database


@pytest.fixture
def db() -> Database:
    database = Database("sales")
    database.execute(
        "CREATE TABLE sale (id INTEGER PRIMARY KEY, region TEXT, amount REAL, qty INTEGER)"
    )
    database.execute(
        "INSERT INTO sale VALUES "
        "(1, 'north', 10.0, 1), (2, 'north', 20.0, 2), (3, 'south', 5.0, NULL), "
        "(4, 'south', 15.0, 3), (5, 'west', 7.5, 1)"
    )
    return database


class TestPlainAggregates:
    def test_count_star(self, db):
        assert db.query("SELECT COUNT(*) FROM sale").fetchall() == [(5,)]

    def test_count_column_ignores_nulls(self, db):
        assert db.query("SELECT COUNT(qty) FROM sale").fetchall() == [(4,)]

    def test_sum(self, db):
        assert db.query("SELECT SUM(amount) FROM sale").fetchall() == [(57.5,)]

    def test_avg(self, db):
        assert db.query("SELECT AVG(amount) FROM sale").fetchall() == [(11.5,)]

    def test_min_max(self, db):
        assert db.query("SELECT MIN(amount), MAX(amount) FROM sale").fetchall() == [
            (5.0, 20.0)
        ]

    def test_aggregates_over_empty_input(self, db):
        rows = db.query(
            "SELECT COUNT(*), SUM(amount), MIN(amount) FROM sale WHERE region = 'nope'"
        ).fetchall()
        assert rows == [(0, None, None)]

    def test_alias(self, db):
        result = db.query("SELECT SUM(amount) AS total FROM sale")
        assert result.header == ("total",)

    def test_count_star_with_where(self, db):
        rows = db.query("SELECT COUNT(*) FROM sale WHERE region = 'north'").fetchall()
        assert rows == [(2,)]


class TestGroupBy:
    def test_group_count(self, db):
        rows = db.query(
            "SELECT region, COUNT(*) AS n FROM sale GROUP BY region ORDER BY region"
        ).fetchall()
        assert rows == [("north", 2), ("south", 2), ("west", 1)]

    def test_group_sum_avg(self, db):
        rows = db.query(
            "SELECT region, SUM(amount) AS total, AVG(amount) AS mean "
            "FROM sale GROUP BY region ORDER BY region"
        ).fetchall()
        assert rows == [("north", 30.0, 15.0), ("south", 20.0, 10.0), ("west", 7.5, 7.5)]

    def test_group_min_max(self, db):
        rows = db.query(
            "SELECT region, MIN(amount), MAX(amount) FROM sale GROUP BY region "
            "ORDER BY region"
        ).fetchall()
        assert rows[0] == ("north", 10.0, 20.0)

    def test_order_by_aggregate_output(self, db):
        rows = db.query(
            "SELECT region, SUM(amount) AS total FROM sale GROUP BY region "
            "ORDER BY total DESC"
        ).fetchall()
        totals = [row[1] for row in rows]
        assert totals == sorted(totals, reverse=True)

    def test_group_with_where(self, db):
        rows = db.query(
            "SELECT region, COUNT(*) FROM sale WHERE amount > 7 GROUP BY region "
            "ORDER BY region"
        ).fetchall()
        assert rows == [("north", 2), ("south", 1), ("west", 1)]

    def test_group_with_join(self, db):
        db.execute("CREATE TABLE region (name TEXT PRIMARY KEY, country TEXT)")
        db.execute(
            "INSERT INTO region VALUES ('north', 'DE'), ('south', 'DE'), ('west', 'FR')"
        )
        rows = db.query(
            "SELECT r.country, SUM(s.amount) AS total FROM sale s "
            "JOIN region r ON s.region = r.name GROUP BY r.country ORDER BY r.country"
        ).fetchall()
        assert rows == [("DE", 50.0), ("FR", 7.5)]

    def test_limit_on_groups(self, db):
        rows = db.query(
            "SELECT region, COUNT(*) FROM sale GROUP BY region ORDER BY region LIMIT 2"
        ).fetchall()
        assert len(rows) == 2

    def test_group_key_with_null(self, db):
        db.execute("INSERT INTO sale VALUES (6, NULL, 1.0, 1)")
        rows = db.query(
            "SELECT region, COUNT(*) FROM sale GROUP BY region"
        ).fetchall()
        assert (None, 1) in rows


class TestHaving:
    def test_having_on_count_alias(self, db):
        rows = db.query(
            "SELECT region, COUNT(*) AS n FROM sale GROUP BY region "
            "HAVING n > 1 ORDER BY region"
        ).fetchall()
        assert rows == [("north", 2), ("south", 2)]

    def test_having_on_sum_alias(self, db):
        rows = db.query(
            "SELECT region, SUM(amount) AS total FROM sale GROUP BY region "
            "HAVING total >= 20 ORDER BY region"
        ).fetchall()
        assert rows == [("north", 30.0), ("south", 20.0)]

    def test_having_on_group_column(self, db):
        rows = db.query(
            "SELECT region, COUNT(*) AS n FROM sale GROUP BY region "
            "HAVING region LIKE '%th'"
        ).fetchall()
        assert len(rows) == 2

    def test_having_combined(self, db):
        rows = db.query(
            "SELECT region, COUNT(*) AS n, SUM(amount) AS total FROM sale "
            "GROUP BY region HAVING n > 1 AND total > 25"
        ).fetchall()
        assert rows == [("north", 2, 30.0)]

    def test_having_roundtrip(self, db):
        from repro.relational import parse_select

        text = (
            "SELECT region, COUNT(*) AS n FROM sale GROUP BY region HAVING n > 1"
        )
        statement = parse_select(text)
        assert "HAVING n > 1" in statement.sql()
        assert parse_select(statement.sql()).sql() == statement.sql()


class TestValidation:
    def test_bare_column_must_be_grouped(self, db):
        with pytest.raises(PlanningError):
            db.query("SELECT region, amount, COUNT(*) FROM sale GROUP BY region")

    def test_group_by_requires_select_list(self, db):
        with pytest.raises(PlanningError):
            db.query("SELECT * FROM sale GROUP BY region")

    def test_sum_star_rejected(self, db):
        from repro.exceptions import SQLParseError

        with pytest.raises(SQLParseError):
            db.query("SELECT SUM(*) FROM sale")


class TestRendering:
    def test_group_by_roundtrip(self, db):
        from repro.relational import parse_select

        text = "SELECT region, SUM(amount) AS total FROM sale GROUP BY region ORDER BY total"
        statement = parse_select(text)
        assert parse_select(statement.sql()).sql() == statement.sql()
        assert "GROUP BY region" in statement.sql()
