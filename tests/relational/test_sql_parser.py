"""Tests for the SQL lexer and parser."""

import pytest

from repro.exceptions import SQLParseError
from repro.relational import SQLType, parse_select, parse_statement
from repro.relational.sql.ast import (
    AndExpr,
    ColumnRef,
    Comparison,
    Constant,
    CreateIndexStatement,
    CreateTableStatement,
    InPredicate,
    InsertStatement,
    IsNullPredicate,
    LikePredicate,
    NotExpr,
    OrExpr,
    SelectStatement,
    conjunction,
    conjuncts,
)


class TestSelect:
    def test_star(self):
        statement = parse_select("SELECT * FROM gene")
        assert statement.items is None
        assert statement.table.name == "gene"

    def test_columns_and_aliases(self):
        statement = parse_select("SELECT g.symbol AS s, name FROM gene g")
        assert statement.items[0].expr == ColumnRef("g", "symbol")
        assert statement.items[0].alias == "s"
        assert statement.items[1].expr == ColumnRef(None, "name")
        assert statement.table.alias == "g"

    def test_implicit_alias(self):
        statement = parse_select("SELECT symbol s FROM gene")
        assert statement.items[0].alias == "s"

    def test_count_star(self):
        statement = parse_select("SELECT COUNT(*) FROM gene")
        assert statement.count_star

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT symbol FROM gene").distinct

    def test_join(self):
        statement = parse_select(
            "SELECT * FROM gene g JOIN disease d ON g.disease_id = d.id"
        )
        assert len(statement.joins) == 1
        join = statement.joins[0]
        assert join.table.binding == "d"
        assert join.left == ColumnRef("g", "disease_id")
        assert join.right == ColumnRef("d", "id")

    def test_inner_join_keyword(self):
        statement = parse_select(
            "SELECT * FROM a INNER JOIN b ON a.x = b.y"
        )
        assert len(statement.joins) == 1

    def test_multiple_joins(self):
        statement = parse_select(
            "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y"
        )
        assert len(statement.joins) == 2

    def test_order_limit_offset(self):
        statement = parse_select(
            "SELECT * FROM gene ORDER BY symbol DESC, id LIMIT 10 OFFSET 5"
        )
        assert statement.order_by[0].ascending is False
        assert statement.order_by[1].ascending is True
        assert statement.limit == 10
        assert statement.offset == 5

    def test_semicolon_tolerated(self):
        parse_select("SELECT * FROM gene;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLParseError):
            parse_select("SELECT * FROM gene nonsense extra")


class TestWhere:
    def where(self, clause: str):
        return parse_select(f"SELECT * FROM t WHERE {clause}").where

    def test_comparison(self):
        predicate = self.where("a = 5")
        assert predicate == Comparison("=", ColumnRef(None, "a"), Constant(5))

    def test_not_equal_variants(self):
        assert self.where("a <> 5").operator == "<>"
        assert self.where("a != 5").operator == "<>"

    def test_string_literal_with_quote(self):
        predicate = self.where("name = 'O''Brien'")
        assert predicate.right == Constant("O'Brien")

    def test_like(self):
        predicate = self.where("name LIKE '%cancer%'")
        assert isinstance(predicate, LikePredicate)
        assert predicate.pattern == "%cancer%"

    def test_not_like(self):
        predicate = self.where("name NOT LIKE 'x%'")
        assert predicate.negated

    def test_in(self):
        predicate = self.where("a IN (1, 2, 3)")
        assert isinstance(predicate, InPredicate)
        assert predicate.values == (1, 2, 3)

    def test_not_in(self):
        assert self.where("a NOT IN ('x')").negated

    def test_is_null(self):
        predicate = self.where("a IS NULL")
        assert isinstance(predicate, IsNullPredicate) and not predicate.negated

    def test_is_not_null(self):
        assert self.where("a IS NOT NULL").negated

    def test_and_or_precedence(self):
        predicate = self.where("a = 1 AND b = 2 OR c = 3")
        assert isinstance(predicate, OrExpr)
        assert isinstance(predicate.operands[0], AndExpr)

    def test_parentheses(self):
        predicate = self.where("a = 1 AND (b = 2 OR c = 3)")
        assert isinstance(predicate, AndExpr)
        assert isinstance(predicate.operands[1], OrExpr)

    def test_not(self):
        predicate = self.where("NOT a = 1")
        assert isinstance(predicate, NotExpr)

    def test_column_vs_column(self):
        predicate = self.where("t.a = t.b")
        assert predicate.left == ColumnRef("t", "a")
        assert predicate.right == ColumnRef("t", "b")

    def test_boolean_and_null_constants(self):
        assert self.where("a = TRUE").right == Constant(True)
        assert self.where("a IN (NULL)").values == (None,)

    def test_real_constant(self):
        assert self.where("a > 2.5").right == Constant(2.5)


class TestOtherStatements:
    def test_insert(self):
        statement = parse_statement(
            "INSERT INTO gene (id, symbol) VALUES (1, 'BRCA1'), (2, 'TP53')"
        )
        assert isinstance(statement, InsertStatement)
        assert statement.columns == ["id", "symbol"]
        assert statement.rows == [[1, "BRCA1"], [2, "TP53"]]

    def test_insert_without_columns(self):
        statement = parse_statement("INSERT INTO gene VALUES (1, 'x')")
        assert statement.columns is None

    def test_create_table(self):
        statement = parse_statement(
            "CREATE TABLE gene (id INTEGER PRIMARY KEY, symbol TEXT NOT NULL, "
            "disease_id INTEGER, FOREIGN KEY (disease_id) REFERENCES disease (id))"
        )
        assert isinstance(statement, CreateTableStatement)
        assert statement.columns[0].primary_key
        assert statement.columns[1].nullable is False
        assert statement.columns[2].sql_type is SQLType.INTEGER
        assert statement.foreign_keys == [("disease_id", "disease", "id")]

    def test_create_table_composite_pk(self):
        statement = parse_statement(
            "CREATE TABLE t (a INTEGER, b INTEGER, PRIMARY KEY (a, b))"
        )
        assert statement.primary_key == ("a", "b")

    def test_create_index(self):
        statement = parse_statement("CREATE INDEX ix ON gene (symbol)")
        assert isinstance(statement, CreateIndexStatement)
        assert statement.columns == ("symbol",)
        assert not statement.unique

    def test_create_unique_index(self):
        statement = parse_statement("CREATE UNIQUE INDEX ix ON gene (symbol, id)")
        assert statement.unique and statement.columns == ("symbol", "id")

    def test_unsupported_statement(self):
        with pytest.raises(SQLParseError):
            parse_statement("DROP TABLE gene")


class TestSQLRendering:
    @pytest.mark.parametrize(
        "text",
        [
            "SELECT * FROM gene",
            "SELECT g.symbol AS s FROM gene AS g WHERE g.symbol LIKE '%a%' LIMIT 3",
            "SELECT DISTINCT a FROM t WHERE a = 1 AND b <> 'x' OR c IS NOT NULL",
            "SELECT * FROM a JOIN b ON a.x = b.y WHERE a.n IN (1, 2) ORDER BY a.x DESC",
            "SELECT COUNT(*) FROM t WHERE NOT (a = 1)",
        ],
    )
    def test_sql_roundtrip_fixpoint(self, text):
        statement = parse_select(text)
        rendered = statement.sql()
        reparsed = parse_select(rendered)
        assert reparsed.sql() == rendered


class TestConjuncts:
    def test_flatten(self):
        statement = parse_select("SELECT * FROM t WHERE a = 1 AND b = 2 AND c = 3")
        parts = conjuncts(statement.where)
        assert len(parts) == 3

    def test_none(self):
        assert conjuncts(None) == []

    def test_or_not_flattened(self):
        statement = parse_select("SELECT * FROM t WHERE a = 1 OR b = 2")
        assert len(conjuncts(statement.where)) == 1

    def test_conjunction_inverse(self):
        statement = parse_select("SELECT * FROM t WHERE a = 1 AND b = 2")
        rebuilt = conjunction(conjuncts(statement.where))
        assert conjuncts(rebuilt) == conjuncts(statement.where)

    def test_conjunction_empty(self):
        assert conjunction([]) is None
