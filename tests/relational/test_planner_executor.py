"""Tests for the relational planner and executor: correctness + access paths."""

import pytest

from repro.exceptions import PlanningError
from repro.relational import Database, OperationMeter, PlannerOptions
from repro.relational.executor import like_to_regex


@pytest.fixture
def db() -> Database:
    database = Database("bench")
    database.execute(
        "CREATE TABLE item (id INTEGER PRIMARY KEY, grp INTEGER, name TEXT, score REAL)"
    )
    rows = []
    for index in range(200):
        rows.append(
            f"({index}, {index % 10}, 'item {index}', {index / 2})"
        )
    database.execute("INSERT INTO item VALUES " + ", ".join(rows))
    database.execute(
        "CREATE TABLE grp (id INTEGER PRIMARY KEY, label TEXT)"
    )
    database.execute(
        "INSERT INTO grp VALUES "
        + ", ".join(f"({index}, 'group {index}')" for index in range(10))
    )
    return database


class TestAccessPaths:
    def test_pk_equality_uses_index(self, db):
        meter = OperationMeter()
        rows = db.query("SELECT name FROM item WHERE id = 17", meter).fetchall()
        assert rows == [("item 17",)]
        assert meter.get("rows_scanned") == 0
        assert meter.get("index_probes") == 1

    def test_secondary_index_equality(self, db):
        db.create_index("item", ["grp"])
        meter = OperationMeter()
        rows = db.query("SELECT COUNT(*) FROM item WHERE grp = 3", meter).fetchall()
        assert rows == [(20,)]
        assert meter.get("rows_scanned") == 0

    def test_range_scan_on_btree(self, db):
        meter = OperationMeter()
        rows = db.query("SELECT COUNT(*) FROM item WHERE id < 50", meter).fetchall()
        assert rows == [(50,)]
        assert meter.get("rows_scanned") == 0
        assert meter.get("index_row_fetches") == 50

    def test_range_scan_results_match_seq_scan(self, db):
        indexed = db.query("SELECT id FROM item WHERE id >= 150").fetchall()
        database_noindex = Database("noix", PlannerOptions(allow_index_scans=False))
        # same data, no index access allowed
        database_noindex._tables = db._tables  # share storage for the check
        scanned = database_noindex.query("SELECT id FROM item WHERE id >= 150").fetchall()
        assert sorted(indexed) == sorted(scanned)

    def test_no_index_means_scan(self, db):
        meter = OperationMeter()
        db.query("SELECT COUNT(*) FROM item WHERE grp = 3", meter).fetchall()
        assert meter.get("rows_scanned") == 200

    def test_residual_predicates_applied_after_index(self, db):
        rows = db.query(
            "SELECT name FROM item WHERE id = 17 AND name LIKE 'item 1%'"
        ).fetchall()
        assert rows == [("item 17",)]
        rows = db.query(
            "SELECT name FROM item WHERE id = 17 AND name LIKE 'zzz%'"
        ).fetchall()
        assert rows == []

    def test_planner_options_disable_index(self, db):
        database = Database("opts", PlannerOptions(allow_index_scans=False))
        database._tables = db._tables
        meter = OperationMeter()
        database.query("SELECT * FROM item WHERE id = 3", meter).fetchall()
        assert meter.get("rows_scanned") == 200


class TestJoins:
    def test_index_nested_loop_join(self, db):
        meter = OperationMeter()
        rows = db.query(
            "SELECT i.name, g.label FROM grp g JOIN item i ON g.id = i.grp "
            "WHERE g.label = 'group 3'",
            meter,
        ).fetchall()
        assert len(rows) == 0 or len(rows) == 20  # resolved below
        # grp has no index on item.grp, so this may hash join; force index:
        db.create_index("item", ["grp"])
        rows = db.query(
            "SELECT i.name, g.label FROM grp g JOIN item i ON g.id = i.grp "
            "WHERE g.label = 'group 3'"
        ).fetchall()
        assert len(rows) == 20

    def test_join_correctness_hash_vs_index(self, db):
        query = (
            "SELECT i.id, g.label FROM grp g JOIN item i ON g.id = i.grp"
        )
        hash_rows = sorted(db.query(query).fetchall())
        db.create_index("item", ["grp"])
        index_rows = sorted(db.query(query).fetchall())
        assert hash_rows == index_rows
        assert len(hash_rows) == 200

    def test_three_way_join(self, db):
        db.execute("CREATE TABLE extra (id INTEGER PRIMARY KEY, item_id INTEGER)")
        db.execute(
            "INSERT INTO extra VALUES " + ", ".join(f"({i}, {i * 2})" for i in range(50))
        )
        rows = db.query(
            "SELECT e.id, g.label FROM extra e "
            "JOIN item i ON e.item_id = i.id "
            "JOIN grp g ON i.grp = g.id"
        ).fetchall()
        assert len(rows) == 50

    def test_join_condition_in_where(self, db):
        explicit = db.query(
            "SELECT i.id FROM grp g JOIN item i ON g.id = i.grp WHERE g.id = 1"
        ).fetchall()
        # no JOIN ... ON syntax: equality in WHERE is recognized as join edge
        # (FROM only supports one table in the subset, so use joins + WHERE)
        assert len(explicit) == 20

    def test_cartesian_product_rejected(self, db):
        db.execute("CREATE TABLE lonely (id INTEGER PRIMARY KEY)")
        with pytest.raises(PlanningError):
            db.query(
                "SELECT * FROM grp g JOIN item i ON g.id = i.grp "
                "JOIN lonely l ON g.id = i.grp"
            )

    def test_ambiguous_column_rejected(self, db):
        db.execute("CREATE TABLE other (id INTEGER PRIMARY KEY, grp INTEGER)")
        with pytest.raises(PlanningError):
            db.query("SELECT grp FROM item i JOIN other o ON i.id = o.id").fetchall()


class TestModifiers:
    def test_order_by_nulls_first(self, db):
        db.execute("CREATE TABLE n (id INTEGER PRIMARY KEY, v INTEGER)")
        db.execute("INSERT INTO n VALUES (1, 5), (2, NULL), (3, 1)")
        rows = db.query("SELECT v FROM n ORDER BY v").fetchall()
        assert rows == [(None,), (1,), (5,)]

    def test_limit_stops_early(self, db):
        meter = OperationMeter()
        rows = db.query("SELECT id FROM item LIMIT 5", meter).fetchall()
        assert len(rows) == 5
        # streaming limit: should not scan all 200 rows
        assert meter.get("rows_scanned") <= 10

    def test_projection_renames(self, db):
        result = db.query("SELECT name AS n FROM item WHERE id = 1")
        assert result.header == ("n",)

    def test_distinct(self, db):
        rows = db.query("SELECT DISTINCT grp FROM item").fetchall()
        assert len(rows) == 10


class TestLikeRegex:
    @pytest.mark.parametrize(
        "pattern,value,matches",
        [
            ("%cancer%", "breast cancer x", True),
            ("cancer%", "cancer of y", True),
            ("cancer%", "breast cancer", False),
            ("%cancer", "breast cancer", True),
            ("c_ncer", "cancer", True),
            ("c_ncer", "ccancer", False),
            ("100%", "100 percent", True),
            ("100%", "x100", False),
            ("a.b", "a.b", True),
            ("a.b", "axb", False),
        ],
    )
    def test_patterns(self, pattern, value, matches):
        assert bool(like_to_regex(pattern).match(value)) is matches
