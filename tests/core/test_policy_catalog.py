"""Tests for plan policies and the physical-design catalog."""

import pytest

from repro.core import FilterPlacement, PhysicalDesignCatalog, PlanPolicy
from repro.core.policy import DecompositionKind
from repro.relational import Database


class TestPlanPolicy:
    def test_aware_configuration(self):
        policy = PlanPolicy.physical_design_aware()
        assert policy.merge_same_source_joins
        assert policy.filter_placement is FilterPlacement.SOURCE_IF_INDEXED
        assert policy.aware

    def test_unaware_configuration(self):
        policy = PlanPolicy.physical_design_unaware()
        assert not policy.merge_same_source_joins
        assert policy.filter_placement is FilterPlacement.ENGINE
        assert not policy.aware

    def test_heuristic2_configuration(self):
        policy = PlanPolicy.heuristic2()
        assert policy.filter_placement is FilterPlacement.HEURISTIC2
        assert policy.aware

    def test_triple_wise(self):
        policy = PlanPolicy.triple_wise()
        assert policy.decomposition is DecompositionKind.TRIPLE

    def test_with_overrides(self):
        policy = PlanPolicy.physical_design_aware().with_(max_merged_tables=2)
        assert policy.max_merged_tables == 2
        assert policy.merge_same_source_joins  # unchanged

    def test_frozen(self):
        with pytest.raises(Exception):
            PlanPolicy.physical_design_aware().name = "x"


class TestPhysicalDesignCatalog:
    def make_database(self) -> Database:
        database = Database("src")
        database.execute("CREATE TABLE gene (id INTEGER PRIMARY KEY, symbol TEXT, d_id INTEGER)")
        database.execute("INSERT INTO gene VALUES (1, 'a', 1), (2, 'b', 2)")
        database.create_index("gene", ["symbol"])
        return database

    def test_harvests_indexes(self):
        catalog = PhysicalDesignCatalog()
        catalog.register_database("src", self.make_database())
        assert catalog.is_indexed("src", "gene", "id")  # PK
        assert catalog.is_indexed("src", "gene", "symbol")
        assert not catalog.is_indexed("src", "gene", "d_id")

    def test_primary_keys(self):
        catalog = PhysicalDesignCatalog()
        catalog.register_database("src", self.make_database())
        assert catalog.is_primary_key("src", "gene", "id")
        assert not catalog.is_primary_key("src", "gene", "symbol")

    def test_table_rows(self):
        catalog = PhysicalDesignCatalog()
        catalog.register_database("src", self.make_database())
        assert catalog.table_rows("src", "gene") == 2
        assert catalog.table_rows("src", "nope") == 0
        assert catalog.table_rows("other", "gene") == 0

    def test_unknown_source(self):
        catalog = PhysicalDesignCatalog()
        assert not catalog.is_indexed("ghost", "t", "c")
        assert catalog.source("ghost") is None

    def test_refresh_after_new_index(self):
        catalog = PhysicalDesignCatalog()
        database = self.make_database()
        catalog.register_database("src", database)
        assert not catalog.is_indexed("src", "gene", "d_id")
        database.create_index("gene", ["d_id"])
        catalog.refresh("src", database)
        assert catalog.is_indexed("src", "gene", "d_id")

    def test_describe(self):
        catalog = PhysicalDesignCatalog()
        catalog.register_database("src", self.make_database())
        text = catalog.describe()
        assert "gene.id (pk)" in text
        assert "gene.symbol" in text
