"""Tests for RDF-MT-based source selection."""

import pytest

from repro.core import decompose_star_shaped, select_sources
from repro.datalake import SemanticDataLake
from repro.exceptions import SourceSelectionError
from repro.sparql import parse_query

from ..conftest import TINY_AFFYMETRIX, TINY_DISEASOME, make_tiny_graph

PREFIX = "PREFIX v: <http://ex/vocab#>\n"


@pytest.fixture
def lake(tiny_lake) -> SemanticDataLake:
    return tiny_lake


def select(lake, text):
    decomposition = decompose_star_shaped(parse_query(PREFIX + text))
    return select_sources(lake, decomposition)


class TestSelection:
    def test_typed_star_selects_single_source(self, lake):
        selected = select(lake, "SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?s . }")
        assert len(selected) == 1
        assert selected[0].is_exclusive
        assert selected[0].candidates[0].source_id == "diseasome"

    def test_untyped_star_matches_by_predicates(self, lake):
        selected = select(lake, "SELECT * WHERE { ?g v:geneSymbol ?s . }")
        assert selected[0].candidates[0].source_id == "diseasome"

    def test_class_mapping_attached_for_relational(self, lake):
        selected = select(lake, "SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?s . }")
        candidate = selected[0].candidates[0]
        assert candidate.kind == "rdb"
        assert candidate.class_mapping is not None
        assert candidate.class_mapping.table == "gene"

    def test_cardinality_estimated(self, lake):
        selected = select(lake, "SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?s . }")
        assert selected[0].candidates[0].cardinality == 4

    def test_multi_star_selection(self, lake):
        selected = select(
            lake,
            "SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?sym . "
            "?p a v:Probeset ; v:symbol ?sym . }",
        )
        assert [s.candidates[0].source_id for s in selected] == ["diseasome", "affymetrix"]

    def test_unknown_predicate_raises(self, lake):
        with pytest.raises(SourceSelectionError):
            select(lake, "SELECT * WHERE { ?g v:doesNotExist ?x . }")

    def test_unknown_class_raises(self, lake):
        with pytest.raises(SourceSelectionError):
            select(lake, "SELECT * WHERE { ?g a v:Spaceship ; v:geneSymbol ?s . }")

    def test_type_and_predicates_must_match_same_class(self, lake):
        # Gene class does not offer diseaseName
        with pytest.raises(SourceSelectionError):
            select(lake, "SELECT * WHERE { ?g a v:Gene ; v:diseaseName ?x . }")


class TestRDFSources:
    def test_rdf_source_candidates(self, diseasome_graph, affymetrix_graph):
        lake = SemanticDataLake("mixed")
        lake.add_graph_as_relational("diseasome", diseasome_graph)
        lake.add_rdf_source("affymetrix", affymetrix_graph)
        selected = select(lake, "SELECT * WHERE { ?p a v:Probeset ; v:symbol ?s . }")
        candidate = selected[0].candidates[0]
        assert candidate.kind == "rdf"
        assert candidate.class_mapping is None
        assert candidate.cardinality == 3

    def test_replicated_class_yields_multiple_candidates(self, diseasome_graph):
        lake = SemanticDataLake("replicated")
        lake.add_graph_as_relational("copy_a", diseasome_graph)
        lake.add_rdf_source("copy_b", diseasome_graph)
        selected = select(lake, "SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?s . }")
        assert len(selected[0].candidates) == 2
        assert not selected[0].is_exclusive
