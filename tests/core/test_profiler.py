"""Tests for the plan profiler (EXPLAIN ANALYZE)."""

import pytest

from repro import FederatedEngine, NetworkSetting, PlanPolicy

from ..conftest import TINY_QUERY


class TestProfiler:
    def test_profile_returns_answers_and_report(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma1())
        answers, stats, report = engine.profile(TINY_QUERY, seed=1)
        assert len(answers) == 4
        assert stats.answers == 4
        assert report.execution_time == stats.execution_time

    def test_per_operator_row_counts(self, tiny_lake):
        engine = FederatedEngine(
            tiny_lake, policy=PlanPolicy.physical_design_unaware()
        )
        __, __stats, report = engine.profile(TINY_QUERY, seed=1)
        project = report.by_label("Project")
        assert project.rows_out == 4
        join = report.by_label("SymmetricHashJoin")
        assert join.rows_out == 4
        services = [entry for entry in report.entries if "Service" in entry.label]
        assert len(services) == 2
        assert sum(entry.rows_out for entry in services) == 4 + 3  # genes + diseases

    def test_timestamps_monotone(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma2())
        __, __stats, report = engine.profile(TINY_QUERY, seed=1)
        for entry in report.entries:
            if entry.rows_out:
                assert entry.first_output_at <= entry.last_output_at

    def test_render(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        __, __stats, report = engine.profile(TINY_QUERY, seed=1)
        text = report.render()
        assert "Profile" in text
        assert "rows=" in text
        # pre-order: the root operator first, indented children after
        assert text.splitlines()[1].startswith("Project")

    def test_empty_result_profile(self, tiny_lake):
        query = """
        PREFIX v: <http://ex/vocab#>
        SELECT * WHERE { ?g a v:Gene ; v:geneSymbol "NOPE" . }
        """
        engine = FederatedEngine(tiny_lake)
        answers, __, report = engine.profile(query, seed=1)
        assert answers == []
        assert all(entry.rows_out == 0 for entry in report.entries)
        assert report.by_label("Service").first_output_at is None

    def test_results_match_unprofiled_run(self, tiny_lake):
        from repro.benchmark import same_answers

        engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma1())
        plain, plain_stats = engine.run(TINY_QUERY, seed=1)
        profiled, profiled_stats, __ = engine.profile(TINY_QUERY, seed=1)
        assert same_answers(plain, profiled)
        assert plain_stats.execution_time == pytest.approx(
            profiled_stats.execution_time
        )
