"""Tests for the plan profiler (EXPLAIN ANALYZE)."""

import pytest

from repro import FederatedEngine, NetworkSetting, PlanPolicy

from ..conftest import TINY_QUERY


class TestProfiler:
    def test_profile_returns_answers_and_report(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma1())
        answers, stats, report = engine.profile(TINY_QUERY, seed=1)
        assert len(answers) == 4
        assert stats.answers == 4
        assert report.execution_time == stats.execution_time

    def test_per_operator_row_counts(self, tiny_lake):
        engine = FederatedEngine(
            tiny_lake, policy=PlanPolicy.physical_design_unaware()
        )
        __, __stats, report = engine.profile(TINY_QUERY, seed=1)
        project = report.by_label("Project")
        assert project.rows_out == 4
        join = report.by_label("SymmetricHashJoin")
        assert join.rows_out == 4
        services = [entry for entry in report.entries if "Service" in entry.label]
        assert len(services) == 2
        assert sum(entry.rows_out for entry in services) == 4 + 3  # genes + diseases

    def test_timestamps_monotone(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma2())
        __, __stats, report = engine.profile(TINY_QUERY, seed=1)
        for entry in report.entries:
            if entry.rows_out:
                assert entry.first_output_at <= entry.last_output_at

    def test_render(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        __, __stats, report = engine.profile(TINY_QUERY, seed=1)
        text = report.render()
        assert "Profile" in text
        assert "rows=" in text
        # pre-order: the root operator first, indented children after
        assert text.splitlines()[1].startswith("Project")

    def test_empty_result_profile(self, tiny_lake):
        query = """
        PREFIX v: <http://ex/vocab#>
        SELECT * WHERE { ?g a v:Gene ; v:geneSymbol "NOPE" . }
        """
        engine = FederatedEngine(tiny_lake)
        answers, __, report = engine.profile(query, seed=1)
        assert answers == []
        assert all(entry.rows_out == 0 for entry in report.entries)
        assert report.by_label("Service").first_output_at is None

    def test_results_match_unprofiled_run(self, tiny_lake):
        from repro.benchmark import same_answers

        engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma1())
        plain, plain_stats = engine.run(TINY_QUERY, seed=1)
        profiled, profiled_stats, __ = engine.profile(TINY_QUERY, seed=1)
        assert same_answers(plain, profiled)
        assert plain_stats.execution_time == pytest.approx(
            profiled_stats.execution_time
        )

    @pytest.mark.parametrize("runtime", ["sequential", "event", "thread"])
    def test_profile_works_under_every_runtime(self, tiny_lake, runtime):
        engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma1())
        answers, stats, report = engine.profile(TINY_QUERY, seed=1, runtime=runtime)
        assert len(answers) == 4
        assert report.runtime == runtime
        assert report.by_label("Project").rows_out == 4


class TestPlanCacheInteraction:
    """Regression: profiling a cached plan must not double-count.

    The historical profiler rebound ``execute`` on each operator and never
    restored it; with the plan cache serving the same plan object to the
    next profile, the old closure stayed bound and every solution was
    counted twice (then three times, ...).
    """

    def test_repeated_profiles_of_cached_plan_count_once(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        counts = []
        for __ in range(3):
            __a, __s, report = engine.profile(TINY_QUERY, seed=1)
            counts.append(report.by_label("Project").rows_out)
        assert counts == [4, 4, 4]

    def test_profile_leaves_plan_uninstrumented(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        engine.profile(TINY_QUERY, seed=1)
        plan = engine.plan(TINY_QUERY)

        def assert_clean(operator):
            assert "execute" not in operator.__dict__, operator.label()
            for child in operator.children():
                assert_clean(child)

        assert_clean(plan.root)

    def test_profile_then_plain_run_unchanged(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma1())
        __, profiled_stats, __r = engine.profile(TINY_QUERY, seed=1)
        answers, stats = engine.run(TINY_QUERY, seed=1)
        assert len(answers) == 4
        assert stats.execution_time == pytest.approx(profiled_stats.execution_time)

    def test_legacy_profile_plan_restores_on_error(self, tiny_lake):
        """Even an execution that dies mid-stream must restore bindings."""
        import warnings

        with warnings.catch_warnings():
            # The legacy module is exercised deliberately here; its
            # deprecation is asserted in TestDeprecatedProfilerModule.
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.core.profiler import profile_plan
        from repro.federation.answers import RunContext

        engine = FederatedEngine(tiny_lake)
        plan = engine.plan(TINY_QUERY)

        class Boom(RuntimeError):
            pass

        context = RunContext(network=NetworkSetting.gamma1(), seed=1)
        original = plan.root.execute

        def exploding(run_context):
            raise Boom()
            yield  # pragma: no cover

        plan.root.execute = exploding
        try:
            with pytest.raises(Boom):
                profile_plan(plan, context)
        finally:
            plan.root.__dict__.pop("execute", None)
        assert plan.root.execute.__func__ is original.__func__

        def assert_clean(operator):
            assert "execute" not in operator.__dict__, operator.label()
            for child in operator.children():
                assert_clean(child)

        assert_clean(plan.root)


class TestDeprecatedProfilerModule:
    """repro.core.profiler is a compatibility shim for repro.obs."""

    def _fresh_import(self):
        import importlib
        import sys

        sys.modules.pop("repro.core.profiler", None)
        import warnings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            module = importlib.import_module("repro.core.profiler")
        return module, caught

    def test_import_emits_deprecation_warning(self):
        __, caught = self._fresh_import()
        deprecations = [
            warning
            for warning in caught
            if issubclass(warning.category, DeprecationWarning)
        ]
        assert deprecations, "importing repro.core.profiler must warn"
        message = str(deprecations[0].message)
        assert "repro.core.profiler is deprecated" in message
        assert "repro.obs" in message

    def test_shim_resolves_to_the_obs_implementations(self):
        module, __ = self._fresh_import()
        from repro.obs.instrument import profile_plan
        from repro.obs.profile import OperatorProfile, ProfileReport

        assert module.profile_plan is profile_plan
        assert module.OperatorProfile is OperatorProfile
        assert module.ProfileReport is ProfileReport

    def test_importing_repro_core_does_not_warn(self):
        """Only the legacy module warns — `import repro.core` stays clean
        (checked in a pristine interpreter so module caching can't mask it)."""
        import os
        import subprocess
        import sys

        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
        clean = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning", "-c", "import repro.core"],
            env=env,
            capture_output=True,
        )
        assert clean.returncode == 0, clean.stderr.decode()
        legacy = subprocess.run(
            [
                sys.executable,
                "-W",
                "error::DeprecationWarning",
                "-c",
                "import repro.core.profiler",
            ],
            env=env,
            capture_output=True,
        )
        assert legacy.returncode != 0
        assert b"repro.core.profiler is deprecated" in legacy.stderr


class TestReportErgonomics:
    def test_by_label_error_lists_available_labels(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        __, __s, report = engine.profile(TINY_QUERY, seed=1)
        with pytest.raises(KeyError) as excinfo:
            report.by_label("NoSuchOperator")
        message = str(excinfo.value)
        assert "NoSuchOperator" in message
        assert "available labels" in message
        assert "Project" in message

    def test_by_label_error_on_empty_report(self):
        from repro.obs import ProfileReport

        with pytest.raises(KeyError, match=r"\(none\)"):
            ProfileReport().by_label("anything")

    def test_render_stable_for_zero_row_operators(self, tiny_lake):
        query = """
        PREFIX v: <http://ex/vocab#>
        SELECT * WHERE { ?g a v:Gene ; v:geneSymbol "NOPE" . }
        """
        engine = FederatedEngine(tiny_lake)
        __, __s, report = engine.profile(query, seed=1)
        text = report.render()
        # One line per operator plus header and cache summary — zero-row
        # operators render with "-" markers instead of vanishing.
        assert len(text.splitlines()) == len(report.entries) + 2
        assert "rows=0 first=- last=-" in text
