"""Tests for star-shaped / triple-wise decomposition."""

import pytest

from repro.core import (
    decompose_star_shaped,
    decompose_triple_wise,
    validate_decomposition,
)
from repro.exceptions import PlanningError
from repro.rdf import IRI, Variable
from repro.sparql import parse_query

PREFIX = "PREFIX v: <http://ex/vocab#>\n"

THREE_STAR_QUERY = PREFIX + """
SELECT * WHERE {
  ?g a v:Gene ; v:geneSymbol ?sym ; v:associatedDisease ?d .
  ?d a v:Disease ; v:diseaseName ?dn .
  ?p a v:Probeset ; v:symbol ?sym .
  FILTER(CONTAINS(?dn, "cancer"))
  FILTER(?sym != ?dn)
}
"""


class TestStarShaped:
    def test_groups_by_subject(self):
        decomposition = decompose_star_shaped(parse_query(THREE_STAR_QUERY))
        assert len(decomposition) == 3
        subjects = [star.subject for star in decomposition.subqueries]
        assert subjects == [Variable("g"), Variable("d"), Variable("p")]

    def test_pattern_counts(self):
        decomposition = decompose_star_shaped(parse_query(THREE_STAR_QUERY))
        assert [len(star.patterns) for star in decomposition.subqueries] == [3, 2, 2]

    def test_single_star_filter_attached(self):
        decomposition = decompose_star_shaped(parse_query(THREE_STAR_QUERY))
        disease_star = decomposition.subqueries[1]
        assert len(disease_star.filters) == 1

    def test_cross_star_filter_residual(self):
        decomposition = decompose_star_shaped(parse_query(THREE_STAR_QUERY))
        assert len(decomposition.residual_filters) == 1

    def test_type_constraint(self):
        decomposition = decompose_star_shaped(parse_query(THREE_STAR_QUERY))
        assert decomposition.subqueries[0].type_constraint() == IRI("http://ex/vocab#Gene")

    def test_predicates(self):
        decomposition = decompose_star_shaped(parse_query(THREE_STAR_QUERY))
        predicates = decomposition.subqueries[1].predicates()
        assert IRI("http://ex/vocab#diseaseName") in predicates

    def test_join_variables(self):
        decomposition = decompose_star_shaped(parse_query(THREE_STAR_QUERY))
        gene, disease, probe = decomposition.subqueries
        assert gene.join_variables(disease) == {"d"}
        assert gene.join_variables(probe) == {"sym"}
        assert disease.join_variables(probe) == set()

    def test_ground_subject_star(self):
        decomposition = decompose_star_shaped(
            parse_query(PREFIX + "SELECT * WHERE { <http://ex/g/1> v:geneSymbol ?s . }")
        )
        assert len(decomposition) == 1
        assert decomposition.subqueries[0].subject == IRI("http://ex/g/1")

    def test_validates(self):
        query = parse_query(THREE_STAR_QUERY)
        decomposition = decompose_star_shaped(query)
        assert validate_decomposition(query.where, decomposition)


class TestTripleWise:
    def test_one_subquery_per_pattern(self):
        decomposition = decompose_triple_wise(parse_query(THREE_STAR_QUERY))
        assert len(decomposition) == 7

    def test_filters_follow_coverage(self):
        decomposition = decompose_triple_wise(parse_query(THREE_STAR_QUERY))
        # CONTAINS(?dn) fits the ?d v:diseaseName ?dn sub-query
        owners = [star for star in decomposition.subqueries if star.filters]
        assert len(owners) == 1
        # ?sym != ?dn spans two sub-queries
        assert len(decomposition.residual_filters) == 1

    def test_validates(self):
        query = parse_query(THREE_STAR_QUERY)
        decomposition = decompose_triple_wise(query)
        assert validate_decomposition(query.where, decomposition)


class TestRejections:
    def test_empty_pattern_rejected(self):
        with pytest.raises(PlanningError):
            decompose_star_shaped(parse_query("SELECT * WHERE { }"))

    def test_variable_predicate_rejected(self):
        with pytest.raises(PlanningError):
            decompose_star_shaped(
                parse_query("SELECT * WHERE { ?s ?p ?o }")
            )

    def test_optional_rejected_for_triple_wise(self):
        query = parse_query(
            PREFIX + "SELECT * WHERE { ?g v:geneSymbol ?s OPTIONAL { ?g v:x ?y } }"
        )
        with pytest.raises(PlanningError):
            decompose_triple_wise(query)

    def test_union_mixed_with_patterns_rejected(self):
        query = parse_query(
            PREFIX
            + "SELECT * WHERE { ?g v:geneSymbol ?s "
            "{ ?g v:a ?x } UNION { ?g v:b ?x } }"
        )
        with pytest.raises(PlanningError):
            decompose_star_shaped(query)

    def test_nested_optional_rejected(self):
        query = parse_query(
            PREFIX
            + "SELECT * WHERE { ?g v:geneSymbol ?s "
            "OPTIONAL { ?g v:x ?y OPTIONAL { ?g v:z ?w } } }"
        )
        with pytest.raises(PlanningError):
            decompose_star_shaped(query)


class TestOptionalAndUnion:
    def test_optional_group_decomposed(self):
        query = parse_query(
            PREFIX
            + "SELECT * WHERE { ?g v:geneSymbol ?s "
            "OPTIONAL { ?g v:chromosome ?c . ?d v:diseaseName ?dn } }"
        )
        decomposition = decompose_star_shaped(query)
        assert len(decomposition.subqueries) == 1
        assert len(decomposition.optional_groups) == 1
        assert len(decomposition.optional_groups[0].subqueries) == 2

    def test_union_branches_decomposed(self):
        query = parse_query(
            PREFIX
            + "SELECT * WHERE { { ?g v:geneSymbol ?s } UNION { ?g v:symbol ?s } }"
        )
        decomposition = decompose_star_shaped(query)
        assert decomposition.union_branches
        assert len(decomposition.union_branches) == 2
        assert not decomposition.subqueries

    def test_describe_mentions_structures(self):
        query = parse_query(
            PREFIX
            + "SELECT * WHERE { ?g v:geneSymbol ?s OPTIONAL { ?g v:chromosome ?c } }"
        )
        text = decompose_star_shaped(query).describe()
        assert "OPTIONAL" in text


class TestDescriptions:
    def test_describe(self):
        decomposition = decompose_star_shaped(parse_query(THREE_STAR_QUERY))
        text = decomposition.describe()
        assert "3 sub-queries" in text
        assert "?g" in text
