"""Tests for the federated planner and engine facade."""

import pytest

from repro import FederatedEngine, PlanPolicy, NetworkSetting, VirtualClock
from repro.benchmark import same_answers
from repro.exceptions import SourceSelectionError

from ..conftest import TINY_CROSS_SOURCE_QUERY, TINY_QUERY


class TestPlanning:
    def test_unaware_plan_has_engine_join(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, policy=PlanPolicy.physical_design_unaware())
        plan = engine.plan(TINY_QUERY)
        assert "SymmetricHashJoin" in plan.explain()

    def test_aware_plan_merges_stars(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, policy=PlanPolicy.physical_design_aware())
        plan = engine.plan(TINY_QUERY)
        explained = plan.explain()
        assert "JOIN disease" in explained
        assert "SymmetricHashJoin" not in explained

    def test_explain_includes_decisions(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, policy=PlanPolicy.physical_design_aware())
        explained = engine.explain(TINY_CROSS_SOURCE_QUERY)
        assert "Heuristic 2" in explained

    def test_plan_carries_policy_and_network(self, tiny_lake):
        engine = FederatedEngine(
            tiny_lake,
            policy=PlanPolicy.physical_design_aware(),
            network=NetworkSetting.gamma2(),
        )
        plan = engine.plan(TINY_QUERY)
        assert plan.policy.name == "Physical-Design-Aware"
        assert plan.network.name == "Gamma 2"

    def test_unplannable_query_raises(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        with pytest.raises(SourceSelectionError):
            engine.plan("PREFIX x: <http://nowhere/> SELECT * WHERE { ?a x:nope ?b }")


class TestExecution:
    def test_answers_correct(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        answers, stats = engine.run(TINY_QUERY, seed=1)
        assert len(answers) == 4
        assert stats.answers == 4
        symbols = {answer["sym"].lexical for answer in answers}
        assert symbols == {"BRCA1", "TP53", "KRAS", "INS"}

    def test_policies_agree_on_answers(self, tiny_lake):
        aware = FederatedEngine(tiny_lake, policy=PlanPolicy.physical_design_aware())
        unaware = FederatedEngine(tiny_lake, policy=PlanPolicy.physical_design_unaware())
        for query in (TINY_QUERY, TINY_CROSS_SOURCE_QUERY):
            a, __ = aware.run(query, seed=1)
            b, __ = unaware.run(query, seed=1)
            assert same_answers(a, b)

    def test_cross_source_join(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        answers, __ = engine.run(TINY_CROSS_SOURCE_QUERY, seed=1)
        # BRCA1 and KRAS probesets are Homo sapiens
        assert len(answers) == 2

    def test_projection_respected(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        answers, __ = engine.run(TINY_QUERY, seed=1)
        assert all(set(answer) == {"g", "sym", "dn"} for answer in answers)

    def test_streaming_interface(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        stream = engine.execute(TINY_QUERY, seed=1)
        first = next(stream)
        assert "sym" in first
        rest = stream.collect()
        assert len(rest) == 3
        assert stream.exhausted
        assert stream.stats.execution_time > 0

    def test_trace_recorded(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma2())
        __, stats = engine.run(TINY_QUERY, seed=1)
        assert len(stats.trace) == 4
        times = [when for when, __c in stats.trace]
        assert times == sorted(times)
        assert stats.time_to_first_answer == times[0]

    def test_deterministic_given_seed(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma3())
        __, first = engine.run(TINY_QUERY, seed=11)
        __, second = engine.run(TINY_QUERY, seed=11)
        assert first.execution_time == pytest.approx(second.execution_time)

    def test_different_seeds_differ(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma3())
        __, first = engine.run(TINY_QUERY, seed=11)
        __, second = engine.run(TINY_QUERY, seed=12)
        assert first.execution_time != second.execution_time

    def test_custom_clock(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        clock = VirtualClock(start=100.0)
        stream = engine.execute(TINY_QUERY, seed=1, clock=clock)
        stream.collect()
        assert stream.stats.execution_time >= 100.0

    def test_with_policy_and_network_builders(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        sibling = engine.with_policy(PlanPolicy.physical_design_unaware())
        assert sibling.lake is engine.lake
        assert sibling.policy.name == "Physical-Design-Unaware"
        other = engine.with_network(NetworkSetting.gamma1())
        assert other.network.name == "Gamma 1"


class TestModifiers:
    def test_distinct(self, tiny_lake):
        query = """
        PREFIX v: <http://ex/vocab#>
        SELECT DISTINCT ?dn WHERE {
          ?g a v:Gene ; v:associatedDisease ?d .
          ?d a v:Disease ; v:diseaseName ?dn .
        }
        """
        engine = FederatedEngine(tiny_lake)
        answers, __ = engine.run(query, seed=1)
        assert len(answers) == 3  # four genes but three diseases

    def test_order_by_and_limit(self, tiny_lake):
        query = """
        PREFIX v: <http://ex/vocab#>
        SELECT ?sym WHERE { ?g a v:Gene ; v:geneSymbol ?sym . }
        ORDER BY ?sym LIMIT 2
        """
        engine = FederatedEngine(tiny_lake)
        answers, __ = engine.run(query, seed=1)
        assert [answer["sym"].lexical for answer in answers] == ["BRCA1", "INS"]

    def test_residual_filter_at_engine(self, tiny_lake):
        query = """
        PREFIX v: <http://ex/vocab#>
        SELECT * WHERE {
          ?g a v:Gene ; v:geneSymbol ?sym .
          ?p a v:Probeset ; v:symbol ?psym .
          FILTER(?sym = ?psym)
        }
        """
        engine = FederatedEngine(tiny_lake)
        answers, __ = engine.run(query, seed=1)
        assert len(answers) == 3
