"""Tests for the paper's two heuristics."""

import pytest

from repro.core import (
    FilterPlacement,
    MergeGroup,
    PlanPolicy,
    decompose_star_shaped,
    place_filters,
    push_down_joins,
    select_sources,
)
from repro.network import NetworkSetting
from repro.sparql import parse_query

PREFIX = "PREFIX v: <http://ex/vocab#>\n"

H1_QUERY = PREFIX + """
SELECT * WHERE {
  ?g a v:Gene ; v:geneSymbol ?sym ; v:associatedDisease ?d .
  ?d a v:Disease ; v:diseaseName ?dn .
}
"""

MIXED_QUERY = PREFIX + """
SELECT * WHERE {
  ?g a v:Gene ; v:geneSymbol ?sym ; v:associatedDisease ?d .
  ?d a v:Disease ; v:diseaseName ?dn .
  ?p a v:Probeset ; v:symbol ?sym .
}
"""


def selections_for(lake, text):
    return select_sources(lake, decompose_star_shaped(parse_query(text)))


class TestHeuristic1:
    def test_merges_same_source_indexed_join(self, tiny_lake):
        selections = selections_for(tiny_lake, H1_QUERY)
        units, decisions = push_down_joins(
            selections, tiny_lake.physical_catalog, PlanPolicy.physical_design_aware()
        )
        assert len(units) == 1
        assert isinstance(units[0], MergeGroup)
        assert decisions and decisions[0].merged

    def test_unaware_policy_never_merges(self, tiny_lake):
        selections = selections_for(tiny_lake, H1_QUERY)
        units, decisions = push_down_joins(
            selections, tiny_lake.physical_catalog, PlanPolicy.physical_design_unaware()
        )
        assert len(units) == 2
        assert not any(isinstance(unit, MergeGroup) for unit in units)

    def test_does_not_merge_across_sources(self, tiny_lake):
        selections = selections_for(tiny_lake, MIXED_QUERY)
        units, __ = push_down_joins(
            selections, tiny_lake.physical_catalog, PlanPolicy.physical_design_aware()
        )
        # gene+disease merge; probeset stays alone
        assert len(units) == 2

    def test_no_merge_without_index(self, tiny_lake):
        # drop the FK index: join attribute unindexed on the gene side, and
        # the disease side is a PK... the PK side keeps it mergeable, so
        # verify the decision reasoning instead by dropping and checking both
        # sides: gene.associateddisease unindexed but disease.id is a PK.
        tiny_lake.drop_index("diseasome", "gene", "ix_gene_associateddisease")
        selections = selections_for(tiny_lake, H1_QUERY)
        units, decisions = push_down_joins(
            selections, tiny_lake.physical_catalog, PlanPolicy.physical_design_aware()
        )
        # one side (disease.id PK) is still indexed -> merge still allowed
        assert len(units) == 1

    def test_no_merge_when_no_shared_variable(self, tiny_lake):
        query = PREFIX + (
            "SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?s . "
            "?d a v:Disease ; v:diseaseName ?dn . }"
        )
        selections = selections_for(tiny_lake, query)
        units, decisions = push_down_joins(
            selections, tiny_lake.physical_catalog, PlanPolicy.physical_design_aware()
        )
        assert len(units) == 2
        assert any(not decision.merged for decision in decisions)

    def test_table_bound_respected(self, tiny_lake):
        selections = selections_for(tiny_lake, H1_QUERY)
        policy = PlanPolicy.physical_design_aware().with_(max_merged_tables=1)
        units, decisions = push_down_joins(selections, tiny_lake.physical_catalog, policy)
        assert len(units) == 2
        assert any("more than" in decision.reason for decision in decisions)


class TestHeuristic2:
    def stars_with_filter(self, tiny_lake, filter_text, star_text=None):
        star_text = star_text or "?d a v:Disease ; v:diseaseName ?dn ."
        query = PREFIX + f"SELECT * WHERE {{ {star_text} {filter_text} }}"
        selections = selections_for(tiny_lake, query)
        selection = selections[0]
        candidate = selection.candidates[0]
        return (
            selection.star.filters,
            [(selection.star, candidate.class_mapping)],
            candidate.source_id,
        )

    def place(self, tiny_lake, placement, network, filter_text, star_text=None):
        filters, stars, source_id = self.stars_with_filter(tiny_lake, filter_text, star_text)
        policy = PlanPolicy(
            name="test", merge_same_source_joins=False, filter_placement=placement
        )
        return place_filters(
            filters, stars, source_id, tiny_lake.physical_catalog, policy, network
        )

    def test_engine_policy_keeps_filters_up(self, tiny_lake):
        plan = self.place(
            tiny_lake,
            FilterPlacement.ENGINE,
            NetworkSetting.no_delay(),
            'FILTER(?dn = "diabetes")',
        )
        assert not plan.pushed and len(plan.at_engine) == 1

    def test_source_policy_pushes_translatable(self, tiny_lake):
        plan = self.place(
            tiny_lake,
            FilterPlacement.SOURCE,
            NetworkSetting.no_delay(),
            'FILTER(?dn = "diabetes")',
        )
        assert len(plan.pushed) == 1

    def test_source_if_indexed_requires_index(self, tiny_lake):
        # diseasename is not indexed
        plan = self.place(
            tiny_lake,
            FilterPlacement.SOURCE_IF_INDEXED,
            NetworkSetting.no_delay(),
            'FILTER(?dn = "diabetes")',
        )
        assert not plan.pushed
        assert "no index" in plan.decisions[0].reason

    def test_source_if_indexed_pushes_indexed(self, tiny_lake):
        tiny_lake.create_index("diseasome", "disease", ["diseasename"])
        plan = self.place(
            tiny_lake,
            FilterPlacement.SOURCE_IF_INDEXED,
            NetworkSetting.no_delay(),
            'FILTER(?dn = "diabetes")',
        )
        assert len(plan.pushed) == 1

    def test_heuristic2_requires_slow_network(self, tiny_lake):
        tiny_lake.create_index("diseasome", "disease", ["diseasename"])
        fast = self.place(
            tiny_lake,
            FilterPlacement.HEURISTIC2,
            NetworkSetting.gamma1(),
            'FILTER(?dn = "diabetes")',
        )
        assert not fast.pushed
        slow = self.place(
            tiny_lake,
            FilterPlacement.HEURISTIC2,
            NetworkSetting.gamma3(),
            'FILTER(?dn = "diabetes")',
        )
        assert len(slow.pushed) == 1

    def test_untranslatable_filter_stays_at_engine(self, tiny_lake):
        plan = self.place(
            tiny_lake,
            FilterPlacement.SOURCE,
            NetworkSetting.no_delay(),
            'FILTER(REGEX(?dn, "^dia"))',
        )
        assert not plan.pushed
        assert "not translatable" in plan.decisions[0].reason

    def test_decision_log_rendering(self, tiny_lake):
        plan = self.place(
            tiny_lake,
            FilterPlacement.ENGINE,
            NetworkSetting.no_delay(),
            'FILTER(?dn = "diabetes")',
        )
        assert "engine" in plan.decisions[0].describe()
