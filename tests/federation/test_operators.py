"""Tests for the ANAPSID-style federated operators."""

from dataclasses import dataclass, field
from typing import Iterator

import pytest

from repro.federation import RunContext, Solution
from repro.federation.operators import (
    Distinct,
    EngineFilter,
    FedOperator,
    Limit,
    OrderBy,
    Project,
    ServiceNode,
    SymmetricHashJoin,
    Union,
)
from repro.rdf import IRI, Literal, Variable, XSD_INTEGER
from repro.sparql.algebra import (
    BinaryOp,
    Filter,
    OrderCondition,
    TermExpr,
    VariableExpr,
)


@dataclass
class Static(FedOperator):
    """Test helper: replay a fixed list of solutions."""

    solutions: list[Solution]
    pulls: list[int] = field(default_factory=list)

    def execute(self, context: RunContext) -> Iterator[Solution]:
        for index, solution in enumerate(self.solutions):
            self.pulls.append(index)
            yield dict(solution)


def lit(value: str) -> Literal:
    return Literal(value)


def num(value: int) -> Literal:
    return Literal(str(value), XSD_INTEGER)


def ctx() -> RunContext:
    return RunContext(seed=1)


class TestSymmetricHashJoin:
    def test_joins_on_shared_variable(self):
        left = Static([{"a": lit("1"), "b": lit("x")}, {"a": lit("2"), "b": lit("y")}])
        right = Static([{"a": lit("1"), "c": lit("z")}])
        join = SymmetricHashJoin(left, right, ("a",))
        rows = list(join.execute(ctx()))
        assert rows == [{"a": lit("1"), "b": lit("x"), "c": lit("z")}]

    def test_duplicates_multiply(self):
        left = Static([{"a": lit("1")}, {"a": lit("1")}])
        right = Static([{"a": lit("1"), "c": lit("z")}, {"a": lit("1"), "c": lit("w")}])
        join = SymmetricHashJoin(left, right, ("a",))
        assert len(list(join.execute(ctx()))) == 4

    def test_empty_join_variables_is_cross_product(self):
        left = Static([{"b": lit("x")}, {"b": lit("y")}])
        right = Static([{"c": lit("z")}])
        join = SymmetricHashJoin(left, right, ())
        assert len(list(join.execute(ctx()))) == 2

    def test_inconsistent_shared_nonjoin_variable_dropped(self):
        # both sides also bind ?b: merge must check compatibility
        left = Static([{"a": lit("1"), "b": lit("x")}])
        right = Static([{"a": lit("1"), "b": lit("DIFFERENT")}])
        join = SymmetricHashJoin(left, right, ("a",))
        assert list(join.execute(ctx())) == []

    def test_adaptivity_alternates_sides(self):
        left = Static([{"a": lit(str(i))} for i in range(4)])
        right = Static([{"a": lit(str(i))} for i in range(4)])
        join = SymmetricHashJoin(left, right, ("a",))
        list(join.execute(ctx()))
        # both inputs were pulled before either was exhausted
        assert left.pulls and right.pulls

    def test_charges_engine_time(self):
        context = ctx()
        left = Static([{"a": lit("1")}])
        right = Static([{"a": lit("1")}])
        join = SymmetricHashJoin(left, right, ("a",))
        list(join.execute(context))
        assert context.stats.engine_cost > 0

    def test_join_on_iri_terms(self):
        shared = IRI("http://ex/d/1")
        left = Static([{"d": shared, "g": lit("g1")}])
        right = Static([{"d": shared, "n": lit("n1")}])
        join = SymmetricHashJoin(left, right, ("d",))
        assert len(list(join.execute(ctx()))) == 1


class TestEngineFilter:
    def test_filters_solutions(self):
        child = Static([{"n": num(1)}, {"n": num(5)}, {"n": num(9)}])
        filter_ = Filter(
            BinaryOp(">", VariableExpr(Variable("n")), TermExpr(num(3)))
        )
        node = EngineFilter(child, [filter_])
        rows = list(node.execute(ctx()))
        assert [row["n"].lexical for row in rows] == ["5", "9"]

    def test_error_rejects_solution(self):
        child = Static([{"m": num(1)}])  # ?n unbound
        filter_ = Filter(BinaryOp(">", VariableExpr(Variable("n")), TermExpr(num(3))))
        assert list(EngineFilter(child, [filter_]).execute(ctx())) == []

    def test_charges_per_filter(self):
        context = ctx()
        child = Static([{"n": num(1)}] * 10)
        filter_ = Filter(BinaryOp(">", VariableExpr(Variable("n")), TermExpr(num(0))))
        list(EngineFilter(child, [filter_, filter_]).execute(context))
        expected = 10 * 2 * context.cost_model.engine_filter_eval
        assert context.stats.engine_cost == pytest.approx(expected)


class TestProjectDistinctLimit:
    def test_project(self):
        child = Static([{"a": lit("1"), "b": lit("2")}])
        rows = list(Project(child, ("a",)).execute(ctx()))
        assert rows == [{"a": lit("1")}]

    def test_project_missing_variable_skipped(self):
        child = Static([{"a": lit("1")}])
        rows = list(Project(child, ("a", "missing")).execute(ctx()))
        assert rows == [{"a": lit("1")}]

    def test_distinct(self):
        child = Static([{"a": lit("1")}, {"a": lit("1")}, {"a": lit("2")}])
        rows = list(Distinct(child).execute(ctx()))
        assert len(rows) == 2

    def test_limit(self):
        child = Static([{"a": num(i)} for i in range(10)])
        rows = list(Limit(child, limit=3).execute(ctx()))
        assert len(rows) == 3

    def test_offset(self):
        child = Static([{"a": num(i)} for i in range(5)])
        rows = list(Limit(child, limit=2, offset=2).execute(ctx()))
        assert [row["a"].lexical for row in rows] == ["2", "3"]

    def test_limit_stops_pulling(self):
        child = Static([{"a": num(i)} for i in range(100)])
        list(Limit(child, limit=1).execute(ctx()))
        assert len(child.pulls) <= 2


class TestOrderBy:
    def test_numeric_order(self):
        child = Static([{"n": num(5)}, {"n": num(1)}, {"n": num(3)}])
        condition = OrderCondition(VariableExpr(Variable("n")))
        rows = list(OrderBy(child, [condition]).execute(ctx()))
        assert [row["n"].lexical for row in rows] == ["1", "3", "5"]

    def test_descending(self):
        child = Static([{"n": num(5)}, {"n": num(1)}])
        condition = OrderCondition(VariableExpr(Variable("n")), ascending=False)
        rows = list(OrderBy(child, [condition]).execute(ctx()))
        assert [row["n"].lexical for row in rows] == ["5", "1"]

    def test_string_order(self):
        child = Static([{"s": lit("pear")}, {"s": lit("apple")}])
        condition = OrderCondition(VariableExpr(Variable("s")))
        rows = list(OrderBy(child, [condition]).execute(ctx()))
        assert [row["s"].lexical for row in rows] == ["apple", "pear"]


class TestUnion:
    def test_round_robin(self):
        first = Static([{"a": lit("1")}, {"a": lit("2")}])
        second = Static([{"a": lit("3")}])
        rows = list(Union([first, second]).execute(ctx()))
        assert [row["a"].lexical for row in rows] == ["1", "3", "2"]

    def test_empty_inputs(self):
        assert list(Union([Static([]), Static([])]).execute(ctx())) == []


class TestServiceNode:
    def test_engine_filters_applied(self):
        def runner(context):
            yield {"n": num(1)}
            yield {"n": num(9)}

        filter_ = Filter(BinaryOp(">", VariableExpr(Variable("n")), TermExpr(num(5))))
        node = ServiceNode("src", "test", runner, engine_filters=[filter_])
        rows = list(node.execute(ctx()))
        assert [row["n"].lexical for row in rows] == ["9"]

    def test_explain_mentions_source(self):
        node = ServiceNode("diseasome", "SQL: SELECT 1", lambda context: iter(()))
        assert "diseasome" in node.explain()
