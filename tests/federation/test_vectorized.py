"""Vectorized (columnar batch) execution: bit-identity and edge cases.

The batch data plane must be indistinguishable from the row plane in
everything except wall-clock cost: same answers in the same order, and
bitwise-identical virtual-time accumulators (clock arithmetic is float
addition, which is non-associative, so this pins the exact charge
sequence, not just the totals).
"""

from __future__ import annotations

import random

import pytest

from repro.core.engine import FederatedEngine
from repro.datalake import SemanticDataLake
from repro.federation.operators import _JOIN_STREAM_MEMO
from repro.network.delays import NetworkSetting
from repro.rdf.terms import IRI, Literal
from repro.sparql.algebra import BinaryOp, TermExpr, VariableExpr
from repro.sparql.expressions import compile_holds, holds
from repro.sparql.parser import parse_query

from ..conftest import (
    TINY_AFFYMETRIX,
    TINY_CROSS_SOURCE_QUERY,
    TINY_DISEASOME,
    TINY_QUERY,
    make_tiny_graph,
)


def stats_signature(stats) -> tuple:
    """Every virtual-time accumulator of a run, as one comparable tuple."""
    per_source = tuple(
        (sid, s.requests, s.answers, s.virtual_cost, s.network_delay)
        for sid, s in sorted(stats.source_stats.items())
    )
    return (
        stats.execution_time,
        tuple(stats.trace),
        stats.messages,
        stats.engine_cost,
        stats.time_to_first_answer,
        stats.answers,
        stats.subresult_cache_hits,
        per_source,
    )


def run_pair(lake, query, *, seed=3, batch_size=None, network=None, runtime="sequential"):
    """One cold row run and one cold batch run; returns both (answers, sig)."""
    results = []
    for exec_mode in ("row", "batch"):
        engine = FederatedEngine(
            lake,
            network=network or NetworkSetting.no_delay(),
            runtime=runtime,
            exec=exec_mode,
            batch_size=batch_size,
        )
        answers, stats = engine.run(query, seed=seed)
        results.append((answers, stats_signature(stats)))
    return results


def assert_identical(lake, query, **kwargs):
    (row_answers, row_sig), (batch_answers, batch_sig) = run_pair(lake, query, **kwargs)
    assert batch_answers == row_answers
    assert batch_sig == row_sig
    return row_answers


DISTINCT_ORDER_QUERY = """
PREFIX v: <http://ex/vocab#>
SELECT DISTINCT ?dn WHERE {
  ?g a v:Gene ; v:associatedDisease ?d .
  ?d a v:Disease ; v:diseaseName ?dn .
}
ORDER BY ?dn
"""

EMPTY_QUERY = """
PREFIX v: <http://ex/vocab#>
SELECT ?g ?dn WHERE {
  ?g a v:Gene ; v:associatedDisease ?d .
  ?d a v:Disease ; v:diseaseName ?dn .
  FILTER(?dn = "zzz-no-such-disease")
}
"""


class TestRowBatchIdentity:
    @pytest.mark.parametrize("runtime", ["sequential", "event", "thread"])
    @pytest.mark.parametrize("network", ["no_delay", "gamma2"])
    def test_benchmark_query_identity(self, small_lslod_lake, runtime, network):
        from repro.datasets import BENCHMARK_QUERIES

        setting = getattr(NetworkSetting, network)()
        assert_identical(
            small_lslod_lake,
            BENCHMARK_QUERIES["Q2"].text,
            seed=7,
            network=setting,
            runtime=runtime,
        )

    def test_multi_join_query_identity(self, small_lslod_lake):
        # Q4 stacks two hash joins over SQL and SPARQL sources — the
        # worst case for charge-order divergence between the planes.
        from repro.datasets import BENCHMARK_QUERIES

        assert_identical(
            small_lslod_lake,
            BENCHMARK_QUERIES["Q4"].text,
            seed=7,
            network=NetworkSetting.gamma1(),
        )

    def test_warm_and_cold_runs_identical(self, tiny_lake):
        signatures = {}
        for exec_mode in ("row", "batch"):
            engine = FederatedEngine(tiny_lake, exec=exec_mode)
            runs = []
            for __ in range(2):  # cold, then warm (subresult/plan caches)
                answers, stats = engine.run(TINY_QUERY, seed=3)
                runs.append((answers, stats_signature(stats)))
            signatures[exec_mode] = runs
        assert signatures["batch"] == signatures["row"]

    def test_batch_size_never_changes_results(self, tiny_lake):
        reference = None
        for batch_size in (1, 2, 3, 256):
            engine = FederatedEngine(tiny_lake, exec="batch", batch_size=batch_size)
            answers, stats = engine.run(TINY_QUERY, seed=3)
            outcome = (answers, stats_signature(stats))
            if reference is None:
                reference = outcome
            else:
                assert outcome == reference


class TestBatchBoundaries:
    def test_empty_sources(self, tiny_lake):
        answers = assert_identical(tiny_lake, EMPTY_QUERY, batch_size=2)
        assert answers == []

    def test_batch_size_one(self, tiny_lake):
        answers = assert_identical(tiny_lake, TINY_QUERY, batch_size=1)
        assert len(answers) == 4

    def test_limit_abandons_stream_mid_batch(self, tiny_lake):
        # Batch capacity exceeds the LIMIT, so the engine abandons the
        # operator stream with a partially-consumed chunk in flight; the
        # trace (including final execution_time) must still match row mode.
        limited = TINY_QUERY.rstrip() + "\nLIMIT 2"
        answers = assert_identical(tiny_lake, limited, batch_size=256)
        assert len(answers) == 2

    def test_distinct_and_order_span_chunk_boundaries(self, tiny_lake):
        # batch_size=2 forces DISTINCT dedup state and the ORDER BY
        # materialization to straddle several chunks.
        answers = assert_identical(tiny_lake, DISTINCT_ORDER_QUERY, batch_size=2)
        names = [answer["dn"].lexical for answer in answers]
        assert names == sorted(names)
        assert len(names) == len(set(names))


def build_lake(diseasome_text: str = TINY_DISEASOME) -> SemanticDataLake:
    lake = SemanticDataLake("tiny")
    lake.add_graph_as_relational(
        "diseasome", make_tiny_graph(diseasome_text, "diseasome")
    )
    lake.add_graph_as_relational(
        "affymetrix", make_tiny_graph(TINY_AFFYMETRIX, "affymetrix")
    )
    lake.create_index("diseasome", "gene", ["associateddisease"])
    lake.create_index("affymetrix", "probeset", ["symbol"])
    return lake


class TestJoinStreamMemo:
    """The cross-run join stream memo must never change results.

    The cross-source query forces a SymmetricHashJoin between the two
    lakes' service nodes (the single-source TINY_QUERY merges into one
    SQL unit and never reaches the join operator).
    """

    def test_replay_is_bit_identical(self):
        lake = build_lake()
        _JOIN_STREAM_MEMO.clear()
        first = None
        for __ in range(3):  # first run records, later runs replay
            engine = FederatedEngine(lake, exec="batch")
            answers, stats = engine.run(TINY_CROSS_SOURCE_QUERY, seed=3)
            outcome = (answers, stats_signature(stats))
            if first is None:
                first = outcome
            else:
                assert outcome == first
        assert _JOIN_STREAM_MEMO  # the join stream was memoized

    def test_identical_lakes_do_not_collide(self):
        # Two different lakes with identical schemas, SQL text and data
        # versions must not share memo entries: the signature pins the
        # backing store by object identity.  Gene/99 carries the BRCA1
        # symbol, so lake_b gains one extra cross-source join answer.
        extra = (
            TINY_DISEASOME
            + '<http://ex/diseasome/Gene/99> '
            '<http://www.w3.org/1999/02/22-rdf-syntax-ns#type> '
            '<http://ex/vocab#Gene> .\n'
            '<http://ex/diseasome/Gene/99> <http://ex/vocab#geneSymbol> "BRCA1" .\n'
            '<http://ex/diseasome/Gene/99> <http://ex/vocab#associatedDisease> '
            '<http://ex/diseasome/Disease/1> .\n'
        )
        lake_a, lake_b = build_lake(), build_lake(extra)
        answers_a, __ = FederatedEngine(lake_a, exec="batch").run(
            TINY_CROSS_SOURCE_QUERY, seed=3
        )
        answers_b, __ = FederatedEngine(lake_b, exec="batch").run(
            TINY_CROSS_SOURCE_QUERY, seed=3
        )
        assert any("Gene/99" in str(answer["g"]) for answer in answers_b)
        assert len(answers_b) == len(answers_a) + 1

    def test_data_mutation_invalidates_replay(self):
        lake = build_lake()
        engine = FederatedEngine(lake, exec="batch")
        before, __ = engine.run(TINY_CROSS_SOURCE_QUERY, seed=3)
        database = lake.source("diseasome").database
        disease = next(
            iter(database.execute("SELECT associateddisease FROM gene").as_dicts())
        )["associateddisease"]
        # KRAS matches a Homo sapiens probeset, so the new gene must
        # surface as one extra join answer on the very next run.
        database.table("gene").insert(
            {"id": 999, "genesymbol": "KRAS", "associateddisease": disease}
        )
        after = assert_identical(lake, TINY_CROSS_SOURCE_QUERY)
        assert len(after) == len(before) + 1

    def test_observed_runs_bypass_the_memo(self):
        lake = build_lake()
        _JOIN_STREAM_MEMO.clear()
        engine = FederatedEngine(lake, exec="batch")
        __, __, observation = engine.observe(TINY_CROSS_SOURCE_QUERY, seed=3)
        assert not _JOIN_STREAM_MEMO
        # and the observed run still produced per-operator profiles
        report = observation.profile_report()
        assert any(entry.rows_out for entry in report.entries)


class TestBatchSizeKnob:
    def test_rejects_non_positive(self, tiny_lake):
        with pytest.raises(ValueError, match="batch size"):
            FederatedEngine(tiny_lake, exec="batch", batch_size=0)

    def test_env_override(self, tiny_lake, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_SIZE", "17")
        engine = FederatedEngine(tiny_lake, exec="batch")
        assert engine.batch_size == 17

    def test_env_override_must_be_integer(self, tiny_lake, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_SIZE", "lots")
        with pytest.raises(ValueError, match="REPRO_BATCH_SIZE"):
            FederatedEngine(tiny_lake, exec="batch")

    def test_explicit_argument_beats_env(self, tiny_lake, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_SIZE", "17")
        engine = FederatedEngine(tiny_lake, exec="batch", batch_size=64)
        assert engine.batch_size == 64


class TestCompiledFilters:
    """compile_holds must be decision-identical to the holds interpreter."""

    OPERATORS = ("=", "!=", "<", ">", "<=", ">=")

    def _random_term(self, rng: random.Random):
        kind = rng.randrange(5)
        if kind == 0:
            return Literal(str(rng.randrange(50)), datatype="http://www.w3.org/2001/XMLSchema#integer")
        if kind == 1:
            return Literal(f"s{rng.randrange(10)}")
        if kind == 2:
            return IRI(f"http://ex/{rng.randrange(10)}")
        if kind == 3:
            return Literal("true" if rng.random() < 0.5 else "false", datatype="http://www.w3.org/2001/XMLSchema#boolean")
        # invalid numeric literal: evaluation errors must reject the row
        return Literal("not-a-number", datatype="http://www.w3.org/2001/XMLSchema#integer")

    def test_differential_against_interpreter(self):
        rng = random.Random(20260808)
        checked = 0
        for __ in range(500):
            query = parse_query(
                "PREFIX v: <http://ex/> SELECT ?x WHERE { ?x v:p ?y . }"
            )
            variable = VariableExpr(query.where.patterns[0].object)
            term = TermExpr(self._random_term(rng))
            operator = rng.choice(self.OPERATORS)
            flipped = rng.random() < 0.5
            expression = BinaryOp(
                operator,
                term if flipped else variable,
                variable if flipped else term,
            )
            compiled = compile_holds(expression)
            solution = {}
            if rng.random() < 0.9:
                solution["y"] = self._random_term(rng)
            assert compiled(solution) == holds(expression, solution)
            checked += 1
        assert checked == 500
