"""Tests for the dependent (bound) join and restricted translations."""

import pytest

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.benchmark import same_answers
from repro.core import JoinStrategy, decompose_star_shaped
from repro.exceptions import TranslationError
from repro.federation import DependentJoin, RunContext, ServiceNode
from repro.federation.operators import SymmetricHashJoin
from repro.mapping import normalize_graph, translate_stars
from repro.rdf import IRI, Literal
from repro.sparql import parse_query

from ..conftest import TINY_DISEASOME, TINY_QUERY, make_tiny_graph

PREFIX = "PREFIX v: <http://ex/vocab#>\n"
GENE = IRI("http://ex/vocab#Gene")


@pytest.fixture(scope="module")
def prepared():
    db, mapping, __ = normalize_graph("tiny", make_tiny_graph(TINY_DISEASOME))
    return db, mapping


def gene_translation(prepared):
    db, mapping = prepared
    star = decompose_star_shaped(
        parse_query(PREFIX + "SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?s . }")
    ).subqueries[0]
    return db, translate_stars([(star, mapping.class_mapping(GENE))])


class TestRestrictedTranslation:
    def test_literal_in_restriction(self, prepared):
        db, translation = gene_translation(prepared)
        restricted = translation.restricted("s", [Literal("BRCA1"), Literal("TP53")])
        assert "IN ('BRCA1', 'TP53')" in restricted.sql
        rows = db.query(restricted.statement).fetchall()
        assert len(rows) == 2

    def test_iri_keys_extracted(self, prepared):
        db, translation = gene_translation(prepared)
        restricted = translation.restricted(
            "g", [IRI("http://ex/diseasome/Gene/10"), IRI("http://ex/diseasome/Gene/12")]
        )
        assert "IN (10, 12)" in restricted.sql
        assert len(db.query(restricted.statement).fetchall()) == 2

    def test_foreign_iris_dropped(self, prepared):
        db, translation = gene_translation(prepared)
        restricted = translation.restricted(
            "g", [IRI("http://other/space/1"), IRI("http://ex/diseasome/Gene/10")]
        )
        assert "IN (10)" in restricted.sql

    def test_all_foreign_terms_yield_empty(self, prepared):
        db, translation = gene_translation(prepared)
        restricted = translation.restricted("g", [IRI("http://other/space/1")])
        assert db.query(restricted.statement).fetchall() == []

    def test_unknown_variable_rejected(self, prepared):
        __, translation = gene_translation(prepared)
        with pytest.raises(TranslationError):
            translation.restricted("nope", [Literal("x")])

    def test_original_translation_unchanged(self, prepared):
        db, translation = gene_translation(prepared)
        before = translation.sql
        translation.restricted("s", [Literal("BRCA1")])
        assert translation.sql == before


class TestDependentJoinOperator:
    def make_inner(self, prepared) -> ServiceNode:
        from repro.federation import RelationalSource, SQLWrapper

        db, translation = gene_translation(prepared)
        __, mapping = prepared
        source = RelationalSource(source_id="tiny", database=db, mapping=mapping)
        wrapper = SQLWrapper(source)
        return ServiceNode(
            source_id="tiny",
            description="SQL",
            runner=lambda context: wrapper.execute(translation, context),
            restricted_runner=lambda context, variable, terms: wrapper.execute(
                translation.restricted(variable, terms), context
            ),
        )

    def outer_static(self, symbols):
        from tests.federation.test_operators import Static

        return Static([{"s": Literal(symbol)} for symbol in symbols])

    def test_joins_correctly(self, prepared):
        inner = self.make_inner(prepared)
        join = DependentJoin(self.outer_static(["BRCA1", "KRAS"]), inner, "s")
        rows = list(join.execute(RunContext(seed=1)))
        assert len(rows) == 2
        assert {row["s"].lexical for row in rows} == {"BRCA1", "KRAS"}

    def test_empty_outer(self, prepared):
        inner = self.make_inner(prepared)
        join = DependentJoin(self.outer_static([]), inner, "s")
        assert list(join.execute(RunContext(seed=1))) == []

    def test_blocks_partition_outer(self, prepared):
        inner = self.make_inner(prepared)
        join = DependentJoin(
            self.outer_static(["BRCA1", "TP53", "KRAS", "INS"]), inner, "s", block_size=2
        )
        context = RunContext(seed=1)
        rows = list(join.execute(context))
        assert len(rows) == 4
        # two blocks -> two restricted requests
        assert context.stats.source("tiny").requests == 2

    def test_duplicate_outer_terms_multiply(self, prepared):
        inner = self.make_inner(prepared)
        join = DependentJoin(self.outer_static(["BRCA1", "BRCA1"]), inner, "s")
        rows = list(join.execute(RunContext(seed=1)))
        assert len(rows) == 2

    def test_matches_symmetric_hash_join(self, prepared):
        inner_dep = self.make_inner(prepared)
        inner_shj = self.make_inner(prepared)
        symbols = ["BRCA1", "TP53", "NOPE", "KRAS", "INS", "BRCA1"]
        dep_rows = list(
            DependentJoin(self.outer_static(symbols), inner_dep, "s", block_size=2).execute(
                RunContext(seed=1)
            )
        )
        shj_rows = list(
            SymmetricHashJoin(self.outer_static(symbols), inner_shj, ("s",)).execute(
                RunContext(seed=1)
            )
        )
        assert same_answers(dep_rows, shj_rows)


class TestPlannerIntegration:
    def test_policy_produces_dependent_join(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, policy=PlanPolicy.dependent_join())
        query = PREFIX + (
            "SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?sym . "
            "?p a v:Probeset ; v:symbol ?sym . }"
        )
        plan = engine.plan(query)
        assert "DependentJoin" in plan.explain()

    def test_same_answers_as_symmetric(self, tiny_lake):
        query = PREFIX + (
            "SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?sym . "
            "?p a v:Probeset ; v:symbol ?sym ; v:scientificName ?sp . }"
        )
        dep, __ = FederatedEngine(tiny_lake, policy=PlanPolicy.dependent_join()).run(
            query, seed=1
        )
        shj, __ = FederatedEngine(
            tiny_lake, policy=PlanPolicy.physical_design_aware()
        ).run(query, seed=1)
        assert same_answers(dep, shj)
        assert len(dep) == 3

    def test_falls_back_without_restriction(self, tiny_lake, affymetrix_graph):
        # RDF services are not restrictable: the planner must fall back.
        from repro.datalake import SemanticDataLake

        lake = SemanticDataLake("mixed")
        lake.add_graph_as_relational(
            "diseasome", make_tiny_graph(TINY_DISEASOME)
        )
        lake.add_rdf_source("affymetrix", affymetrix_graph)
        engine = FederatedEngine(lake, policy=PlanPolicy.dependent_join())
        query = PREFIX + (
            "SELECT * WHERE { ?p a v:Probeset ; v:symbol ?sym . "
            "?g a v:Gene ; v:geneSymbol ?sym ; v:associatedDisease ?d . "
            "?d a v:Disease ; v:diseaseName ?dn . }"
        )
        plan = engine.plan(query)
        explained = plan.explain()
        # at least one join must have fallen back (depending on order the
        # RDF leaf may be outer); answers still correct
        answers, __ = engine.run(query, seed=1)
        assert len(answers) == 3

    def test_dependent_join_over_rdf_source(self, affymetrix_graph):
        """RDF leaves are restrictable too (VALUES-style filtering)."""
        from repro.datalake import SemanticDataLake
        from tests.conftest import TINY_DISEASOME, make_tiny_graph

        lake = SemanticDataLake("mixed")
        lake.add_graph_as_relational("diseasome", make_tiny_graph(TINY_DISEASOME))
        lake.add_rdf_source("affymetrix", affymetrix_graph)
        engine = FederatedEngine(lake, policy=PlanPolicy.dependent_join())
        query = PREFIX + (
            'SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?sym ; '
            'v:associatedDisease <http://ex/diseasome/Disease/1> . '
            "?p a v:Probeset ; v:symbol ?sym . }"
        )
        plan = engine.plan(query)
        assert "DependentJoin" in plan.explain()
        answers, stats = engine.run(query, seed=1)
        assert {answer["sym"].lexical for answer in answers} == {"BRCA1", "TP53"}
        # the probeset star (smaller estimate) is the outer; the diseasome
        # leaf is restricted to the three probed symbols and only ships the
        # two genes of Disease/1 carrying them
        assert stats.source("affymetrix").answers == 3
        assert stats.source("diseasome").answers == 2

    def test_restriction_uses_index(self, tiny_lake):
        """The pushed IN list is answered via the index, not a scan."""
        source = tiny_lake.source("affymetrix")
        plan = source.database.explain(
            "SELECT id FROM probeset WHERE symbol IN ('BRCA1', 'TP53')"
        )
        assert "IndexScan" in plan
        assert "IN (2 keys)" in plan
