"""Tests for source wrappers and the run context / statistics."""

import pytest

from repro.core import decompose_star_shaped
from repro.federation import RDFSource, RelationalSource, RunContext, SPARQLWrapper, SQLWrapper
from repro.federation.answers import ExecutionStats
from repro.mapping import normalize_graph
from repro.network import FixedDelay, NetworkSetting, VirtualClock
from repro.rdf import IRI
from repro.sparql import parse_query

from ..conftest import TINY_AFFYMETRIX, TINY_DISEASOME, make_tiny_graph

PREFIX = "PREFIX v: <http://ex/vocab#>\n"
GENE = IRI("http://ex/vocab#Gene")


@pytest.fixture(scope="module")
def relational_source() -> RelationalSource:
    db, mapping, __ = normalize_graph("diseasome", make_tiny_graph(TINY_DISEASOME))
    return RelationalSource(source_id="diseasome", database=db, mapping=mapping)


def star(text: str):
    return decompose_star_shaped(parse_query(PREFIX + text)).subqueries[0]


class TestSQLWrapper:
    def test_streams_solutions(self, relational_source):
        wrapper = SQLWrapper(relational_source)
        the_star = star("SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?s . }")
        translation = wrapper.translate([(the_star, relational_source.mapping.class_mapping(GENE))])
        context = RunContext(seed=1)
        solutions = list(wrapper.execute(translation, context))
        assert len(solutions) == 4
        assert all(isinstance(solution["g"], IRI) for solution in solutions)

    def test_charges_source_time_and_messages(self, relational_source):
        wrapper = SQLWrapper(relational_source)
        the_star = star("SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?s . }")
        translation = wrapper.translate([(the_star, relational_source.mapping.class_mapping(GENE))])
        context = RunContext(seed=1)
        list(wrapper.execute(translation, context))
        source_stats = context.stats.source("diseasome")
        assert source_stats.requests == 1
        assert source_stats.answers == 4
        assert source_stats.virtual_cost > 0
        assert context.now() > 0

    def test_network_delay_applied_per_answer(self, relational_source):
        wrapper = SQLWrapper(relational_source)
        the_star = star("SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?s . }")
        translation = wrapper.translate([(the_star, relational_source.mapping.class_mapping(GENE))])
        setting = NetworkSetting("fixed", FixedDelay(0.01))
        context = RunContext(network=setting, seed=1)
        list(wrapper.execute(translation, context))
        # 1 request + 4 answers, each paying >= 10ms
        assert context.now() >= 0.05

    def test_time_advances_between_answers(self, relational_source):
        wrapper = SQLWrapper(relational_source)
        the_star = star("SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?s . }")
        translation = wrapper.translate([(the_star, relational_source.mapping.class_mapping(GENE))])
        setting = NetworkSetting("fixed", FixedDelay(0.01))
        context = RunContext(network=setting, seed=1)
        timestamps = []
        for __ in wrapper.execute(translation, context):
            timestamps.append(context.now())
        assert timestamps == sorted(timestamps)
        assert len(set(timestamps)) == len(timestamps)


class TestSPARQLWrapper:
    def test_streams_solutions(self):
        graph = make_tiny_graph(TINY_AFFYMETRIX)
        source = RDFSource(source_id="affymetrix", graph=graph)
        wrapper = SPARQLWrapper(source)
        the_star = star("SELECT * WHERE { ?p a v:Probeset ; v:symbol ?s . }")
        context = RunContext(seed=1)
        solutions = list(wrapper.execute(the_star, context))
        assert len(solutions) == 3
        assert context.stats.source("affymetrix").answers == 3

    def test_pushed_filters_applied(self):
        graph = make_tiny_graph(TINY_AFFYMETRIX)
        source = RDFSource(source_id="affymetrix", graph=graph)
        wrapper = SPARQLWrapper(source)
        the_star = star(
            'SELECT * WHERE { ?p a v:Probeset ; v:scientificName ?sp . '
            'FILTER(CONTAINS(?sp, "Homo")) }'
        )
        context = RunContext(seed=1)
        solutions = list(wrapper.execute(the_star, context, pushed_filters=the_star.filters))
        assert len(solutions) == 2


class TestRunContext:
    def test_default_virtual_clock(self):
        context = RunContext()
        assert context.now() == 0.0

    def test_charge_engine_accumulates(self):
        context = RunContext()
        context.charge_engine(0.5)
        context.charge_engine(0.25)
        assert context.stats.engine_cost == pytest.approx(0.75)
        assert context.now() == pytest.approx(0.75)

    def test_charge_message_counts(self):
        context = RunContext(seed=1)
        context.charge_message("src")
        assert context.stats.messages == 1
        assert context.stats.source("src").answers == 1

    def test_deterministic_with_seed(self):
        setting = NetworkSetting.gamma2()
        first = RunContext(network=setting, seed=9)
        second = RunContext(network=setting, seed=9)
        for __ in range(5):
            first.charge_message("s")
            second.charge_message("s")
        assert first.now() == pytest.approx(second.now())


class TestExecutionStats:
    def test_record_answer_builds_trace(self):
        stats = ExecutionStats()
        stats.record_answer(0.5)
        stats.record_answer(1.0)
        assert stats.answers == 2
        assert stats.time_to_first_answer == 0.5
        assert stats.trace == [(0.5, 1), (1.0, 2)]

    def test_answers_at(self):
        stats = ExecutionStats()
        for when in (0.5, 1.0, 2.0):
            stats.record_answer(when)
        assert stats.answers_at(0.4) == 0
        assert stats.answers_at(1.0) == 2
        assert stats.answers_at(5.0) == 3

    def test_trace_area(self):
        stats = ExecutionStats()
        stats.record_answer(1.0)
        stats.execution_time = 2.0
        # 1 answer from t=1 to t=2
        assert stats.trace_area() == pytest.approx(1.0)

    def test_throughput(self):
        stats = ExecutionStats()
        stats.record_answer(0.5)
        stats.record_answer(1.0)
        stats.execution_time = 2.0
        assert stats.throughput == pytest.approx(1.0)
