"""Property-based tests (hypothesis) on core invariants.

Each property targets an invariant the whole reproduction leans on:
N-Triples round-trips, index-vs-scan result equivalence, symmetric-hash-join
correctness against a reference nested-loop join, decomposition soundness,
and plan-policy answer equivalence.
"""

from __future__ import annotations

import string

from hypothesis import given, strategies as st

from repro.benchmark import same_answers
from repro.core import decompose_star_shaped, decompose_triple_wise, validate_decomposition
from repro.federation import RunContext
from repro.federation.operators import SymmetricHashJoin
from repro.rdf import (
    BNode,
    Graph,
    IRI,
    Literal,
    Triple,
    XSD_INTEGER,
    parse,
    serialize,
)
from repro.relational import Column, Database, PlannerOptions, SQLType
from repro.relational.executor import like_to_regex
from repro.sparql import parse_query
from repro.sparql.algebra import GroupGraphPattern, TriplePattern
from repro.rdf.terms import Variable

# -- strategies --------------------------------------------------------------

iri_strategy = st.builds(
    lambda path: IRI("http://ex.org/" + path),
    st.text(alphabet=string.ascii_letters + string.digits + "/_-", min_size=1, max_size=20),
)
safe_text = st.text(min_size=0, max_size=30).filter(lambda s: "\r" not in s)
literal_strategy = st.one_of(
    st.builds(Literal, safe_text),
    st.builds(lambda n: Literal(str(n), XSD_INTEGER), st.integers(-1000, 1000)),
    st.builds(
        lambda s, lang: Literal(s, language=lang),
        safe_text,
        st.sampled_from(["en", "de", "fr-CA"]),
    ),
)
bnode_strategy = st.builds(
    BNode, st.text(alphabet=string.ascii_letters + string.digits, min_size=1, max_size=8)
)
subject_strategy = st.one_of(iri_strategy, bnode_strategy)
object_strategy = st.one_of(iri_strategy, bnode_strategy, literal_strategy)
triple_strategy = st.builds(Triple, subject_strategy, iri_strategy, object_strategy)


class TestNTriplesRoundTrip:
    @given(st.lists(triple_strategy, max_size=30))
    def test_serialize_parse_identity(self, triples):
        assert list(parse(serialize(triples))) == triples

    @given(st.lists(triple_strategy, max_size=30))
    def test_graph_membership_after_roundtrip(self, triples):
        graph = Graph()
        graph.add_all(triples)
        rebuilt = Graph()
        rebuilt.add_all(parse(serialize(graph)))
        assert set(graph) == set(rebuilt)


class TestIndexScanEquivalence:
    @given(
        values=st.lists(st.integers(0, 50), min_size=1, max_size=120),
        needle=st.integers(0, 50),
    )
    def test_equality_lookup_matches_scan(self, values, needle):
        indexed = Database("ix")
        plain = Database("scan", PlannerOptions(allow_index_scans=False))
        indexed.create_table(
            "t",
            [Column("id", SQLType.INTEGER, nullable=False), Column("v", SQLType.INTEGER)],
            primary_key=("id",),
        )
        for row_id, value in enumerate(values):
            indexed.insert("t", {"id": row_id, "v": value})
        indexed.create_index("t", ["v"])
        plain._tables = indexed._tables  # same storage, different planner
        query = f"SELECT id FROM t WHERE v = {needle}"
        assert sorted(indexed.query(query).fetchall()) == sorted(plain.query(query).fetchall())

    @given(
        values=st.lists(st.integers(-20, 20), min_size=1, max_size=100),
        low=st.integers(-20, 20),
    )
    def test_range_lookup_matches_scan(self, values, low):
        indexed = Database("ix")
        plain = Database("scan", PlannerOptions(allow_index_scans=False))
        indexed.create_table(
            "t",
            [Column("id", SQLType.INTEGER, nullable=False), Column("v", SQLType.INTEGER)],
            primary_key=("id",),
        )
        for row_id, value in enumerate(values):
            indexed.insert("t", {"id": row_id, "v": value})
        indexed.create_index("t", ["v"])
        plain._tables = indexed._tables
        query = f"SELECT id FROM t WHERE v >= {low}"
        assert sorted(indexed.query(query).fetchall()) == sorted(plain.query(query).fetchall())


class TestSymmetricHashJoinCorrectness:
    solutions = st.lists(
        st.fixed_dictionaries(
            {
                "k": st.integers(0, 5).map(lambda n: Literal(str(n), XSD_INTEGER)),
                "v": st.integers(0, 3).map(lambda n: Literal(str(n), XSD_INTEGER)),
            }
        ),
        max_size=25,
    )

    @given(left=solutions, right=solutions)
    def test_matches_nested_loop_reference(self, left, right):
        from tests.federation.test_operators import Static

        join = SymmetricHashJoin(Static(left), Static(right), ("k",))
        produced = list(join.execute(RunContext(seed=1)))
        reference = []
        for l in left:
            for r in right:
                if l["k"] == r["k"] and l["v"] == r["v"]:
                    reference.append({**l, **r})
                elif l["k"] == r["k"] and l["v"] != r["v"]:
                    pass  # incompatible on shared non-join var v
        def key(solution):
            return tuple(sorted((k, v.n3()) for k, v in solution.items()))
        assert sorted(map(key, produced)) == sorted(map(key, reference))


class TestDecompositionSoundness:
    @st.composite
    def bgp(draw):
        subjects = draw(
            st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=8)
        )
        patterns = []
        for index, subject in enumerate(subjects):
            patterns.append(
                TriplePattern(
                    Variable(subject),
                    IRI(f"http://ex/p{draw(st.integers(0, 3))}"),
                    Variable(f"o{index}"),
                )
            )
        return GroupGraphPattern(patterns=patterns)

    @given(group=bgp())
    def test_star_decomposition_sound(self, group):
        decomposition = decompose_star_shaped(group)
        assert validate_decomposition(group, decomposition)
        subjects = {star.subject for star in decomposition.subqueries}
        assert len(subjects) == len(decomposition.subqueries)  # one star per subject

    @given(group=bgp())
    def test_triple_decomposition_sound(self, group):
        decomposition = decompose_triple_wise(group)
        assert validate_decomposition(group, decomposition)
        assert len(decomposition.subqueries) == len(group.patterns)


class TestLikeRegexProperties:
    @given(value=safe_text)
    def test_infix_like_equals_contains(self, value):
        needle = "can"
        regex = like_to_regex(f"%{needle}%")
        assert bool(regex.match(value)) == (needle in value)

    @given(value=safe_text, prefix=st.text(string.ascii_lowercase, max_size=5))
    def test_prefix_like_equals_startswith(self, value, prefix):
        regex = like_to_regex(f"{prefix}%")
        assert bool(regex.match(value)) == value.startswith(prefix)


class TestPolicyEquivalenceProperty:
    """Aware and unaware plans must agree on answers for arbitrary
    star-join queries over the tiny lake fixture's vocabulary."""

    @given(
        symbol=st.sampled_from(["BRCA1", "TP53", "KRAS", "INS", "NOPE"]),
        use_filter=st.booleans(),
        distinct=st.booleans(),
    )
    def test_equivalence(self, symbol, use_filter, distinct):
        # Build lake inline: hypothesis forbids function-scoped fixtures.
        from repro import FederatedEngine, PlanPolicy, SemanticDataLake
        from tests.conftest import TINY_DISEASOME, make_tiny_graph

        lake = SemanticDataLake("prop")
        lake.add_graph_as_relational("diseasome", make_tiny_graph(TINY_DISEASOME))
        lake.create_index("diseasome", "gene", ["associateddisease"])
        filter_clause = f'FILTER(?sym = "{symbol}")' if use_filter else ""
        query = f"""
        PREFIX v: <http://ex/vocab#>
        SELECT {"DISTINCT" if distinct else ""} ?sym ?dn WHERE {{
          ?g a v:Gene ; v:geneSymbol ?sym ; v:associatedDisease ?d .
          ?d a v:Disease ; v:diseaseName ?dn .
          {filter_clause}
        }}
        """
        aware, __ = FederatedEngine(lake, policy=PlanPolicy.physical_design_aware()).run(
            query, seed=1
        )
        unaware, __ = FederatedEngine(
            lake, policy=PlanPolicy.physical_design_unaware()
        ).run(query, seed=1)
        assert same_answers(aware, unaware)
