"""Tests for SQL dump/load and lake persistence."""

import pytest

from repro import FederatedEngine
from repro.benchmark import same_answers
from repro.datalake.persistence import load_lake, save_lake
from repro.exceptions import CatalogError
from repro.relational import Database
from repro.relational.dump import dump_sql, load_sql, split_statements

from ..conftest import TINY_QUERY


class TestSplitStatements:
    def test_simple(self):
        assert list(split_statements("SELECT 1; SELECT 2;")) == ["SELECT 1", "SELECT 2"]

    def test_semicolon_inside_string(self):
        statements = list(split_statements("INSERT INTO t VALUES ('a;b');"))
        assert statements == ["INSERT INTO t VALUES ('a;b')"]

    def test_escaped_quote_inside_string(self):
        statements = list(split_statements("INSERT INTO t VALUES ('O''Brien; x');"))
        assert statements == ["INSERT INTO t VALUES ('O''Brien; x')"]

    def test_comments_skipped(self):
        statements = list(split_statements("-- note; with ;\nSELECT 1;"))
        assert statements == ["SELECT 1"]

    def test_trailing_statement_without_semicolon(self):
        assert list(split_statements("SELECT 1")) == ["SELECT 1"]


class TestDumpLoad:
    def make_database(self) -> Database:
        database = Database("src")
        database.execute(
            "CREATE TABLE disease (id INTEGER PRIMARY KEY, name TEXT NOT NULL)"
        )
        database.execute(
            "CREATE TABLE gene (id INTEGER PRIMARY KEY, symbol TEXT, disease_id INTEGER, "
            "FOREIGN KEY (disease_id) REFERENCES disease (id))"
        )
        database.execute("CREATE INDEX ix_gene_symbol ON gene (symbol)")
        database.execute("INSERT INTO disease VALUES (1, 'breast cancer'), (2, 'flu; severe')")
        database.execute("INSERT INTO gene VALUES (10, 'BRCA1', 1), (11, NULL, 2)")
        return database

    def test_roundtrip_preserves_rows(self):
        original = self.make_database()
        restored = load_sql(dump_sql(original))
        for table in original.table_names:
            assert sorted(
                original.query(f"SELECT * FROM {table}").fetchall()
            ) == sorted(restored.query(f"SELECT * FROM {table}").fetchall())

    def test_roundtrip_preserves_schema(self):
        restored = load_sql(dump_sql(self.make_database()))
        schema = restored.table("gene").schema
        assert schema.primary_key == ("id",)
        assert schema.foreign_key_for("disease_id").referenced_table == "disease"

    def test_roundtrip_preserves_indexes(self):
        restored = load_sql(dump_sql(self.make_database()))
        assert restored.has_index_on("gene", "symbol")
        assert restored.has_index_on("gene", "id")

    def test_tricky_values_survive(self):
        database = Database("tricky")
        database.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT, r REAL, b BOOLEAN)")
        database.insert("t", {"id": 1, "v": "it's; a 'test'", "r": 2.5, "b": True})
        database.insert("t", {"id": 2, "v": None, "r": None, "b": False})
        restored = load_sql(dump_sql(database))
        assert sorted(restored.query("SELECT * FROM t").fetchall()) == sorted(
            database.query("SELECT * FROM t").fetchall()
        )

    def test_dump_is_stable(self):
        database = self.make_database()
        assert dump_sql(database) == dump_sql(database)


class TestLakePersistence:
    def test_roundtrip_answers_identical(self, tiny_lake, tmp_path):
        save_lake(tiny_lake, tmp_path / "lake")
        restored = load_lake(tmp_path / "lake")
        original_answers, __ = FederatedEngine(tiny_lake).run(TINY_QUERY, seed=1)
        restored_answers, __ = FederatedEngine(restored).run(TINY_QUERY, seed=1)
        assert same_answers(original_answers, restored_answers)

    def test_physical_design_restored(self, tiny_lake, tmp_path):
        save_lake(tiny_lake, tmp_path / "lake")
        restored = load_lake(tmp_path / "lake")
        assert restored.physical_catalog.is_indexed(
            "diseasome", "gene", "associateddisease"
        )

    def test_rdf_member_restored(self, diseasome_graph, affymetrix_graph, tmp_path):
        from repro.datalake import SemanticDataLake

        lake = SemanticDataLake("mixed")
        lake.add_graph_as_relational("diseasome", diseasome_graph)
        lake.add_rdf_source("affymetrix", affymetrix_graph)
        save_lake(lake, tmp_path / "lake")
        restored = load_lake(tmp_path / "lake")
        source = restored.source("affymetrix")
        assert source.kind == "rdf"
        assert len(source.graph) == len(affymetrix_graph)

    def test_manifest_missing(self, tmp_path):
        with pytest.raises(CatalogError):
            load_lake(tmp_path / "nothing")

    def test_mappings_restored(self, tiny_lake, tmp_path):
        save_lake(tiny_lake, tmp_path / "lake")
        restored = load_lake(tmp_path / "lake")
        original = tiny_lake.source("diseasome").mapping
        loaded = restored.source("diseasome").mapping
        assert set(original.classes) == set(loaded.classes)
        for class_iri in original.classes:
            assert (
                original.classes[class_iri].subject_template
                == loaded.classes[class_iri].subject_template
            )
