"""End-to-end integration tests over the small LSLOD lake.

These tests assert the *directional* findings of the paper:

* both QEP types produce identical answer sets (soundness);
* Q2/Q5: the aware plan (Heuristic 1 merges) is faster;
* Q3: the aware plan (indexed selective filter pushed down) is faster at
  every network setting — the Heuristic 2 contradiction;
* Q1: pushing the indexed-but-infix string filter down *loses* on a perfect
  network — the Heuristic 2 support case;
* network delays hurt the unaware plans more.
"""

import pytest

from repro import FederatedEngine, PlanPolicy, NetworkSetting
from repro.benchmark import same_answers
from repro.datasets import BENCHMARK_QUERIES, GRID_QUERIES

AWARE = PlanPolicy.physical_design_aware()
UNAWARE = PlanPolicy.physical_design_unaware()


def run(lake, query_name, policy, network, seed=5):
    engine = FederatedEngine(lake, policy=policy, network=network)
    return engine.run(BENCHMARK_QUERIES[query_name].text, seed=seed)


class TestAnswerSoundness:
    @pytest.mark.parametrize("query_name", GRID_QUERIES)
    def test_policies_agree(self, small_lslod_lake, query_name):
        aware_answers, __ = run(small_lslod_lake, query_name, AWARE, NetworkSetting.no_delay())
        unaware_answers, __ = run(
            small_lslod_lake, query_name, UNAWARE, NetworkSetting.no_delay()
        )
        assert len(aware_answers) > 0, f"{query_name} returned no answers"
        assert same_answers(aware_answers, unaware_answers)

    @pytest.mark.parametrize("query_name", GRID_QUERIES)
    def test_network_does_not_change_answers(self, small_lslod_lake, query_name):
        fast, __ = run(small_lslod_lake, query_name, AWARE, NetworkSetting.no_delay())
        slow, __ = run(small_lslod_lake, query_name, AWARE, NetworkSetting.gamma3())
        assert same_answers(fast, slow)


class TestHeuristic1Findings:
    def test_q2_aware_faster(self, small_lslod_lake):
        __, unaware = run(small_lslod_lake, "Q2", UNAWARE, NetworkSetting.gamma2())
        __, aware = run(small_lslod_lake, "Q2", AWARE, NetworkSetting.gamma2())
        assert aware.execution_time < unaware.execution_time

    def test_q2_merge_reduces_messages(self, small_lslod_lake):
        __, unaware = run(small_lslod_lake, "Q2", UNAWARE, NetworkSetting.no_delay())
        __, aware = run(small_lslod_lake, "Q2", AWARE, NetworkSetting.no_delay())
        assert aware.messages < unaware.messages

    def test_q2_speedup_at_least_paper_factor(self, small_lslod_lake):
        """The paper reports the optimized Q2 'approx. halves' execution time."""
        __, unaware = run(small_lslod_lake, "Q2", UNAWARE, NetworkSetting.gamma1())
        __, aware = run(small_lslod_lake, "Q2", AWARE, NetworkSetting.gamma1())
        assert unaware.execution_time / aware.execution_time >= 2.0

    def test_q5_aware_faster(self, small_lslod_lake):
        __, unaware = run(small_lslod_lake, "Q5", UNAWARE, NetworkSetting.gamma2())
        __, aware = run(small_lslod_lake, "Q5", AWARE, NetworkSetting.gamma2())
        assert aware.execution_time < unaware.execution_time


class TestHeuristic2Findings:
    @pytest.mark.parametrize(
        "network",
        [NetworkSetting.no_delay(), NetworkSetting.gamma1(), NetworkSetting.gamma2(), NetworkSetting.gamma3()],
        ids=["no-delay", "gamma1", "gamma2", "gamma3"],
    )
    def test_q3_aware_wins_everywhere(self, small_lslod_lake, network):
        """Figure 2: the pushed-down selective indexed filter dominates."""
        __, unaware = run(small_lslod_lake, "Q3", UNAWARE, network)
        __, aware = run(small_lslod_lake, "Q3", AWARE, network)
        assert aware.execution_time < unaware.execution_time

    def test_q1_engine_filter_wins_on_fast_network(self, small_lslod_lake):
        """Q1 supports Heuristic 2: at no delay, pushing the infix string
        filter into the RDB costs more than filtering at the engine."""
        __, unaware = run(small_lslod_lake, "Q1", UNAWARE, NetworkSetting.no_delay())
        __, aware = run(small_lslod_lake, "Q1", AWARE, NetworkSetting.no_delay())
        assert unaware.execution_time < aware.execution_time

    def test_q1_pushdown_wins_on_slow_network(self, small_lslod_lake):
        """...but on a slow network the reduced transfer pays off."""
        __, unaware = run(small_lslod_lake, "Q1", UNAWARE, NetworkSetting.gamma3())
        __, aware = run(small_lslod_lake, "Q1", AWARE, NetworkSetting.gamma3())
        assert aware.execution_time < unaware.execution_time

    def test_q3_time_to_first_answer_better_aware(self, small_lslod_lake):
        __, unaware = run(small_lslod_lake, "Q3", UNAWARE, NetworkSetting.gamma2())
        __, aware = run(small_lslod_lake, "Q3", AWARE, NetworkSetting.gamma2())
        assert aware.time_to_first_answer <= unaware.time_to_first_answer


class TestNetworkImpact:
    @pytest.mark.parametrize("query_name", ["Q2", "Q3", "Q5"])
    def test_delays_hurt_unaware_more(self, small_lslod_lake, query_name):
        """The paper: 'the impact of network delays is higher in the case of
        physical-design-unaware query execution plans'."""
        __, unaware_fast = run(small_lslod_lake, query_name, UNAWARE, NetworkSetting.no_delay())
        __, unaware_slow = run(small_lslod_lake, query_name, UNAWARE, NetworkSetting.gamma3())
        __, aware_fast = run(small_lslod_lake, query_name, AWARE, NetworkSetting.no_delay())
        __, aware_slow = run(small_lslod_lake, query_name, AWARE, NetworkSetting.gamma3())
        unaware_penalty = unaware_slow.execution_time - unaware_fast.execution_time
        aware_penalty = aware_slow.execution_time - aware_fast.execution_time
        assert unaware_penalty > aware_penalty

    def test_execution_time_monotone_in_latency(self, small_lslod_lake):
        times = []
        for network in (
            NetworkSetting.no_delay(),
            NetworkSetting.gamma1(),
            NetworkSetting.gamma2(),
            NetworkSetting.gamma3(),
        ):
            __, stats = run(small_lslod_lake, "Q2", UNAWARE, network)
            times.append(stats.execution_time)
        assert times == sorted(times)


class TestHeterogeneity:
    def test_q4_uses_rdf_and_relational_sources(self, small_lslod_lake):
        engine = FederatedEngine(small_lslod_lake, policy=AWARE)
        plan = engine.plan(BENCHMARK_QUERIES["Q4"].text)
        explained = plan.explain()
        assert "SPARQL:" in explained  # KEGG native RDF leaf
        assert "SQL:" in explained

    def test_q4_answers_nonempty(self, small_lslod_lake):
        answers, __ = run(small_lslod_lake, "Q4", AWARE, NetworkSetting.no_delay())
        assert answers


class TestDecompositionAblation:
    def test_triple_wise_same_answers(self, small_lslod_lake):
        star_answers, __ = run(small_lslod_lake, "Q2", AWARE, NetworkSetting.no_delay())
        triple_answers, __ = run(
            small_lslod_lake, "Q2", PlanPolicy.triple_wise(), NetworkSetting.no_delay()
        )
        assert same_answers(star_answers, triple_answers)

    def test_triple_wise_slower(self, small_lslod_lake):
        __, star = run(small_lslod_lake, "Q2", UNAWARE, NetworkSetting.gamma1())
        __, triple = run(
            small_lslod_lake, "Q2", PlanPolicy.triple_wise(), NetworkSetting.gamma1()
        )
        assert star.execution_time < triple.execution_time
