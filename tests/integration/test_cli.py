"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def tiny(tmp_path):
    """Common args for a tiny, fast lake."""
    return ["--scale", "0.05", "--seed", "42"]


class TestDescribe:
    def test_lists_sources_and_catalog(self, capsys, tiny):
        assert main(["describe", *tiny]) == 0
        out = capsys.readouterr().out
        assert "SemanticDataLake" in out
        assert "kegg [rdf]" in out
        assert "index on gene.associateddisease" in out


class TestQuery:
    def test_benchmark_query_by_name(self, capsys, tiny):
        assert main(["query", "Q2", *tiny, "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "answers" in out
        assert "?gene=" in out

    def test_explain_flag(self, capsys, tiny):
        assert main(["query", "Q2", *tiny, "--explain", "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "Plan [Physical-Design-Aware]" in out
        assert "Heuristic 1" in out

    def test_unaware_policy(self, capsys, tiny):
        assert main(["query", "Q2", *tiny, "--policy", "unaware", "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "answers" in out

    def test_inline_sparql(self, capsys, tiny):
        query = (
            "PREFIX diseasome: <http://lslod.repro/diseasome/vocab#> "
            "SELECT ?d WHERE { ?d a diseasome:Disease ; "
            'diseasome:diseaseClass "cancer" . } LIMIT 3'
        )
        assert main(["query", query, *tiny]) == 0
        out = capsys.readouterr().out
        assert "?d=<http://lslod.repro/diseasome/resource/Disease/" in out

    def test_query_from_file(self, capsys, tiny, tmp_path):
        path = tmp_path / "q.rq"
        path.write_text(
            "PREFIX diseasome: <http://lslod.repro/diseasome/vocab#>\n"
            "SELECT ?d WHERE { ?d a diseasome:Disease . } LIMIT 1"
        )
        assert main(["query", f"@{path}", *tiny]) == 0
        assert "1 answers" in capsys.readouterr().out

    def test_limit_truncates(self, capsys, tiny):
        assert main(["query", "Q2", *tiny, "--limit", "1"]) == 0
        assert "more)" in capsys.readouterr().out

    def test_profile_flag(self, capsys, tiny):
        assert main(["query", "Q2", *tiny, "--profile", "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "Profile (virtual execution time" in out
        assert "rows=" in out

    def test_profile_under_event_runtime(self, capsys, tiny):
        assert main(
            ["query", "Q2", *tiny, "--profile", "--runtime", "event", "--limit", "1"]
        ) == 0
        captured = capsys.readouterr()
        assert "Profile (virtual execution time" in captured.out
        assert "always runs sequentially" not in captured.err


class TestExplain:
    def test_text_explain_lists_heuristics(self, capsys, tiny):
        assert main(["explain", "Q1", *tiny, "--network", "gamma2"]) == 0
        out = capsys.readouterr().out
        assert "Explain [Physical-Design-Aware]" in out
        assert "Heuristic 1 (join push-down)" in out
        assert "Heuristic 2 (filter placement)" in out

    def test_json_explain(self, capsys, tiny):
        import json

        assert main(["explain", "Q1", *tiny, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == "Physical-Design-Aware"
        assert isinstance(payload["decisions"], list)

    def test_json_explain_validates_against_schema(self, capsys, tiny):
        import json

        from repro.obs import EXPLAIN_SCHEMA
        from repro.obs.schema import validate_json_schema

        assert main(["explain", "Q2", *tiny, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_json_schema(payload, EXPLAIN_SCHEMA) == []

    def test_analyze_text(self, capsys, tiny):
        assert main(["explain", "Q2", *tiny, "--analyze", "--network", "gamma2"]) == 0
        out = capsys.readouterr().out
        assert "Explain Analyze" in out
        assert "q-error" in out
        assert "Worst-estimated operators" in out

    def test_analyze_json_validates_against_schema(self, capsys, tiny):
        import json

        from repro.obs import ANALYZE_SCHEMA
        from repro.obs.schema import validate_json_schema

        assert main(["explain", "Q2", *tiny, "--analyze", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_json_schema(payload, ANALYZE_SCHEMA) == []
        assert payload["answers"] > 0
        assert payload["operators"]

    def test_analyze_runtime_invariant_numbers(self, capsys, tiny):
        """Cardinalities, estimates and q-errors are fixed by plan + data, so
        the three runtimes must print the very same numbers."""
        import json

        per_runtime = {}
        for runtime in ("sequential", "event", "thread"):
            assert main(
                ["explain", "Q2", *tiny, "--analyze", "--format", "json",
                 "--runtime", runtime]
            ) == 0
            payload = json.loads(capsys.readouterr().out)
            per_runtime[runtime] = (
                payload["answers"],
                [
                    (op["label"], op["actual_rows"], op["estimated_rows"],
                     op["q_error"])
                    for op in payload["operators"]
                ],
            )
        assert per_runtime["sequential"] == per_runtime["event"]
        assert per_runtime["sequential"] == per_runtime["thread"]


class TestScorecard:
    def test_text_report(self, capsys, tiny):
        assert main(
            ["scorecard", *tiny, "--queries", "Q1,Q2", "--networks", "nodelay,gamma3"]
        ) == 0
        out = capsys.readouterr().out
        assert "Plan-quality scorecard" in out
        assert "Heuristic 1 (join push-down)" in out
        assert "Aware vs unaware" in out

    def test_json_report(self, capsys, tiny):
        import json

        assert main(
            ["scorecard", *tiny, "--queries", "Q2", "--networks", "gamma3",
             "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "heuristics" in payload
        assert payload["heuristics"]["H1"]["wins"] >= 1

    def test_unknown_query_rejected(self, capsys, tiny):
        assert main(["scorecard", *tiny, "--queries", "Q9"]) == 2
        assert "unknown queries" in capsys.readouterr().err


class TestBench:
    def test_snapshot_then_check_passes(self, capsys, tiny, tmp_path):
        path = tmp_path / "baseline.json"
        assert main(
            ["bench", "snapshot", *tiny, "--queries", "Q2", "--output", str(path)]
        ) == 0
        assert "grid cells" in capsys.readouterr().out
        assert main(["bench", "check", "--baseline", str(path)]) == 0
        assert "baseline OK" in capsys.readouterr().out

    def test_check_fails_on_injected_regression(self, capsys, tiny, tmp_path):
        import json

        path = tmp_path / "baseline.json"
        assert main(
            ["bench", "snapshot", *tiny, "--queries", "Q2", "--output", str(path)]
        ) == 0
        capsys.readouterr()
        payload = json.loads(path.read_text())
        key = next(iter(payload["cells"]))
        payload["cells"][key]["execution_time"] *= 1.5
        path.write_text(json.dumps(payload))
        report_path = tmp_path / "diff.json"
        assert main(
            ["bench", "check", "--baseline", str(path), "--report", str(report_path)]
        ) == 1
        out = capsys.readouterr().out
        assert "DRIFT" in out
        assert key in out
        diff = json.loads(report_path.read_text())
        assert diff["ok"] is False
        assert diff["diffs"][0]["key"] == key

    def test_check_honors_thresholds(self, capsys, tiny, tmp_path):
        import json

        path = tmp_path / "baseline.json"
        assert main(
            ["bench", "snapshot", *tiny, "--queries", "Q2", "--output", str(path)]
        ) == 0
        payload = json.loads(path.read_text())
        key = next(iter(payload["cells"]))
        payload["cells"][key]["execution_time"] *= 1.05
        path.write_text(json.dumps(payload))
        assert main(["bench", "check", "--baseline", str(path)]) == 1
        capsys.readouterr()
        assert main(
            ["bench", "check", "--baseline", str(path), "--rel-time", "0.10",
             "--rel-dief", "0.10"]
        ) == 0


class TestGrid:
    def test_table_output(self, capsys, tiny):
        assert main(["grid", *tiny, "--queries", "Q2"]) == 0
        out = capsys.readouterr().out
        assert "Execution time" in out
        assert "Speedup" in out

    def test_csv_output(self, capsys, tiny):
        assert main(["grid", *tiny, "--queries", "Q2", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("query,policy,network")
        assert len(out.strip().splitlines()) == 9  # header + 8 cells

    def test_json_output(self, capsys, tiny):
        import json

        assert main(["grid", *tiny, "--queries", "Q2", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 8

    def test_unknown_query_rejected(self, capsys, tiny):
        assert main(["grid", *tiny, "--queries", "Q99"]) == 2
        assert "unknown queries" in capsys.readouterr().err


class TestTrace:
    def test_trace_plot(self, capsys, tiny):
        assert main(["trace", "Q3", *tiny, "--networks", "gamma1"]) == 0
        out = capsys.readouterr().out
        assert "Answer traces" in out
        assert "[*] unaware/gamma1" in out
        assert "[o] aware/gamma1" in out

    def test_unknown_policy(self, capsys, tiny):
        assert main(["trace", "Q3", *tiny, "--policies", "warp"]) == 2

    def test_unknown_network(self, capsys, tiny):
        assert main(["trace", "Q3", *tiny, "--networks", "warp"]) == 2

    def test_chrome_format_validates_and_writes(self, capsys, tiny, tmp_path):
        import json

        out_file = tmp_path / "trace.json"
        assert main(
            [
                "trace", "Q1", *tiny,
                "--networks", "gamma1",
                "--format", "chrome",
                "--validate",
                "--output", str(out_file),
            ]
        ) == 0
        assert "wrote chrome trace" in capsys.readouterr().out
        trace = json.loads(out_file.read_text())
        assert trace["displayTimeUnit"] == "ms"
        # One process per policy/network cell (default: unaware + aware).
        pids = {
            event["pid"]
            for event in trace["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert len(pids) == 2

    def test_chrome_format_to_stdout(self, capsys, tiny):
        import json

        assert main(
            ["trace", "Q1", *tiny, "--networks", "gamma1", "--format", "chrome",
             "--policies", "aware"]
        ) == 0
        trace = json.loads(capsys.readouterr().out)
        assert any(event["ph"] == "X" for event in trace["traceEvents"])

    def test_csv_format_round_trips(self, capsys, tiny):
        from repro.benchmark import TracePlot

        assert main(
            ["trace", "Q1", *tiny, "--networks", "gamma1", "--format", "csv"]
        ) == 0
        out = capsys.readouterr().out
        restored = TracePlot.from_csv(out)
        assert {series.label for series in restored.series} == {
            "unaware/gamma1",
            "aware/gamma1",
        }
