"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def tiny(tmp_path):
    """Common args for a tiny, fast lake."""
    return ["--scale", "0.05", "--seed", "42"]


class TestDescribe:
    def test_lists_sources_and_catalog(self, capsys, tiny):
        assert main(["describe", *tiny]) == 0
        out = capsys.readouterr().out
        assert "SemanticDataLake" in out
        assert "kegg [rdf]" in out
        assert "index on gene.associateddisease" in out


class TestQuery:
    def test_benchmark_query_by_name(self, capsys, tiny):
        assert main(["query", "Q2", *tiny, "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "answers" in out
        assert "?gene=" in out

    def test_explain_flag(self, capsys, tiny):
        assert main(["query", "Q2", *tiny, "--explain", "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "Plan [Physical-Design-Aware]" in out
        assert "Heuristic 1" in out

    def test_unaware_policy(self, capsys, tiny):
        assert main(["query", "Q2", *tiny, "--policy", "unaware", "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "answers" in out

    def test_inline_sparql(self, capsys, tiny):
        query = (
            "PREFIX diseasome: <http://lslod.repro/diseasome/vocab#> "
            "SELECT ?d WHERE { ?d a diseasome:Disease ; "
            'diseasome:diseaseClass "cancer" . } LIMIT 3'
        )
        assert main(["query", query, *tiny]) == 0
        out = capsys.readouterr().out
        assert "?d=<http://lslod.repro/diseasome/resource/Disease/" in out

    def test_query_from_file(self, capsys, tiny, tmp_path):
        path = tmp_path / "q.rq"
        path.write_text(
            "PREFIX diseasome: <http://lslod.repro/diseasome/vocab#>\n"
            "SELECT ?d WHERE { ?d a diseasome:Disease . } LIMIT 1"
        )
        assert main(["query", f"@{path}", *tiny]) == 0
        assert "1 answers" in capsys.readouterr().out

    def test_limit_truncates(self, capsys, tiny):
        assert main(["query", "Q2", *tiny, "--limit", "1"]) == 0
        assert "more)" in capsys.readouterr().out

    def test_profile_flag(self, capsys, tiny):
        assert main(["query", "Q2", *tiny, "--profile", "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "Profile (virtual execution time" in out
        assert "rows=" in out

    def test_profile_under_event_runtime(self, capsys, tiny):
        assert main(
            ["query", "Q2", *tiny, "--profile", "--runtime", "event", "--limit", "1"]
        ) == 0
        captured = capsys.readouterr()
        assert "Profile (virtual execution time" in captured.out
        assert "always runs sequentially" not in captured.err


class TestExplain:
    def test_text_explain_lists_heuristics(self, capsys, tiny):
        assert main(["explain", "Q1", *tiny, "--network", "gamma2"]) == 0
        out = capsys.readouterr().out
        assert "Explain [Physical-Design-Aware]" in out
        assert "Heuristic 1 (join push-down)" in out
        assert "Heuristic 2 (filter placement)" in out

    def test_json_explain(self, capsys, tiny):
        import json

        assert main(["explain", "Q1", *tiny, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["policy"] == "Physical-Design-Aware"
        assert isinstance(payload["decisions"], list)


class TestGrid:
    def test_table_output(self, capsys, tiny):
        assert main(["grid", *tiny, "--queries", "Q2"]) == 0
        out = capsys.readouterr().out
        assert "Execution time" in out
        assert "Speedup" in out

    def test_csv_output(self, capsys, tiny):
        assert main(["grid", *tiny, "--queries", "Q2", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("query,policy,network")
        assert len(out.strip().splitlines()) == 9  # header + 8 cells

    def test_json_output(self, capsys, tiny):
        import json

        assert main(["grid", *tiny, "--queries", "Q2", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 8

    def test_unknown_query_rejected(self, capsys, tiny):
        assert main(["grid", *tiny, "--queries", "Q99"]) == 2
        assert "unknown queries" in capsys.readouterr().err


class TestTrace:
    def test_trace_plot(self, capsys, tiny):
        assert main(["trace", "Q3", *tiny, "--networks", "gamma1"]) == 0
        out = capsys.readouterr().out
        assert "Answer traces" in out
        assert "[*] unaware/gamma1" in out
        assert "[o] aware/gamma1" in out

    def test_unknown_policy(self, capsys, tiny):
        assert main(["trace", "Q3", *tiny, "--policies", "warp"]) == 2

    def test_unknown_network(self, capsys, tiny):
        assert main(["trace", "Q3", *tiny, "--networks", "warp"]) == 2

    def test_chrome_format_validates_and_writes(self, capsys, tiny, tmp_path):
        import json

        out_file = tmp_path / "trace.json"
        assert main(
            [
                "trace", "Q1", *tiny,
                "--networks", "gamma1",
                "--format", "chrome",
                "--validate",
                "--output", str(out_file),
            ]
        ) == 0
        assert "wrote chrome trace" in capsys.readouterr().out
        trace = json.loads(out_file.read_text())
        assert trace["displayTimeUnit"] == "ms"
        # One process per policy/network cell (default: unaware + aware).
        pids = {
            event["pid"]
            for event in trace["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert len(pids) == 2

    def test_chrome_format_to_stdout(self, capsys, tiny):
        import json

        assert main(
            ["trace", "Q1", *tiny, "--networks", "gamma1", "--format", "chrome",
             "--policies", "aware"]
        ) == 0
        trace = json.loads(capsys.readouterr().out)
        assert any(event["ph"] == "X" for event in trace["traceEvents"])

    def test_csv_format_round_trips(self, capsys, tiny):
        from repro.benchmark import TracePlot

        assert main(
            ["trace", "Q1", *tiny, "--networks", "gamma1", "--format", "csv"]
        ) == 0
        out = capsys.readouterr().out
        restored = TracePlot.from_csv(out)
        assert {series.label for series in restored.series} == {
            "unaware/gamma1",
            "aware/gamma1",
        }
