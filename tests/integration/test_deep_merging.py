"""Deeper Heuristic-1 scenarios: chained merges and satellite tables."""

import pytest

from repro import FederatedEngine, PlanPolicy
from repro.benchmark import same_answers
from repro.datalake import SemanticDataLake
from repro.rdf import Graph, IRI, Literal, RDF_TYPE, Triple

VOCAB = "http://ex/chain#"
PREFIX = f"PREFIX c: <{VOCAB}>\n"


def chain_graph() -> Graph:
    """Three linked classes a -> b -> c, each with a literal property."""
    graph = Graph("chain")
    for index in range(1, 9):
        a = IRI(f"http://ex/chain/A/{index}")
        b = IRI(f"http://ex/chain/B/{index % 4 + 1}")
        graph.add(Triple(a, RDF_TYPE, IRI(VOCAB + "A")))
        graph.add(Triple(a, IRI(VOCAB + "aName"), Literal(f"a{index}")))
        graph.add(Triple(a, IRI(VOCAB + "toB"), b))
    for index in range(1, 5):
        b = IRI(f"http://ex/chain/B/{index}")
        c = IRI(f"http://ex/chain/C/{index % 2 + 1}")
        graph.add(Triple(b, RDF_TYPE, IRI(VOCAB + "B")))
        graph.add(Triple(b, IRI(VOCAB + "bName"), Literal(f"b{index}")))
        graph.add(Triple(b, IRI(VOCAB + "toC"), c))
    for index in range(1, 3):
        c = IRI(f"http://ex/chain/C/{index}")
        graph.add(Triple(c, RDF_TYPE, IRI(VOCAB + "C")))
        graph.add(Triple(c, IRI(VOCAB + "cName"), Literal(f"c{index}")))
    return graph


@pytest.fixture
def chain_lake() -> SemanticDataLake:
    lake = SemanticDataLake("chain")
    lake.add_graph_as_relational("chain", chain_graph())
    lake.create_index("chain", "a", ["tob"])
    lake.create_index("chain", "b", ["toc"])
    return lake


THREE_STAR_QUERY = PREFIX + """
SELECT ?an ?bn ?cn WHERE {
  ?a a c:A ; c:aName ?an ; c:toB ?b .
  ?b a c:B ; c:bName ?bn ; c:toC ?c .
  ?c a c:C ; c:cName ?cn .
}
"""


class TestChainedMerge:
    def test_three_stars_merge_into_one_service(self, chain_lake):
        engine = FederatedEngine(chain_lake, policy=PlanPolicy.physical_design_aware())
        plan = engine.plan(THREE_STAR_QUERY)
        explained = plan.explain()
        assert explained.count("Service[") == 1
        assert explained.count("JOIN") == 2
        merged = [decision for decision in plan.merge_decisions if decision.merged]
        assert len(merged) == 2

    def test_chained_merge_answers_match_unaware(self, chain_lake):
        aware, __ = FederatedEngine(
            chain_lake, policy=PlanPolicy.physical_design_aware()
        ).run(THREE_STAR_QUERY, seed=1)
        unaware, __ = FederatedEngine(
            chain_lake, policy=PlanPolicy.physical_design_unaware()
        ).run(THREE_STAR_QUERY, seed=1)
        assert same_answers(aware, unaware)
        assert len(aware) == 8

    def test_table_bound_splits_chain(self, chain_lake):
        policy = PlanPolicy.physical_design_aware().with_(max_merged_tables=2)
        engine = FederatedEngine(chain_lake, policy=policy)
        plan = engine.plan(THREE_STAR_QUERY)
        # only two of the three stars fit in one merged sub-query
        assert plan.explain().count("Service[") == 2

    def test_single_request_issued(self, chain_lake):
        engine = FederatedEngine(chain_lake, policy=PlanPolicy.physical_design_aware())
        __, stats = engine.run(THREE_STAR_QUERY, seed=1)
        assert stats.source("chain").requests == 1


def sider_like_graph() -> Graph:
    """Drugs with multi-valued side effects (satellite table case)."""
    graph = Graph("sider")
    effects = {1: ["rash", "nausea"], 2: ["rash"], 3: ["headache", "rash", "fever"]}
    for key, effect_list in effects.items():
        drug = IRI(f"http://ex/sider/Drug/{key}")
        graph.add(Triple(drug, RDF_TYPE, IRI(VOCAB + "Drug")))
        graph.add(Triple(drug, IRI(VOCAB + "drugName"), Literal(f"drug{key}")))
        for effect in effect_list:
            graph.add(Triple(drug, IRI(VOCAB + "sideEffect"), Literal(effect)))
    return graph


@pytest.fixture
def sider_lake() -> SemanticDataLake:
    lake = SemanticDataLake("sider")
    lake.add_graph_as_relational("sider", sider_like_graph())
    return lake


class TestSatelliteThroughEngine:
    def test_multivalued_predicate_variable(self, sider_lake):
        query = PREFIX + "SELECT ?n ?e WHERE { ?d a c:Drug ; c:drugName ?n ; c:sideEffect ?e . }"
        answers, __ = FederatedEngine(sider_lake).run(query, seed=1)
        assert len(answers) == 6  # 2 + 1 + 3 effect rows

    def test_multivalued_predicate_constant(self, sider_lake):
        query = PREFIX + 'SELECT ?n WHERE { ?d a c:Drug ; c:drugName ?n ; c:sideEffect "rash" . }'
        answers, __ = FederatedEngine(sider_lake).run(query, seed=1)
        assert {answer["n"].lexical for answer in answers} == {"drug1", "drug2", "drug3"}

    def test_filter_on_satellite_value(self, sider_lake):
        query = PREFIX + (
            "SELECT ?n ?e WHERE { ?d a c:Drug ; c:drugName ?n ; c:sideEffect ?e . "
            'FILTER(CONTAINS(?e, "ea")) }'
        )
        answers, __ = FederatedEngine(sider_lake).run(query, seed=1)
        effects = {answer["e"].lexical for answer in answers}
        assert effects == {"nausea", "headache"}

    def test_policies_agree_on_satellites(self, sider_lake):
        query = PREFIX + (
            "SELECT ?n ?e WHERE { ?d a c:Drug ; c:drugName ?n ; c:sideEffect ?e . "
            'FILTER(STRSTARTS(?e, "ra")) }'
        )
        aware, __ = FederatedEngine(
            sider_lake, policy=PlanPolicy.physical_design_aware()
        ).run(query, seed=1)
        unaware, __ = FederatedEngine(
            sider_lake, policy=PlanPolicy.physical_design_unaware()
        ).run(query, seed=1)
        assert same_answers(aware, unaware)
        assert len(aware) == 3
