"""Failure injection: malformed queries, missing data, wrapper errors."""

import pytest

from repro import (
    FederatedEngine,
    PlanPolicy,
    SemanticDataLake,
    SPARQLParseError,
    SourceSelectionError,
)
from repro.core.decomposer import decompose_star_shaped
from repro.exceptions import CatalogError, PlanningError, WrapperError
from repro.federation import RelationalSource, RunContext, SQLWrapper
from repro.mapping import normalize_graph
from repro.rdf import Graph, IRI
from repro.sparql import parse_query

from ..conftest import TINY_DISEASOME, make_tiny_graph

PREFIX = "PREFIX v: <http://ex/vocab#>\n"


class TestMalformedQueries:
    @pytest.mark.parametrize(
        "text",
        [
            "SELECT WHERE { ?a ?b }",
            "SELECT * { ?a <p> }",
            "SELECT * WHERE { ?a <http://p> ?b",
            "ASK { ?a <http://p> ?b }",
            "",
        ],
    )
    def test_parse_errors(self, tiny_lake, text):
        engine = FederatedEngine(tiny_lake)
        with pytest.raises(SPARQLParseError):
            engine.plan(text)

    def test_variable_predicate_rejected_at_planning(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        with pytest.raises(PlanningError):
            engine.plan("SELECT * WHERE { ?s ?p ?o }")


class TestEmptyAndMissing:
    def test_empty_lake_has_no_sources(self):
        lake = SemanticDataLake("empty")
        engine = FederatedEngine(lake)
        with pytest.raises(SourceSelectionError):
            engine.plan(PREFIX + "SELECT * WHERE { ?g v:geneSymbol ?s }")

    def test_unknown_source_lookup(self):
        lake = SemanticDataLake("empty")
        with pytest.raises(CatalogError):
            lake.source("ghost")

    def test_duplicate_source_registration(self, diseasome_graph):
        lake = SemanticDataLake("dup")
        lake.add_graph_as_relational("src", diseasome_graph)
        with pytest.raises(CatalogError):
            lake.add_rdf_source("src", Graph())

    def test_query_matching_no_data_returns_empty(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        answers, stats = engine.run(
            PREFIX + 'SELECT * WHERE { ?g a v:Gene ; v:geneSymbol "NOPE" . }',
            seed=1,
        )
        assert answers == []
        assert stats.answers == 0
        assert stats.time_to_first_answer is None

    def test_create_index_on_rdf_source_rejected(self, affymetrix_graph):
        lake = SemanticDataLake("mixed")
        lake.add_rdf_source("affymetrix", affymetrix_graph)
        with pytest.raises(CatalogError):
            lake.create_index("affymetrix", "probeset", ["symbol"])


class TestWrapperFailures:
    def test_broken_translation_surfaces_as_wrapper_error(self):
        db, mapping, __ = normalize_graph("src", make_tiny_graph(TINY_DISEASOME))
        source = RelationalSource(source_id="src", database=db, mapping=mapping)
        wrapper = SQLWrapper(source)
        star = decompose_star_shaped(
            parse_query(PREFIX + "SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?s . }")
        ).subqueries[0]
        translation = wrapper.translate([(star, mapping.class_mapping(IRI("http://ex/vocab#Gene")))])
        db.drop_table("gene")  # sabotage the source after planning
        with pytest.raises(WrapperError):
            list(wrapper.execute(translation, RunContext(seed=1)))


class TestRobustPlanning:
    def test_cartesian_plan_allowed_with_note(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, policy=PlanPolicy.physical_design_unaware())
        plan = engine.plan(
            PREFIX
            + "SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?s . "
            "?p a v:Probeset ; v:scientificName ?sp . }"
        )
        assert any("cartesian" in note for note in plan.notes)
        answers = [a for a in engine.execute(plan.query, seed=1)]
        assert len(answers) == 4 * 3

    def test_filter_on_unbound_variable_rejects_all(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        answers, __ = engine.run(
            PREFIX
            + "SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?s . FILTER(?nope = 1) }",
            seed=1,
        )
        assert answers == []

    def test_limit_zero(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        answers, __ = engine.run(
            PREFIX + "SELECT * WHERE { ?g a v:Gene ; v:geneSymbol ?s . } LIMIT 0",
            seed=1,
        )
        assert answers == []
