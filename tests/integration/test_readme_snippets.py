"""Documentation fidelity: the README / module-docstring snippets run.

These tests execute the code paths the documentation promises, at a tiny
scale, so the docs cannot silently rot.
"""

import pytest


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        from repro import FederatedEngine, PlanPolicy, NetworkSetting
        from repro.datasets import build_lslod_lake, BENCHMARK_QUERIES

        lake = build_lslod_lake(scale=0.05, seed=42)
        engine = FederatedEngine(
            lake,
            policy=PlanPolicy.physical_design_aware(),
            network=NetworkSetting.gamma2(),
        )
        explained = engine.explain(BENCHMARK_QUERIES["Q2"].text)
        assert "Plan [Physical-Design-Aware]" in explained

        answers, stats = engine.run(BENCHMARK_QUERIES["Q2"].text, seed=7)
        assert answers
        assert stats.execution_time > 0
        assert stats.trace[:5]

    def test_package_docstring_snippet(self):
        """The example in repro/__init__.py's module docstring."""
        from repro import FederatedEngine, PlanPolicy, NetworkSetting
        from repro.datasets import build_lslod_lake, BENCHMARK_QUERIES

        lake = build_lslod_lake(seed=42, scale=0.05)
        engine = FederatedEngine(
            lake,
            policy=PlanPolicy.physical_design_aware(),
            network=NetworkSetting.gamma2(),
        )
        answers, stats = engine.run(BENCHMARK_QUERIES["Q3"].text, seed=1)
        assert stats.execution_time > 0

    def test_database_docstring_example(self):
        from repro.relational import Database

        db = Database("diseasome")
        db.execute("CREATE TABLE gene (id INTEGER PRIMARY KEY, name TEXT)")
        assert db.execute("INSERT INTO gene VALUES (1, 'BRCA1')") == 1
        assert db.query("SELECT name FROM gene WHERE id = 1").fetchall() == [("BRCA1",)]

    def test_namespace_docstring_example(self):
        from repro.rdf import IRI, Namespace

        EX = Namespace("http://example.org/")
        assert EX.drug == IRI("http://example.org/drug")
        assert EX["drug/1"] == IRI("http://example.org/drug/1")

    def test_all_public_symbols_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

        import repro.core, repro.relational, repro.rdf, repro.sparql
        import repro.mapping, repro.network, repro.federation
        import repro.datasets, repro.benchmark, repro.datalake

        for module in (
            repro.core,
            repro.relational,
            repro.rdf,
            repro.sparql,
            repro.mapping,
            repro.network,
            repro.federation,
            repro.datasets,
            repro.benchmark,
            repro.datalake,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None, (module.__name__, name)
