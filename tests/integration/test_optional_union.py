"""End-to-end OPTIONAL and UNION through the federated engine.

Cross-validated against the local SPARQL evaluator over the same data: the
federated answers over the *relational* lake must match evaluating the
query directly on the original RDF graph.
"""

import pytest

from repro import FederatedEngine, PlanPolicy
from repro.benchmark import answer_set, same_answers
from repro.sparql import evaluate_query, parse_query

from ..conftest import TINY_DISEASOME, make_tiny_graph

PREFIX = "PREFIX v: <http://ex/vocab#>\n"


def reference_answers(graph, query_text):
    return list(evaluate_query(graph, parse_query(query_text)))


@pytest.fixture
def graph():
    return make_tiny_graph(TINY_DISEASOME)


@pytest.fixture
def lake(graph):
    from repro.datalake import SemanticDataLake

    lake = SemanticDataLake("tiny")
    lake.add_graph_as_relational("diseasome", graph)
    lake.create_index("diseasome", "gene", ["associateddisease"])
    return lake


class TestOptional:
    QUERY = PREFIX + """
    SELECT ?d ?dn ?g WHERE {
      ?d a v:Disease ; v:diseaseName ?dn .
      OPTIONAL { ?g a v:Gene ; v:associatedDisease ?d ; v:geneSymbol ?sym . }
    }
    """

    def test_matches_local_evaluator(self, lake, graph):
        answers, __ = FederatedEngine(lake).run(self.QUERY, seed=1)
        reference = reference_answers(graph, self.QUERY)
        assert answer_set(answers) == answer_set(reference)

    def test_unmatched_left_rows_kept(self, lake, graph):
        query = PREFIX + """
        SELECT ?d ?g WHERE {
          ?d a v:Disease .
          OPTIONAL { ?g a v:Gene ; v:associatedDisease ?d ;
                     v:geneSymbol "BRCA1" . }
        }
        """
        answers, __ = FederatedEngine(lake).run(query, seed=1)
        # 3 diseases; only disease 1 has BRCA1 -> 3 rows, one extended
        assert len(answers) == 3
        extended = [answer for answer in answers if "g" in answer]
        assert len(extended) == 1

    def test_policies_agree(self, lake):
        aware, __ = FederatedEngine(
            lake, policy=PlanPolicy.physical_design_aware()
        ).run(self.QUERY, seed=1)
        unaware, __ = FederatedEngine(
            lake, policy=PlanPolicy.physical_design_unaware()
        ).run(self.QUERY, seed=1)
        assert same_answers(aware, unaware)

    def test_plan_contains_left_join(self, lake):
        plan = FederatedEngine(lake).plan(self.QUERY)
        assert "LeftJoin" in plan.explain()
        assert "OPTIONAL" in plan.explain()

    def test_multiple_optionals(self, lake, graph):
        query = PREFIX + """
        SELECT * WHERE {
          ?d a v:Disease ; v:diseaseName ?dn .
          OPTIONAL { ?g a v:Gene ; v:associatedDisease ?d . }
          OPTIONAL { ?d v:diseaseClass ?dc . }
        }
        """
        answers, __ = FederatedEngine(lake).run(query, seed=1)
        reference = reference_answers(graph, query)
        assert answer_set(answers) == answer_set(reference)


class TestUnion:
    QUERY = PREFIX + """
    SELECT ?x WHERE {
      { ?x a v:Disease ; v:diseaseClass "cancer" . }
      UNION
      { ?x a v:Gene ; v:geneSymbol "INS" . }
    }
    """

    def test_matches_local_evaluator(self, lake, graph):
        answers, __ = FederatedEngine(lake).run(self.QUERY, seed=1)
        reference = reference_answers(graph, self.QUERY)
        assert answer_set(answers) == answer_set(reference)
        assert len(answers) == 3

    def test_plan_contains_union(self, lake):
        plan = FederatedEngine(lake).plan(self.QUERY)
        assert "Union" in plan.explain()

    def test_union_with_filters_in_branches(self, lake, graph):
        query = PREFIX + """
        SELECT ?x ?n WHERE {
          { ?x a v:Disease ; v:diseaseName ?n . FILTER(CONTAINS(?n, "cancer")) }
          UNION
          { ?x a v:Gene ; v:geneSymbol ?n . FILTER(STRSTARTS(?n, "T")) }
        }
        """
        answers, __ = FederatedEngine(lake).run(query, seed=1)
        reference = reference_answers(graph, query)
        assert answer_set(answers) == answer_set(reference)

    def test_union_branch_with_join(self, lake, graph):
        query = PREFIX + """
        SELECT ?x WHERE {
          { ?x a v:Gene ; v:associatedDisease ?d .
            ?d a v:Disease ; v:diseaseClass "cancer" . }
          UNION
          { ?x a v:Disease ; v:diseaseClass "metabolic" . }
        }
        """
        answers, __ = FederatedEngine(lake).run(query, seed=1)
        reference = reference_answers(graph, query)
        assert answer_set(answers) == answer_set(reference)

    def test_heuristics_fire_inside_branches(self, lake):
        query = PREFIX + """
        SELECT ?x WHERE {
          { ?x a v:Gene ; v:associatedDisease ?d .
            ?d a v:Disease ; v:diseaseClass "cancer" . }
          UNION
          { ?x a v:Disease ; v:diseaseClass "metabolic" . }
        }
        """
        plan = FederatedEngine(lake, policy=PlanPolicy.physical_design_aware()).plan(query)
        assert any(decision.merged for decision in plan.merge_decisions)
