"""Replicated classes across sources: union leaves and answer completeness.

MULDER (the engine Ontario builds on) motivates RDF-MT source descriptions
with *answer completeness*: when a class lives in several sources, the
engine must query all of them and union the results.  These tests replicate
the Gene class across a relational member and an RDF member with partially
overlapping instances.
"""

import pytest

from repro import FederatedEngine, PlanPolicy
from repro.benchmark import answer_set
from repro.datalake import SemanticDataLake
from repro.rdf import Graph, IRI, Literal, RDF_TYPE, Triple

VOCAB = "http://ex/vocab#"
PREFIX = f"PREFIX v: <{VOCAB}>\n"


def gene_graph(source: str, keys: list[int]) -> Graph:
    graph = Graph(source)
    for key in keys:
        subject = IRI(f"http://ex/{source}/Gene/{key}")
        graph.add(Triple(subject, RDF_TYPE, IRI(VOCAB + "Gene")))
        graph.add(Triple(subject, IRI(VOCAB + "geneSymbol"), Literal(f"SYM{key}")))
    return graph


@pytest.fixture
def replicated_lake() -> SemanticDataLake:
    lake = SemanticDataLake("replicated")
    lake.add_graph_as_relational("alpha", gene_graph("alpha", [1, 2, 3]))
    lake.add_rdf_source("beta", gene_graph("beta", [3, 4]))
    return lake


QUERY = PREFIX + "SELECT ?sym WHERE { ?g a v:Gene ; v:geneSymbol ?sym . }"


class TestReplication:
    def test_union_leaf_planned(self, replicated_lake):
        plan = FederatedEngine(replicated_lake).plan(QUERY)
        explained = plan.explain()
        assert "Union" in explained
        assert "Service[alpha]" in explained
        assert "Service[beta]" in explained

    def test_answers_cover_both_sources(self, replicated_lake):
        answers, stats = FederatedEngine(replicated_lake).run(QUERY, seed=1)
        symbols = sorted(answer["sym"].lexical for answer in answers)
        # 3+2 rows: SYM3 appears from both sources (bag semantics)
        assert symbols == ["SYM1", "SYM2", "SYM3", "SYM3", "SYM4"]
        assert stats.source("alpha").answers == 3
        assert stats.source("beta").answers == 2

    def test_distinct_deduplicates_across_sources(self, replicated_lake):
        query = PREFIX + "SELECT DISTINCT ?sym WHERE { ?g a v:Gene ; v:geneSymbol ?sym . }"
        answers, __ = FederatedEngine(replicated_lake).run(query, seed=1)
        symbols = sorted(answer["sym"].lexical for answer in answers)
        assert symbols == ["SYM1", "SYM2", "SYM3", "SYM4"]

    def test_completeness_beats_single_source(self, replicated_lake):
        """Dropping a source loses answers: the union is what delivers
        MULDER-style completeness."""
        answers_full, __ = FederatedEngine(replicated_lake).run(QUERY, seed=1)

        single = SemanticDataLake("single")
        single.add_graph_as_relational("alpha", gene_graph("alpha", [1, 2, 3]))
        answers_single, __ = FederatedEngine(single).run(QUERY, seed=1)

        full_symbols = {answer["sym"].lexical for answer in answers_full}
        single_symbols = {answer["sym"].lexical for answer in answers_single}
        assert single_symbols < full_symbols

    def test_join_over_replicated_star(self, replicated_lake):
        """The replicated star joins against another star correctly."""
        extra = Graph("probes")
        for key in (2, 3, 4):
            subject = IRI(f"http://ex/probes/Probeset/{key}")
            extra.add(Triple(subject, RDF_TYPE, IRI(VOCAB + "Probeset")))
            extra.add(Triple(subject, IRI(VOCAB + "symbol"), Literal(f"SYM{key}")))
        replicated_lake.add_graph_as_relational("probes", extra)

        query = PREFIX + (
            "SELECT ?sym ?p WHERE { ?g a v:Gene ; v:geneSymbol ?sym . "
            "?p a v:Probeset ; v:symbol ?sym . }"
        )
        answers, __ = FederatedEngine(replicated_lake).run(query, seed=1)
        symbols = sorted(answer["sym"].lexical for answer in answers)
        # SYM2 once, SYM3 twice (both replicas), SYM4 once
        assert symbols == ["SYM2", "SYM3", "SYM3", "SYM4"]

    def test_aware_and_unaware_agree(self, replicated_lake):
        aware, __ = FederatedEngine(
            replicated_lake, policy=PlanPolicy.physical_design_aware()
        ).run(QUERY, seed=1)
        unaware, __ = FederatedEngine(
            replicated_lake, policy=PlanPolicy.physical_design_unaware()
        ).run(QUERY, seed=1)
        assert answer_set(aware) == answer_set(unaware)
