"""Additional robustness tests: streams, real clock, operators, dumps."""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro import FederatedEngine, NetworkSetting, PlanPolicy, RealClock
from repro.federation import RunContext
from repro.federation.operators import LeftJoin
from repro.network import FixedDelay
from repro.rdf import Literal, XSD_INTEGER
from repro.relational import Column, Database, SQLType, dump_sql, load_sql

from ..conftest import TINY_QUERY


class TestResultStream:
    def test_partial_consumption_keeps_stats_incomplete(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        stream = engine.execute(TINY_QUERY, seed=1)
        next(stream)
        assert not stream.exhausted
        assert stream.stats.answers == 1

    def test_stats_final_after_collect(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma1())
        stream = engine.execute(TINY_QUERY, seed=1)
        stream.collect()
        assert stream.exhausted
        assert stream.stats.execution_time >= stream.stats.trace[-1][0]

    def test_iteration_protocols(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        stream = engine.execute(TINY_QUERY, seed=1)
        collected = [solution for solution in stream]
        assert len(collected) == 4


class TestRealClock:
    def test_real_clock_run(self, tiny_lake):
        """A short real-sleep execution: delays actually elapse."""
        import time

        setting = NetworkSetting("tiny-real", FixedDelay(0.002))
        engine = FederatedEngine(tiny_lake, network=setting)
        start = time.monotonic()
        answers_stream = engine.execute(TINY_QUERY, seed=1, clock=RealClock())
        answers = answers_stream.collect()
        elapsed = time.monotonic() - start
        assert len(answers) == 4
        # >= messages x 2ms of genuine sleeping happened
        assert elapsed >= answers_stream.stats.messages * 0.002 * 0.5


class TestLeftJoinOperator:
    def test_left_rows_survive_empty_right(self):
        from tests.federation.test_operators import Static

        left = Static([{"a": Literal("1")}, {"a": Literal("2")}])
        right = Static([])
        join = LeftJoin(left, right, ("a",))
        rows = list(join.execute(RunContext(seed=1)))
        assert len(rows) == 2
        assert all(set(row) == {"a"} for row in rows)

    def test_matches_extend(self):
        from tests.federation.test_operators import Static

        left = Static([{"a": Literal("1")}, {"a": Literal("2")}])
        right = Static([{"a": Literal("1"), "b": Literal("x")}])
        rows = list(LeftJoin(left, right, ("a",)).execute(RunContext(seed=1)))
        extended = [row for row in rows if "b" in row]
        assert len(rows) == 2 and len(extended) == 1

    def test_incompatible_shared_variable_falls_back_to_left(self):
        from tests.federation.test_operators import Static

        left = Static([{"a": Literal("1"), "b": Literal("x")}])
        right = Static([{"a": Literal("1"), "b": Literal("y")}])
        rows = list(LeftJoin(left, right, ("a",)).execute(RunContext(seed=1)))
        # OPTIONAL semantics: incompatible extension -> keep bare left row
        assert rows == [{"a": Literal("1"), "b": Literal("x")}]


class TestDumpEdgeCases:
    def test_fk_cycle_does_not_hang(self):
        database = Database("cyclic")
        database.create_table(
            "a",
            [Column("id", SQLType.INTEGER, nullable=False), Column("b_id", SQLType.INTEGER)],
            primary_key=("id",),
        )
        database.create_table(
            "b",
            [Column("id", SQLType.INTEGER, nullable=False), Column("a_id", SQLType.INTEGER)],
            primary_key=("id",),
        )
        # declare a cycle (validation is by name only)
        from repro.relational.schema import ForeignKey

        database.table("a").schema.foreign_keys.append(ForeignKey("b_id", "b", "id"))
        database.table("b").schema.foreign_keys.append(ForeignKey("a_id", "a", "id"))
        script = dump_sql(database)
        assert "CREATE TABLE a" in script and "CREATE TABLE b" in script

    @given(
        values=st.lists(
            st.one_of(
                st.none(),
                st.integers(-10**6, 10**6),
                st.text(alphabet=string.printable, max_size=40),
                st.booleans(),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
            ),
            max_size=25,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_dump_load_roundtrip_property(self, values):
        database = Database("prop")
        database.create_table(
            "t",
            [Column("id", SQLType.INTEGER, nullable=False), Column("v", SQLType.TEXT)],
            primary_key=("id",),
        )
        for row_id, value in enumerate(values):
            database.insert("t", {"id": row_id, "v": str(value) if value is not None else None})
        restored = load_sql(dump_sql(database))
        assert sorted(restored.query("SELECT * FROM t").fetchall()) == sorted(
            database.query("SELECT * FROM t").fetchall()
        )


class TestAggregateConsistency:
    @given(
        amounts=st.lists(st.integers(0, 100), min_size=1, max_size=60),
        groups=st.integers(1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_group_sums_match_manual(self, amounts, groups):
        database = Database("agg")
        database.create_table(
            "t",
            [
                Column("id", SQLType.INTEGER, nullable=False),
                Column("g", SQLType.INTEGER),
                Column("v", SQLType.INTEGER),
            ],
            primary_key=("id",),
        )
        manual: dict[int, list[int]] = {}
        for row_id, amount in enumerate(amounts):
            group = row_id % groups
            database.insert("t", {"id": row_id, "g": group, "v": amount})
            manual.setdefault(group, []).append(amount)
        rows = database.query(
            "SELECT g, COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi "
            "FROM t GROUP BY g"
        ).fetchall()
        assert len(rows) == len(manual)
        for group, count, total, low, high in rows:
            values = manual[group]
            assert count == len(values)
            assert total == sum(values)
            assert low == min(values)
            assert high == max(values)
