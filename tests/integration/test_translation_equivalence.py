"""Property: the relational path is semantically transparent.

For random small RDF graphs and random star queries, evaluating the query

* directly over the RDF graph (the local SPARQL evaluator), and
* over the 3NF-normalized relational version via SSQ->SQL translation

must produce identical answer sets.  This is the end-to-end correctness of
normalizer + mappings + translator + relational engine.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.benchmark import answer_set
from repro.core import decompose_star_shaped
from repro.federation import RelationalSource, RunContext, SQLWrapper
from repro.mapping import normalize_graph
from repro.rdf import Graph, IRI, Literal, RDF_TYPE, Triple, XSD_INTEGER
from repro.sparql import evaluate_query, parse_query

VOCAB = "http://ex/v#"
CLASS_GENE = IRI(VOCAB + "Gene")
CLASS_DISEASE = IRI(VOCAB + "Disease")

SYMBOLS = ["BRCA1", "TP53", "KRAS", "INS", "EGFR"]


@st.composite
def random_lake_graph(draw):
    """A small typed graph with genes linking to diseases."""
    graph = Graph()
    n_diseases = draw(st.integers(1, 5))
    n_genes = draw(st.integers(1, 12))
    for index in range(1, n_diseases + 1):
        subject = IRI(f"http://ex/data/Disease/{index}")
        graph.add(Triple(subject, RDF_TYPE, CLASS_DISEASE))
        name = draw(st.sampled_from(["cancer", "diabetes", "asthma", "flu"]))
        graph.add(Triple(subject, IRI(VOCAB + "name"), Literal(f"{name} {index}")))
        graph.add(
            Triple(
                subject,
                IRI(VOCAB + "degree"),
                Literal(str(draw(st.integers(0, 30))), XSD_INTEGER),
            )
        )
    for index in range(1, n_genes + 1):
        subject = IRI(f"http://ex/data/Gene/{index}")
        graph.add(Triple(subject, RDF_TYPE, CLASS_GENE))
        # Some genes lack a symbol (NULL column) to exercise the guards.
        if draw(st.booleans()) or index == 1:
            graph.add(
                Triple(
                    subject,
                    IRI(VOCAB + "symbol"),
                    Literal(draw(st.sampled_from(SYMBOLS))),
                )
            )
        disease_key = draw(st.integers(1, n_diseases))
        graph.add(
            Triple(
                subject,
                IRI(VOCAB + "assoc"),
                IRI(f"http://ex/data/Disease/{disease_key}"),
            )
        )
    return graph


@st.composite
def random_star_query(draw):
    """A star over Gene, with optional constant object and optional filter."""
    parts = ["?g a v:Gene"]
    variables = ["?g"]
    use_symbol = draw(st.booleans())
    if use_symbol:
        constant = draw(st.booleans())
        if constant:
            parts.append(f'v:symbol "{draw(st.sampled_from(SYMBOLS))}"')
        else:
            parts.append("v:symbol ?s")
            variables.append("?s")
    use_assoc = draw(st.booleans())
    if use_assoc:
        parts.append("v:assoc ?d")
        variables.append("?d")
    body = " ; ".join(parts) + " ."
    filter_clause = ""
    if "?s" in variables and draw(st.booleans()):
        kind = draw(st.sampled_from(["eq", "contains", "neq"]))
        if kind == "eq":
            filter_clause = f'FILTER(?s = "{draw(st.sampled_from(SYMBOLS))}")'
        elif kind == "neq":
            filter_clause = f'FILTER(?s != "{draw(st.sampled_from(SYMBOLS))}")'
        else:
            filter_clause = f'FILTER(CONTAINS(?s, "{draw(st.sampled_from(["R", "A", "5"]))}"))'
    return (
        "PREFIX v: <http://ex/v#>\n"
        f"SELECT {' '.join(variables)} WHERE {{ {body} {filter_clause} }}"
    )


class TestTranslationEquivalence:
    @given(graph=random_lake_graph(), query_text=random_star_query())
    @settings(max_examples=60, deadline=None)
    def test_sql_path_matches_sparql_path(self, graph, query_text):
        query = parse_query(query_text)

        # Path 1: local SPARQL evaluation over the original graph.
        reference = list(evaluate_query(graph, query))

        # Path 2: normalize to 3NF, translate the star, run the SQL.
        database, mapping, __ = normalize_graph("src", graph)
        source = RelationalSource(source_id="src", database=database, mapping=mapping)
        wrapper = SQLWrapper(source)
        decomposition = decompose_star_shaped(query)
        star = decomposition.subqueries[0]
        translation = wrapper.translate(
            [(star, mapping.class_mapping(CLASS_GENE))],
            pushed_filters=star.filters,
        )
        produced = list(wrapper.execute(translation, RunContext(seed=1)))
        projected = [
            {name: solution[name] for name in (v.name for v in query.variables) if name in solution}
            for solution in produced
        ]

        assert answer_set(projected) == answer_set(reference), query_text
