"""Tests for clocks, delay models, channels and the cost model."""

import numpy as np
import pytest

from repro.network import (
    Channel,
    CostModel,
    DEFAULT_COST_MODEL,
    FixedDelay,
    GammaDelay,
    NetworkSetting,
    NoDelay,
    RealClock,
    VirtualClock,
)


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_sleep_advances(self):
        clock = VirtualClock()
        clock.sleep(1.5)
        clock.sleep(0.5)
        assert clock.now() == pytest.approx(2.0)

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().sleep(-1)

    def test_reset(self):
        clock = VirtualClock()
        clock.sleep(3)
        clock.reset()
        assert clock.now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(start=10.0).now() == 10.0


class TestRealClock:
    def test_now_monotonic(self):
        clock = RealClock()
        first = clock.now()
        second = clock.now()
        assert second >= first

    def test_sleep_waits(self):
        clock = RealClock()
        before = clock.now()
        clock.sleep(0.01)
        assert clock.now() - before >= 0.009

    def test_zero_sleep_fast(self):
        RealClock().sleep(0)


class TestDelayModels:
    def test_no_delay(self):
        rng = np.random.default_rng(1)
        model = NoDelay()
        assert model.sample(rng) == 0.0
        assert model.mean_latency == 0.0

    def test_fixed_delay(self):
        rng = np.random.default_rng(1)
        model = FixedDelay(0.005)
        assert model.sample(rng) == 0.005
        assert model.mean_latency == 0.005

    def test_gamma_mean_matches_theory(self):
        rng = np.random.default_rng(7)
        model = GammaDelay(alpha=3.0, beta_ms=1.5)
        samples = [model.sample(rng) for __ in range(20000)]
        assert np.mean(samples) == pytest.approx(0.0045, rel=0.05)
        assert model.mean_latency == pytest.approx(0.0045)

    def test_gamma_deterministic_with_seed(self):
        model = GammaDelay(alpha=1.0, beta_ms=0.3)
        a = [model.sample(np.random.default_rng(5)) for __ in range(3)]
        b = [model.sample(np.random.default_rng(5)) for __ in range(3)]
        assert a == b

    def test_samples_positive(self):
        rng = np.random.default_rng(3)
        model = GammaDelay(alpha=3.0, beta_ms=1.0)
        assert all(model.sample(rng) >= 0 for __ in range(100))


class TestNetworkSettings:
    def test_paper_settings(self):
        settings = NetworkSetting.all_settings()
        assert [setting.name for setting in settings] == [
            "No Delay",
            "Gamma 1",
            "Gamma 2",
            "Gamma 3",
        ]
        means = [setting.mean_latency for setting in settings]
        assert means == pytest.approx([0.0, 0.0003, 0.003, 0.0045])

    def test_slow_classification(self):
        assert not NetworkSetting.no_delay().is_slow
        assert not NetworkSetting.gamma1().is_slow
        assert NetworkSetting.gamma2().is_slow
        assert NetworkSetting.gamma3().is_slow

    def test_by_name(self):
        assert NetworkSetting.by_name("gamma2").name == "Gamma 2"
        assert NetworkSetting.by_name("No Delay").name == "No Delay"
        with pytest.raises(KeyError):
            NetworkSetting.by_name("warp")

    def test_custom_threshold(self):
        setting = NetworkSetting("custom", GammaDelay(1, 0.3), slow_threshold=0.0001)
        assert setting.is_slow


class TestChannel:
    def test_transfer_counts_and_charges(self):
        clock = VirtualClock()
        channel = Channel(clock, FixedDelay(0.001), CostModel(message_overhead=0.0005))
        out = list(channel.transfer(range(10)))
        assert out == list(range(10))
        assert channel.stats.messages == 10
        assert clock.now() == pytest.approx(0.015)
        assert channel.stats.total_delay == pytest.approx(0.015)

    def test_charge_message_without_payload(self):
        clock = VirtualClock()
        channel = Channel(clock, FixedDelay(0.002), CostModel(message_overhead=0.0))
        channel.charge_message()
        assert clock.now() == pytest.approx(0.002)
        assert channel.stats.messages == 1

    def test_streaming_is_lazy(self):
        clock = VirtualClock()
        channel = Channel(clock, FixedDelay(1.0), CostModel(message_overhead=0.0))
        iterator = channel.transfer(range(3))
        assert clock.now() == 0.0
        next(iterator)
        assert clock.now() == pytest.approx(1.0)


class TestCostModel:
    def test_price_rdb_operations(self):
        model = CostModel()
        counts = {"rows_scanned": 100, "string_filter_evals": 10, "rows_output": 5}
        expected = (
            100 * model.rdb_row_scan
            + 10 * model.rdb_string_filter_eval
            + 5 * model.rdb_output_row
        )
        assert model.price_rdb_operations(counts) == pytest.approx(expected)

    def test_unknown_ops_free(self):
        assert CostModel().price_rdb_operations({"mystery": 1000}) == 0.0

    def test_with_overrides(self):
        model = DEFAULT_COST_MODEL.with_overrides(rdb_row_scan=1.0)
        assert model.rdb_row_scan == 1.0
        assert model.rdb_index_probe == DEFAULT_COST_MODEL.rdb_index_probe

    def test_string_filter_asymmetry_holds(self):
        """The calibration the paper's Heuristic 2 builds on."""
        model = DEFAULT_COST_MODEL
        assert model.rdb_string_filter_eval > (
            model.engine_filter_eval + model.message_overhead + model.rdb_output_row
        )

    def test_index_cheaper_than_scan_when_selective(self):
        model = DEFAULT_COST_MODEL
        rows = 10_000
        matches = 100
        scan_cost = rows * (model.rdb_row_scan + model.rdb_filter_eval)
        index_cost = model.rdb_index_probe + matches * model.rdb_index_row_fetch
        assert index_cost < scan_cost / 10
