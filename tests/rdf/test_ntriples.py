"""Tests for N-Triples parsing and serialization."""

import pytest

from repro.exceptions import NTriplesParseError
from repro.rdf import (
    BNode,
    Graph,
    IRI,
    Literal,
    Triple,
    XSD_INTEGER,
    parse,
    parse_into,
    parse_line,
    serialize,
)


class TestParseLine:
    def test_iri_triple(self):
        triple = parse_line("<http://ex/s> <http://ex/p> <http://ex/o> .")
        assert triple == Triple(IRI("http://ex/s"), IRI("http://ex/p"), IRI("http://ex/o"))

    def test_plain_literal(self):
        triple = parse_line('<http://ex/s> <http://ex/p> "hello" .')
        assert triple.object == Literal("hello")

    def test_language_literal(self):
        triple = parse_line('<http://ex/s> <http://ex/p> "hallo"@de .')
        assert triple.object == Literal("hallo", language="de")

    def test_typed_literal(self):
        line = '<http://ex/s> <http://ex/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        triple = parse_line(line)
        assert triple.object == Literal("5", XSD_INTEGER)

    def test_bnode_subject_and_object(self):
        triple = parse_line("_:a <http://ex/p> _:b .")
        assert triple.subject == BNode("a")
        assert triple.object == BNode("b")

    def test_escapes(self):
        triple = parse_line('<http://ex/s> <http://ex/p> "a\\"b\\n\\t\\\\c" .')
        assert triple.object.lexical == 'a"b\n\t\\c'

    def test_unicode_escape(self):
        triple = parse_line('<http://ex/s> <http://ex/p> "\\u00e9" .')
        assert triple.object.lexical == "é"

    def test_blank_line_is_none(self):
        assert parse_line("   ") is None

    def test_comment_line_is_none(self):
        assert parse_line("# a comment") is None

    def test_trailing_comment_allowed(self):
        triple = parse_line("<http://ex/s> <http://ex/p> <http://ex/o> . # note")
        assert triple is not None


class TestParseErrors:
    @pytest.mark.parametrize(
        "line",
        [
            "<http://ex/s> <http://ex/p> <http://ex/o>",  # missing dot
            '<http://ex/s> <http://ex/p> "unterminated .',
            "<http://ex/s> <oops .",
            '"literal" <http://ex/p> <http://ex/o> .',  # literal subject
            "<http://ex/s> _:b <http://ex/o> .",  # bnode predicate
            "<http://ex/s> <http://ex/p> <http://ex/o> . extra",
            '<http://ex/s> <http://ex/p> "bad\\q" .',  # unknown escape
        ],
    )
    def test_malformed_lines_raise(self, line):
        with pytest.raises(NTriplesParseError):
            parse_line(line)

    def test_error_carries_line_number(self):
        with pytest.raises(NTriplesParseError) as excinfo:
            list(parse("<http://ex/s> <http://ex/p> <http://ex/o> .\n<bad"))
        assert excinfo.value.line == 2


class TestDocuments:
    def test_parse_document(self):
        text = (
            "# comment\n"
            "<http://ex/s> <http://ex/p> <http://ex/o> .\n"
            "\n"
            '<http://ex/s> <http://ex/p> "x" .\n'
        )
        assert len(list(parse(text))) == 2

    def test_parse_into_graph(self):
        graph = Graph()
        added = parse_into(graph, '<http://ex/s> <http://ex/p> "x" .\n')
        assert added == 1
        assert len(graph) == 1

    def test_roundtrip(self):
        triples = [
            Triple(IRI("http://ex/s"), IRI("http://ex/p"), Literal('with "quote"\n')),
            Triple(IRI("http://ex/s"), IRI("http://ex/p"), Literal("5", XSD_INTEGER)),
            Triple(BNode("x"), IRI("http://ex/p"), IRI("http://ex/o")),
            Triple(IRI("http://ex/s"), IRI("http://ex/p"), Literal("bonjour", language="fr")),
        ]
        text = serialize(triples)
        assert list(parse(text)) == triples
