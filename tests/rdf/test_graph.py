"""Tests for the indexed triple store."""

from repro.rdf import Graph, IRI, Literal, Triple, Variable

S1 = IRI("http://ex/s1")
S2 = IRI("http://ex/s2")
P1 = IRI("http://ex/p1")
P2 = IRI("http://ex/p2")
O1 = Literal("one")
O2 = Literal("two")


def build_graph() -> Graph:
    graph = Graph()
    graph.add(Triple(S1, P1, O1))
    graph.add(Triple(S1, P2, O2))
    graph.add(Triple(S2, P1, O1))
    graph.add(Triple(S2, P1, S1))
    return graph


class TestAddRemove:
    def test_add_returns_true_for_new(self):
        graph = Graph()
        assert graph.add(Triple(S1, P1, O1)) is True

    def test_add_duplicate_returns_false(self):
        graph = Graph()
        graph.add(Triple(S1, P1, O1))
        assert graph.add(Triple(S1, P1, O1)) is False
        assert len(graph) == 1

    def test_add_all_counts_new_only(self):
        graph = Graph()
        triples = [Triple(S1, P1, O1), Triple(S1, P1, O1), Triple(S1, P2, O2)]
        assert graph.add_all(triples) == 2

    def test_remove(self):
        graph = build_graph()
        assert graph.remove(Triple(S1, P1, O1)) is True
        assert Triple(S1, P1, O1) not in graph
        assert len(graph) == 3

    def test_remove_absent_returns_false(self):
        graph = Graph()
        assert graph.remove(Triple(S1, P1, O1)) is False

    def test_removed_triple_not_matched(self):
        graph = build_graph()
        graph.remove(Triple(S1, P1, O1))
        assert list(graph.triples(S1, P1, None)) == []

    def test_contains(self):
        graph = build_graph()
        assert Triple(S1, P1, O1) in graph

    def test_iteration(self):
        graph = build_graph()
        assert len(list(graph)) == 4


class TestPatternMatching:
    def test_fully_bound(self):
        graph = build_graph()
        assert list(graph.triples(S1, P1, O1)) == [Triple(S1, P1, O1)]

    def test_fully_bound_miss(self):
        graph = build_graph()
        assert list(graph.triples(S1, P1, O2)) == []

    def test_subject_only(self):
        graph = build_graph()
        assert len(list(graph.triples(S1, None, None))) == 2

    def test_predicate_only(self):
        graph = build_graph()
        assert len(list(graph.triples(None, P1, None))) == 3

    def test_object_only(self):
        graph = build_graph()
        assert len(list(graph.triples(None, None, O1))) == 2

    def test_subject_predicate(self):
        graph = build_graph()
        assert len(list(graph.triples(S2, P1, None))) == 2

    def test_predicate_object(self):
        graph = build_graph()
        assert len(list(graph.triples(None, P1, O1))) == 2

    def test_subject_object(self):
        graph = build_graph()
        assert list(graph.triples(S2, None, S1)) == [Triple(S2, P1, S1)]

    def test_unbound_matches_all(self):
        graph = build_graph()
        assert len(list(graph.triples())) == 4

    def test_variables_act_as_wildcards(self):
        graph = build_graph()
        matched = list(graph.triples(Variable("s"), P1, Variable("o")))
        assert len(matched) == 3

    def test_iri_in_object_position(self):
        graph = build_graph()
        assert list(graph.triples(None, None, S1)) == [Triple(S2, P1, S1)]

    def test_unknown_subject_empty(self):
        graph = build_graph()
        assert list(graph.triples(IRI("http://ex/unknown"), None, None)) == []


class TestAccessors:
    def test_count(self):
        graph = build_graph()
        assert graph.count(None, P1, None) == 3

    def test_subjects_distinct(self):
        graph = build_graph()
        assert set(graph.subjects(P1, O1)) == {S1, S2}

    def test_objects_distinct(self):
        graph = build_graph()
        assert set(graph.objects(S2, P1)) == {O1, S1}

    def test_predicates(self):
        graph = build_graph()
        assert set(graph.predicates(S1)) == {P1, P2}

    def test_value_returns_one(self):
        graph = build_graph()
        assert graph.value(S1, P1) == O1

    def test_value_missing_is_none(self):
        graph = build_graph()
        assert graph.value(S1, IRI("http://ex/unknown")) is None
