"""Tests for namespaces and prefix maps."""

import pytest

from repro.rdf import IRI, Namespace, PrefixMap, RDF, RDF_TYPE


class TestNamespace:
    def test_attribute_access(self):
        ns = Namespace("http://ex/")
        assert ns.drug == IRI("http://ex/drug")

    def test_item_access_allows_slashes(self):
        ns = Namespace("http://ex/")
        assert ns["drug/1"] == IRI("http://ex/drug/1")

    def test_term(self):
        ns = Namespace("http://ex/")
        assert ns.term("x") == IRI("http://ex/x")

    def test_contains(self):
        ns = Namespace("http://ex/")
        assert IRI("http://ex/anything") in ns
        assert IRI("http://other/") not in ns

    def test_underscore_attribute_raises(self):
        ns = Namespace("http://ex/")
        with pytest.raises(AttributeError):
            ns._private  # noqa: B018

    def test_rdf_type_constant(self):
        assert RDF_TYPE == RDF.type
        assert RDF_TYPE.value.endswith("#type")


class TestPrefixMap:
    def test_expand(self):
        prefixes = PrefixMap({"ex": "http://ex/"})
        assert prefixes.expand("ex:drug") == IRI("http://ex/drug")

    def test_expand_unknown_prefix_raises(self):
        with pytest.raises(KeyError):
            PrefixMap().expand("nope:drug")

    def test_shrink_picks_longest_match(self):
        prefixes = PrefixMap({"ex": "http://ex/", "drug": "http://ex/drug/"})
        assert prefixes.shrink(IRI("http://ex/drug/1")) == "drug:1"

    def test_shrink_no_match(self):
        prefixes = PrefixMap({"ex": "http://ex/"})
        assert prefixes.shrink(IRI("http://other/x")) is None

    def test_contains_and_copy(self):
        prefixes = PrefixMap({"ex": "http://ex/"})
        clone = prefixes.copy()
        clone.bind("other", "http://other/")
        assert "other" in clone
        assert "other" not in prefixes
