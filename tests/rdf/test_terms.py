"""Tests for RDF terms."""

import pytest

from repro.rdf import (
    BNode,
    IRI,
    Literal,
    Triple,
    Variable,
    XSD_BOOLEAN,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
    is_ground,
    typed_literal,
)


class TestIRI:
    def test_n3(self):
        assert IRI("http://ex/a").n3() == "<http://ex/a>"

    def test_str(self):
        assert str(IRI("http://ex/a")) == "http://ex/a"

    def test_equality_and_hash(self):
        assert IRI("http://ex/a") == IRI("http://ex/a")
        assert hash(IRI("http://ex/a")) == hash(IRI("http://ex/a"))
        assert IRI("http://ex/a") != IRI("http://ex/b")

    def test_local_name_hash_fragment(self):
        assert IRI("http://ex/vocab#geneSymbol").local_name() == "geneSymbol"

    def test_local_name_path(self):
        assert IRI("http://ex/resource/Gene/12").local_name() == "12"

    def test_local_name_no_separator(self):
        assert IRI("urn-like").local_name() == "urn-like"

    def test_immutable(self):
        with pytest.raises(AttributeError):
            IRI("http://ex/a").value = "other"


class TestBNode:
    def test_n3(self):
        assert BNode("b0").n3() == "_:b0"

    def test_distinct_labels_differ(self):
        assert BNode("a") != BNode("b")


class TestLiteral:
    def test_plain_string_n3(self):
        assert Literal("hi").n3() == '"hi"'

    def test_language_tag_n3(self):
        assert Literal("hallo", language="de").n3() == '"hallo"@de'

    def test_typed_n3(self):
        rendered = Literal("5", XSD_INTEGER).n3()
        assert rendered == '"5"^^<http://www.w3.org/2001/XMLSchema#integer>'

    def test_escaping(self):
        assert Literal('say "hi"\n').n3() == '"say \\"hi\\"\\n"'

    def test_backslash_escaped_first(self):
        assert Literal("a\\b").n3() == '"a\\\\b"'

    def test_to_python_integer(self):
        assert Literal("42", XSD_INTEGER).to_python() == 42

    def test_to_python_double(self):
        assert Literal("2.5", XSD_DOUBLE).to_python() == 2.5

    def test_to_python_boolean(self):
        assert Literal("true", XSD_BOOLEAN).to_python() is True
        assert Literal("false", XSD_BOOLEAN).to_python() is False

    def test_to_python_string(self):
        assert Literal("plain").to_python() == "plain"

    def test_to_python_bad_integer_falls_back(self):
        assert Literal("not-a-number", XSD_INTEGER).to_python() == "not-a-number"

    def test_is_numeric(self):
        assert Literal("1", XSD_INTEGER).is_numeric
        assert not Literal("1", XSD_STRING).is_numeric


class TestTypedLiteral:
    def test_int(self):
        assert typed_literal(7) == Literal("7", XSD_INTEGER)

    def test_bool_is_not_int(self):
        assert typed_literal(True) == Literal("true", XSD_BOOLEAN)

    def test_float(self):
        literal = typed_literal(1.5)
        assert literal.datatype == XSD_DOUBLE
        assert literal.to_python() == 1.5

    def test_str(self):
        assert typed_literal("x").datatype == XSD_STRING


class TestVariable:
    def test_n3(self):
        assert Variable("gene").n3() == "?gene"

    def test_is_not_ground(self):
        assert not is_ground(Variable("x"))
        assert is_ground(IRI("http://ex/a"))
        assert is_ground(Literal("x"))


class TestTriple:
    def test_n3(self):
        triple = Triple(IRI("http://ex/s"), IRI("http://ex/p"), Literal("o"))
        assert triple.n3() == '<http://ex/s> <http://ex/p> "o" .'

    def test_unpacking(self):
        triple = Triple(IRI("http://ex/s"), IRI("http://ex/p"), Literal("o"))
        s, p, o = triple
        assert s == IRI("http://ex/s")
        assert p == IRI("http://ex/p")
        assert o == Literal("o")

    def test_hashable(self):
        a = Triple(IRI("http://ex/s"), IRI("http://ex/p"), Literal("o"))
        b = Triple(IRI("http://ex/s"), IRI("http://ex/p"), Literal("o"))
        assert {a} == {b}
