"""Tests for RDF molecule template extraction and the molecule catalog."""

from repro.rdf import (
    Graph,
    IRI,
    Literal,
    MoleculeCatalog,
    RDF_TYPE,
    Triple,
    extract_molecule_templates,
)

GENE = IRI("http://ex/vocab#Gene")
DISEASE = IRI("http://ex/vocab#Disease")
SYMBOL = IRI("http://ex/vocab#symbol")
ASSOC = IRI("http://ex/vocab#associatedWith")
NAME = IRI("http://ex/vocab#name")


def build_graph() -> Graph:
    graph = Graph()
    g1 = IRI("http://ex/g/1")
    g2 = IRI("http://ex/g/2")
    d1 = IRI("http://ex/d/1")
    graph.add(Triple(g1, RDF_TYPE, GENE))
    graph.add(Triple(g1, SYMBOL, Literal("BRCA1")))
    graph.add(Triple(g1, ASSOC, d1))
    graph.add(Triple(g2, RDF_TYPE, GENE))
    graph.add(Triple(g2, SYMBOL, Literal("TP53")))
    graph.add(Triple(d1, RDF_TYPE, DISEASE))
    graph.add(Triple(d1, NAME, Literal("breast cancer")))
    return graph


class TestExtraction:
    def test_one_molecule_per_class(self):
        molecules = extract_molecule_templates(build_graph(), "src")
        classes = {molecule.class_iri for molecule in molecules}
        assert classes == {GENE, DISEASE}

    def test_predicates_collected(self):
        molecules = extract_molecule_templates(build_graph(), "src")
        gene = next(m for m in molecules if m.class_iri == GENE)
        assert gene.predicates == {RDF_TYPE, SYMBOL, ASSOC}

    def test_cardinality_counts_instances(self):
        molecules = extract_molecule_templates(build_graph(), "src")
        gene = next(m for m in molecules if m.class_iri == GENE)
        disease = next(m for m in molecules if m.class_iri == DISEASE)
        assert gene.cardinality == 2
        assert disease.cardinality == 1

    def test_links_point_at_target_class(self):
        molecules = extract_molecule_templates(build_graph(), "src")
        gene = next(m for m in molecules if m.class_iri == GENE)
        assert any(
            link.predicate == ASSOC and link.target_class == DISEASE
            for link in gene.links
        )

    def test_predicate_cardinality(self):
        molecules = extract_molecule_templates(build_graph(), "src")
        gene = next(m for m in molecules if m.class_iri == GENE)
        assert gene.predicate_cardinality[SYMBOL] == 2
        assert gene.predicate_cardinality[ASSOC] == 1

    def test_untyped_subjects_grouped_synthetically(self):
        graph = Graph()
        graph.add(Triple(IRI("http://ex/x"), NAME, Literal("anonymous")))
        molecules = extract_molecule_templates(graph, "src")
        assert len(molecules) == 1
        assert "untyped" in molecules[0].class_iri.value

    def test_source_id_recorded(self):
        molecules = extract_molecule_templates(build_graph(), "mysource")
        assert all(m.source_id == "mysource" for m in molecules)

    def test_has_predicates(self):
        molecules = extract_molecule_templates(build_graph(), "src")
        gene = next(m for m in molecules if m.class_iri == GENE)
        assert gene.has_predicates({SYMBOL})
        assert not gene.has_predicates({NAME})


class TestCatalog:
    def build_catalog(self) -> MoleculeCatalog:
        catalog = MoleculeCatalog()
        catalog.add_all(extract_molecule_templates(build_graph(), "a"))
        catalog.add_all(extract_molecule_templates(build_graph(), "b"))
        return catalog

    def test_by_class(self):
        catalog = self.build_catalog()
        assert {m.source_id for m in catalog.by_class(GENE)} == {"a", "b"}

    def test_by_source(self):
        catalog = self.build_catalog()
        assert len(catalog.by_source("a")) == 2

    def test_sources_with_predicates(self):
        catalog = self.build_catalog()
        matches = catalog.sources_with_predicates({SYMBOL, ASSOC})
        assert set(matches) == {"a", "b"}

    def test_sources_with_unknown_predicate(self):
        catalog = self.build_catalog()
        assert catalog.sources_with_predicates({IRI("http://ex/vocab#nope")}) == {}

    def test_len(self):
        assert len(self.build_catalog()) == 4
