"""Cost-based planning: determinism, answer identity, and calibration."""

import pytest

from repro.benchmark.baseline import NETWORK_CHOICES
from repro.core.engine import FederatedEngine
from repro.core.policy import PlanPolicy
from repro.datasets import BENCHMARK_QUERIES
from repro.optimizer import analytic_constants, calibrate_constants

QUERIES = ["Q1", "Q2", "Q3", "Q4", "Q5"]


def make_engine(lake, policy, network="nodelay"):
    return FederatedEngine(
        lake, policy=policy, network=NETWORK_CHOICES[network]()
    )


@pytest.mark.parametrize("name", QUERIES)
def test_cost_plans_are_bit_reproducible(small_lslod_lake, name):
    query = BENCHMARK_QUERIES[name].text
    runs = []
    for __ in range(2):
        engine = make_engine(small_lslod_lake, PlanPolicy.cost())
        answers, stats, observation = engine.observe(query, seed=42)
        runs.append(
            (
                [tuple(sorted((k, v.n3()) for k, v in a.items())) for a in answers],
                stats.execution_time,
                observation.plan.root.explain(indent=1),
            )
        )
    assert runs[0] == runs[1]


@pytest.mark.parametrize("name", QUERIES)
@pytest.mark.parametrize("network", ["nodelay", "gamma3"])
def test_cost_policy_answers_match_heuristics(small_lslod_lake, name, network):
    query = BENCHMARK_QUERIES[name].text
    reference, __ = make_engine(
        small_lslod_lake, PlanPolicy.physical_design_aware(), network
    ).run(query, seed=42)
    cost_answers, __ = make_engine(
        small_lslod_lake, PlanPolicy.cost(), network
    ).run(query, seed=42)
    canon = lambda answers: sorted(
        tuple(sorted((k, v.n3()) for k, v in a.items())) for a in answers
    )
    assert canon(cost_answers) == canon(reference)


def test_observed_revision_invalidates_cost_plan_cache(small_lslod_lake):
    engine = FederatedEngine(
        small_lslod_lake,
        policy=PlanPolicy.cost(),
        network=NETWORK_CHOICES["nodelay"](),
        enable_plan_cache=True,
        enable_subresult_cache=False,
    )
    query = BENCHMARK_QUERIES["Q2"].text
    __, __, observation = engine.observe(query, seed=7)
    misses_before = engine.cache_stats()["plans"].misses
    engine.observe(query, seed=7)  # warm: same plan-cache key
    assert engine.cache_stats()["plans"].hits > 0
    ingested = engine.ingest_observation(observation)
    assert ingested > 0
    engine.observe(query, seed=7)  # revision changed: key differs, replan
    assert engine.cache_stats()["plans"].misses > misses_before


def test_calibrated_constants_stay_positive():
    import json
    import pathlib

    from repro.network.costmodel import CostModel

    cost_model = CostModel()
    network = NETWORK_CHOICES["gamma3"]()
    constants = analytic_constants(cost_model, network)
    assert constants.request > 0
    assert constants.transfer_per_row > 0
    assert constants.hash_work > 0
    baseline_path = pathlib.Path(__file__).resolve().parents[2] / "BENCH_plan_quality.json"
    if not baseline_path.exists():
        pytest.skip("no committed plan-quality baseline in this checkout")
    baseline = json.loads(baseline_path.read_text())
    calibrated = calibrate_constants(baseline, cost_model, network)
    assert calibrated.request > 0
    assert calibrated.transfer_per_row > 0
    # Calibration touches only the network-priced constants.
    assert calibrated.hash_work == constants.hash_work
