"""q-error edge cases feeding the calibrator (ISSUE-8 satellite).

Three ways an observed-stats ingest could silently diverge and corrupt
the feedback loop: zero-row operators (the 1-row floor), plan-cache-warm
re-runs, and batch-mode execution.  All must ingest the exact records a
cold row-mode run does.
"""

import json

from repro.benchmark.baseline import NETWORK_CHOICES
from repro.core.engine import FederatedEngine
from repro.core.policy import PlanPolicy
from repro.datasets import BENCHMARK_QUERIES
from repro.obs.profile import q_error
from repro.optimizer import ObservedStatistics

#: Q2 with an impossible constant: structurally identical, zero answers.
ZERO_ROW_QUERY = BENCHMARK_QUERIES["Q2"].text.replace(
    '"cancer"', '"no-such-disease-class"'
)


def observe(lake, query, *, policy=None, cache=False, exec="row", seed=7):
    engine = FederatedEngine(
        lake,
        policy=policy or PlanPolicy.cost(),
        network=NETWORK_CHOICES["nodelay"](),
        enable_plan_cache=cache,
        enable_subresult_cache=cache,
    )
    stream = engine.execute(query, seed=seed, observe=True, exec=exec)
    answers = stream.collect()
    return engine, answers, stream.observation


def ingested_records(observation, catalog_version):
    stats = ObservedStatistics()
    count = stats.ingest_observation(observation)
    payload = stats.to_payload(catalog_version)
    return count, json.dumps(payload, sort_keys=True, default=list)


def test_q_error_zero_row_floor():
    assert q_error(0.0, 0.0) == 1.0  # 0-vs-0 is a perfect estimate
    assert q_error(0.0, 5.0) == 5.0  # degrades like 1-vs-5
    assert q_error(3.0, 0.0) == 3.0
    assert q_error(0.5, 0.25) == 1.0  # sub-row values clamp, never blow up


def test_zero_row_query_ingests_zero_cardinalities(small_lslod_lake):
    engine, answers, observation = observe(small_lslod_lake, ZERO_ROW_QUERY)
    assert answers == []
    count = engine.ingest_observation(observation)
    assert count > 0
    # At least one signature recorded an actual of zero rows, and a
    # subsequent lookup must return that 0.0 (not be mistaken for "absent").
    recorded = [
        engine.observed_stats.lookup(signature)
        for signature in iter_signatures(observation)
    ]
    assert 0.0 in recorded
    assert all(rows is not None for rows in recorded)
    # q-errors stay finite on the replanned run.
    from repro.optimizer import run_with_feedback

    result = run_with_feedback(engine, ZERO_ROW_QUERY, seed=7)
    assert result.max_q_error >= 1.0
    assert result.answers == []


def iter_signatures(observation):
    found = []

    def visit(operator):
        if operator.stats_signature is not None:
            found.append(operator.stats_signature)
        for child in operator.children():
            visit(child)

    visit(observation.plan.root)
    return found


def test_plan_cache_warm_run_ingests_identically(small_lslod_lake):
    version = small_lslod_lake.catalog_version()
    query = BENCHMARK_QUERIES["Q2"].text
    engine = FederatedEngine(
        small_lslod_lake,
        policy=PlanPolicy.cost(),
        network=NETWORK_CHOICES["nodelay"](),
        enable_plan_cache=True,
        enable_subresult_cache=False,
    )
    cold = engine.execute(query, seed=7, observe=True)
    cold.collect()
    warm = engine.execute(query, seed=7, observe=True)
    warm.collect()
    assert engine.cache_stats()["plans"].hits > 0
    cold_count, cold_payload = ingested_records(cold.observation, version)
    warm_count, warm_payload = ingested_records(warm.observation, version)
    assert cold_count == warm_count > 0
    assert cold_payload == warm_payload


def test_batch_exec_ingests_identically_to_row(small_lslod_lake):
    version = small_lslod_lake.catalog_version()
    query = BENCHMARK_QUERIES["Q2"].text
    __, row_answers, row_obs = observe(small_lslod_lake, query, exec="row")
    __, batch_answers, batch_obs = observe(small_lslod_lake, query, exec="batch")
    assert len(row_answers) == len(batch_answers)
    row_count, row_payload = ingested_records(row_obs, version)
    batch_count, batch_payload = ingested_records(batch_obs, version)
    assert row_count == batch_count > 0
    assert row_payload == batch_payload


def test_heuristic_policy_ingests_match_cost_policy(small_lslod_lake):
    """Observed-stats signatures are placement-invariant: the same query
    observed under a heuristic policy feeds the cost planner the same
    star-level cardinalities (join trees may differ, so only the shared
    signatures are compared)."""
    version = small_lslod_lake.catalog_version()
    query = BENCHMARK_QUERIES["Q2"].text
    __, __, cost_obs = observe(small_lslod_lake, query)
    __, __, aware_obs = observe(
        small_lslod_lake, query, policy=PlanPolicy.physical_design_aware()
    )
    cost_stats = ObservedStatistics()
    cost_stats.ingest_observation(cost_obs)
    aware_stats = ObservedStatistics()
    aware_stats.ingest_observation(aware_obs)
    shared = set(map(tuple, (s for s in iter_signatures(cost_obs)))) & set(
        map(tuple, (s for s in iter_signatures(aware_obs)))
    )
    assert shared
    for signature in shared:
        assert cost_stats.lookup(signature) == aware_stats.lookup(signature)
