"""The observe -> ingest -> replan feedback loop, deterministically."""

from repro.benchmark.baseline import NETWORK_CHOICES
from repro.core.engine import FederatedEngine
from repro.core.policy import PlanPolicy
from repro.datasets import BENCHMARK_QUERIES
from repro.optimizer import DEFAULT_Q_ERROR_THRESHOLD, run_with_feedback

QUERY = BENCHMARK_QUERIES["Q2"].text


def make_engine(lake, network="gamma3"):
    return FederatedEngine(
        lake, policy=PlanPolicy.cost(), network=NETWORK_CHOICES[network]()
    )


def signatures_of(observation):
    found = []

    def visit(operator):
        if operator.stats_signature is not None:
            found.append(operator.stats_signature)
        for child in operator.children():
            visit(child)

    visit(observation.plan.root)
    return found


def test_misestimate_triggers_ingest_and_replans_better(small_lslod_lake):
    # Learn the query's signatures from a throwaway engine, then plant a
    # grossly wrong cardinality for every one of them on a fresh engine.
    scout = make_engine(small_lslod_lake)
    __, __, observation = scout.observe(QUERY, seed=7)
    signatures = signatures_of(observation)
    assert signatures, "cost plans must stamp stats signatures"

    engine = make_engine(small_lslod_lake)
    for index, signature in enumerate(signatures):
        engine.observed_stats.record(signature, 1.0 if index % 2 else 250_000.0)

    first = run_with_feedback(engine, QUERY, seed=7)
    assert first.max_q_error >= DEFAULT_Q_ERROR_THRESHOLD
    assert first.ingested > 0
    assert first.replanned
    # The ingest overwrote the planted lies with observed actuals.
    second = run_with_feedback(engine, QUERY, seed=7)
    canon = lambda answers: sorted(
        tuple(sorted((k, v.n3()) for k, v in a.items())) for a in answers
    )
    assert canon(second.answers) == canon(first.answers)
    assert second.max_q_error < first.max_q_error
    assert second.execution_time <= first.execution_time
    # Well-estimated now: below the threshold, no further ingest.
    assert second.max_q_error < DEFAULT_Q_ERROR_THRESHOLD
    assert not second.replanned


def test_feedback_loop_is_deterministic(small_lslod_lake):
    outcomes = []
    for __ in range(2):
        engine = make_engine(small_lslod_lake)
        first = run_with_feedback(engine, QUERY, seed=7)
        second = run_with_feedback(engine, QUERY, seed=7)
        outcomes.append(
            (
                first.describe(),
                second.describe(),
                first.answers,
                second.answers,
                engine.observed_stats.revision,
            )
        )
    assert outcomes[0] == outcomes[1]


def test_clean_run_does_not_ingest(small_lslod_lake):
    engine = make_engine(small_lslod_lake)
    # Seed the store from one observed run so estimates match actuals.
    __, __, observation = engine.observe(QUERY, seed=7)
    engine.ingest_observation(observation)
    result = run_with_feedback(engine, QUERY, seed=7)
    assert result.max_q_error < DEFAULT_Q_ERROR_THRESHOLD
    assert result.ingested == 0
    assert not result.replanned
