"""The optimizer's statistics subsystem: catalog snapshots, observed
cardinalities, persistence round-trips, and catalog-version staleness."""

import json

import pytest

from repro.optimizer import (
    CatalogStatistics,
    ObservedStatistics,
    STATS_FORMAT_VERSION,
    StaleStatisticsError,
    signature_key,
)


def test_catalog_statistics_collects_every_table(small_lslod_lake):
    stats = CatalogStatistics.collect(small_lslod_lake)
    assert stats.catalog_version == small_lslod_lake.catalog_version()
    assert len(stats.tables) > 0
    for (source_id, table), info in stats.tables.items():
        assert stats.table_rows(source_id, table) == info["rows"] >= 0


def test_catalog_statistics_round_trips(small_lslod_lake):
    stats = CatalogStatistics.collect(small_lslod_lake)
    payload = stats.to_payload()
    assert payload["kind"] == "repro-catalog-stats"
    assert payload["version"] == STATS_FORMAT_VERSION
    # JSON-serializable as-is (the `repro stats` persistence contract).
    restored = CatalogStatistics.from_payload(json.loads(json.dumps(payload)))
    assert restored.catalog_version == stats.catalog_version
    assert restored.tables == stats.tables
    assert restored.molecules == stats.molecules


def test_catalog_statistics_deterministic(small_lslod_lake):
    first = CatalogStatistics.collect(small_lslod_lake).to_payload()
    second = CatalogStatistics.collect(small_lslod_lake).to_payload()
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


def test_column_ndv_floored_at_one(small_lslod_lake):
    stats = CatalogStatistics.collect(small_lslod_lake)
    for (source_id, table), info in stats.tables.items():
        for column in info.get("columns", {}):
            assert stats.column_ndv(source_id, table, column) >= 1.0


def test_observed_statistics_record_and_revision():
    stats = ObservedStatistics()
    signature = ("star", (("p1", "o"), ("p2", None)))
    assert stats.lookup(signature) is None
    assert stats.revision == 0
    stats.record(signature, 42.0)
    assert stats.lookup(signature) == 42.0
    first_revision = stats.revision
    assert first_revision > 0
    # Re-recording the same value is a no-op for the revision...
    stats.record(signature, 42.0)
    assert stats.revision == first_revision
    # ...but a changed value bumps it (cached cost plans must invalidate).
    stats.record(signature, 7.0)
    assert stats.lookup(signature) == 7.0
    assert stats.revision > first_revision
    assert len(stats) == 1


def test_observed_statistics_round_trip(small_lslod_lake):
    version = small_lslod_lake.catalog_version()
    stats = ObservedStatistics()
    stats.record(("star", (("a", None),)), 3.0)
    stats.record(("unit", "x"), 0.0)
    payload = json.loads(json.dumps(stats.to_payload(version)))
    restored = ObservedStatistics.from_payload(payload, catalog_version=version)
    assert restored.lookup(("star", (("a", None),))) == 3.0
    assert restored.lookup(("unit", "x")) == 0.0
    assert len(restored) == len(stats)


def test_observed_statistics_staleness(small_lslod_lake):
    version = small_lslod_lake.catalog_version()
    payload = ObservedStatistics().to_payload(version)
    mutated = tuple(list(version) + [("extra-source", 99)])
    with pytest.raises(StaleStatisticsError):
        ObservedStatistics.from_payload(payload, catalog_version=mutated)
    # Without a version to verify against, loading is permissive.
    ObservedStatistics.from_payload(payload)


def test_signature_key_is_compact_and_stable():
    signature = ("join", ("star", ("a",)), ("star", ("b",)))
    key = signature_key(signature)
    assert key == signature_key(("join", ("star", ("a",)), ("star", ("b",))))
    assert " " not in key
