"""EXPLAIN ANALYZE: q-error math, hotspot linkage, runtime invariance."""

from __future__ import annotations

import json

import pytest

from repro.core.engine import FederatedEngine
from repro.core.policy import PlanPolicy
from repro.datasets import BENCHMARK_QUERIES
from repro.network.delays import NetworkSetting
from repro.obs import ANALYZE_SCHEMA, AnalyzeReport, q_error
from repro.obs.schema import validate_json_schema

from ..conftest import TINY_QUERY


class TestQError:
    def test_overestimate(self):
        assert q_error(100.0, 10.0) == pytest.approx(10.0)

    def test_underestimate_is_symmetric(self):
        assert q_error(10.0, 100.0) == pytest.approx(10.0)

    def test_exact_estimate_is_one(self):
        assert q_error(42.0, 42.0) == 1.0

    def test_never_below_one(self):
        assert q_error(3.0, 4.0) >= 1.0
        assert q_error(4.0, 3.0) >= 1.0

    def test_zero_actual_is_smoothed(self):
        # Both sides floor at one row, so an empty actual result does not
        # divide by zero and a (0 est, 0 actual) pair is a perfect estimate.
        assert q_error(10.0, 0.0) == pytest.approx(10.0)
        assert q_error(0.0, 0.0) == 1.0


class TestAnalyzeReport:
    def test_reports_estimates_and_q_errors(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        answers, stats, report = engine.analyze(TINY_QUERY)
        assert report.answers == len(answers)
        assert report.execution_time == stats.execution_time
        estimated = [op for op in report.operators if op.estimated_rows is not None]
        assert estimated, "planner estimates should reach the analyze report"
        for op in estimated:
            assert op.q_error == pytest.approx(
                q_error(op.estimated_rows, op.actual_rows)
            )
        assert report.max_q_error >= 1.0
        assert report.max_q_error >= report.mean_q_error

    def test_hotspots_rank_worst_estimates_first(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        __, __, report = engine.analyze(TINY_QUERY)
        q_errors = [hotspot.q_error for hotspot in report.hotspots]
        assert q_errors == sorted(q_errors, reverse=True)

    def test_hotspots_link_heuristic_decisions(self, small_lslod_lake):
        # Q2 is Heuristic 1's showcase: the merged service operator must
        # carry the merge decision that produced it.
        engine = FederatedEngine(small_lslod_lake)
        __, __, report = engine.analyze(BENCHMARK_QUERIES["Q2"].text)
        decisions = [
            decision
            for hotspot in report.hotspots
            for decision in hotspot.decisions
        ]
        assert any(d.heuristic == "H1" for d in decisions)

    def test_render_mentions_q_errors(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        __, __, report = engine.analyze(TINY_QUERY)
        text = report.render()
        assert "Explain Analyze" in text
        assert "q-error" in text
        assert "est=" in text

    def test_schema_and_round_trip(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        __, __, report = engine.analyze(TINY_QUERY)
        payload = report.to_dict()
        assert validate_json_schema(payload, ANALYZE_SCHEMA) == []
        recovered = AnalyzeReport.from_dict(json.loads(json.dumps(payload)))
        assert recovered.to_dict() == payload


class TestRuntimeInvariance:
    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4", "Q5"])
    def test_identical_numbers_under_all_runtimes(self, small_lslod_lake, name):
        """Cardinalities, estimates and q-errors are facts about the plan and
        the data, so the three runtimes must agree exactly."""
        text = BENCHMARK_QUERIES[name].text
        per_runtime = {}
        for runtime in ("sequential", "event", "thread"):
            engine = FederatedEngine(
                small_lslod_lake,
                policy=PlanPolicy.physical_design_aware(),
                network=NetworkSetting.gamma1(),
                runtime=runtime,
            )
            __, __, report = engine.analyze(text, seed=7, runtime=runtime)
            per_runtime[runtime] = [
                (op.label, op.actual_rows, op.estimated_rows, op.q_error)
                for op in report.operators
            ]
        assert per_runtime["sequential"] == per_runtime["event"]
        assert per_runtime["sequential"] == per_runtime["thread"]

    def test_analyze_does_not_change_answers(self, small_lslod_lake):
        """Observed-vs-plain executions stay bit-identical."""
        text = BENCHMARK_QUERIES["Q2"].text
        engine = FederatedEngine(
            small_lslod_lake, network=NetworkSetting.gamma2()
        )
        plain_answers, plain_stats = engine.run(text, seed=7)
        analyzed_answers, analyzed_stats, __ = engine.analyze(text, seed=7)
        assert analyzed_answers == plain_answers
        assert analyzed_stats.execution_time == plain_stats.execution_time
        assert analyzed_stats.trace == plain_stats.trace
