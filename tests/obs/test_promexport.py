"""Tests for the Prometheus exposition renderer and its strict parser."""

import math

import pytest

from repro.obs import (
    ExpositionError,
    LogBucketHistogram,
    SLOAccountant,
    parse_exposition,
    render_exposition,
    validate_exposition,
)


def sample_stats():
    accountant = SLOAccountant()
    for tenant, execution in (("acme", 0.5), ("globex", 2.0)):
        accountant.note_submit(tenant)
        accountant.note_start(tenant, 0.1)
        accountant.note_done(tenant, execution, execution + 0.1)
    accountant.note_submit("acme")
    accountant.note_shed("acme", "tenant-queue-full")
    return {
        "stats_version": 2,
        "admission": {"running": 1, "queued": 2},
        "slo": accountant.snapshot(
            cache_stats={
                "plans": {"hits": 4, "misses": 2, "evictions": 1},
                "result": {"hits": 0, "misses": 3, "evictions": 0},
            }
        ),
    }


class TestRenderer:
    def test_output_parses_cleanly(self):
        text = render_exposition(sample_stats())
        assert validate_exposition(text) > 10

    def test_counters_per_tenant(self):
        families = parse_exposition(render_exposition(sample_stats()))
        submitted = families["repro_requests_submitted_total"]
        assert submitted["type"] == "counter"
        values = {
            labels["tenant"]: value for __, labels, value in submitted["samples"]
        }
        assert values == {"acme": 2, "globex": 1}

    def test_histograms_are_cumulative_with_inf(self):
        families = parse_exposition(render_exposition(sample_stats()))
        family = families["repro_end_to_end_seconds"]
        assert family["type"] == "histogram"
        acme_buckets = [
            (labels["le"], value)
            for name, labels, value in family["samples"]
            if name.endswith("_bucket") and labels.get("tenant") == "acme"
        ]
        assert acme_buckets[-1][0] == "+Inf"
        counts = [value for __, value in acme_buckets]
        assert counts == sorted(counts)
        count = next(
            value
            for name, labels, value in family["samples"]
            if name.endswith("_count") and labels.get("tenant") == "acme"
        )
        assert counts[-1] == count == 1

    def test_global_histogram_uses_all_label(self):
        families = parse_exposition(render_exposition(sample_stats()))
        family = families["repro_execution_seconds"]
        tenants = {
            labels.get("tenant")
            for __, labels, __v in family["samples"]
        }
        assert "__all__" in tenants

    def test_cache_families(self):
        families = parse_exposition(render_exposition(sample_stats()))
        hits = {
            labels["cache"]: value
            for __, labels, value in families["repro_cache_hits_total"]["samples"]
        }
        assert hits == {"plans": 4, "result": 0}
        ratios = {
            labels["cache"]: value
            for __, labels, value in families["repro_cache_hit_ratio"]["samples"]
        }
        assert ratios["plans"] == pytest.approx(4 / 6, abs=1e-6)

    def test_rejects_stats_without_slo(self):
        with pytest.raises(ValueError, match="no 'slo' section"):
            render_exposition({"stats_version": 1})

    def test_rendering_is_deterministic(self):
        stats = sample_stats()
        assert render_exposition(stats) == render_exposition(stats)


class TestParserRejections:
    def test_bad_metric_name(self):
        with pytest.raises(ExpositionError, match="invalid metric name"):
            parse_exposition("# TYPE 9bad counter\n9bad 1\n")

    def test_bad_sample_line(self):
        with pytest.raises(ExpositionError, match="malformed sample"):
            parse_exposition("no value here!\n")

    def test_non_float_value(self):
        with pytest.raises(ExpositionError, match="not a float"):
            parse_exposition("metric_a not-a-number\n")

    def test_malformed_labels(self):
        with pytest.raises(ExpositionError, match="malformed label"):
            parse_exposition('metric_a{tenant=unquoted} 1\n')

    def test_duplicate_labels(self):
        with pytest.raises(ExpositionError, match="duplicate label"):
            parse_exposition('metric_a{t="1",t="2"} 1\n')

    def test_unknown_type(self):
        with pytest.raises(ExpositionError, match="unknown metric type"):
            parse_exposition("# TYPE metric_a flavor\nmetric_a 1\n")

    def test_histogram_missing_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            "h_sum 1\n"
            "h_count 1\n"
        )
        with pytest.raises(ExpositionError, match=r"missing \+Inf"):
            parse_exposition(text)

    def test_histogram_non_monotone_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1\n"
            "h_count 5\n"
        )
        with pytest.raises(ExpositionError, match="non-monotone"):
            parse_exposition(text)

    def test_histogram_count_disagrees_with_inf(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1\n"
            "h_count 7\n"
        )
        with pytest.raises(ExpositionError, match=r"\+Inf bucket != _count"):
            parse_exposition(text)


class TestParserAcceptance:
    def test_escaped_label_values_round_trip(self):
        text = 'metric_a{path="a\\\\b\\"c\\nd"} 1\n'
        families = parse_exposition(text)
        __, labels, value = families["metric_a"]["samples"][0]
        assert labels["path"] == 'a\\b"c\nd'
        assert value == 1.0

    def test_special_float_values(self):
        families = parse_exposition("metric_a +Inf\nmetric_b -Inf\nmetric_c NaN\n")
        assert families["metric_a"]["samples"][0][2] == math.inf
        assert families["metric_b"]["samples"][0][2] == -math.inf
        assert math.isnan(families["metric_c"]["samples"][0][2])

    def test_comments_and_blank_lines_ignored(self):
        text = "# just a comment\n\nmetric_a 1\n\n"
        assert validate_exposition(text) == 1

    def test_empty_histograms_still_valid(self):
        accountant = SLOAccountant()
        accountant.note_submit("quiet")  # submitted but never completed
        stats = {"stats_version": 2, "slo": accountant.snapshot()}
        assert validate_exposition(render_exposition(stats)) > 0

    def test_timestamped_samples_accepted(self):
        families = parse_exposition("metric_a 1 1700000000\n")
        assert families["metric_a"]["samples"][0][2] == 1.0


def test_render_uses_histogram_bounds_exactly():
    histogram = LogBucketHistogram()
    histogram.observe(2.0)  # exactly a bound: le="2" bucket must contain it
    accountant = SLOAccountant()
    accountant.note_submit("t")
    accountant.note_start("t", 0.0)
    accountant.note_done("t", 2.0, 2.0)
    text = render_exposition({"stats_version": 2, "slo": accountant.snapshot()})
    families = parse_exposition(text)
    buckets = {
        labels["le"]: value
        for name, labels, value in families["repro_execution_seconds"]["samples"]
        if name.endswith("_bucket") and labels.get("tenant") == "t"
    }
    assert buckets["2"] == 1  # le-semantics: on-boundary value included
    assert buckets["1"] == 0
