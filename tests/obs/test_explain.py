"""Tests for the heuristic-decision explain report."""

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.obs import explain_plan

from ..conftest import TINY_QUERY

FILTERED_QUERY = """
PREFIX v: <http://ex/vocab#>
SELECT ?g ?sym ?dn WHERE {
  ?g a v:Gene ; v:geneSymbol ?sym ; v:associatedDisease ?d .
  ?d a v:Disease ; v:diseaseName ?dn .
  FILTER(CONTAINS(?dn, "cancer"))
}
"""


class TestExplain:
    def test_lists_every_h1_decision(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        plan = engine.plan(TINY_QUERY)
        report = explain_plan(plan)
        assert len(report.h1_decisions()) == len(plan.merge_decisions)
        assert report.h1_decisions()  # the tiny query has a merge opportunity
        for decision in report.h1_decisions():
            assert decision.heuristic == "H1"
            assert decision.reason

    def test_lists_every_h2_decision_with_reason(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        plan = engine.plan(FILTERED_QUERY)
        report = explain_plan(plan)
        assert len(report.h2_decisions()) == len(plan.filter_decisions)
        assert report.h2_decisions()
        for decision in report.h2_decisions():
            assert decision.heuristic == "H2"
            assert decision.outcome in ("source", "engine")
            assert decision.reason

    def test_declined_merge_shows_kept_separate(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, policy=PlanPolicy.physical_design_unaware())
        report = explain_plan(engine.plan(TINY_QUERY))
        for decision in report.h1_decisions():
            assert decision.outcome in ("merged", "kept separate")

    def test_render_mentions_both_heuristics_and_counts(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma2())
        text = explain_plan(engine.plan(FILTERED_QUERY)).render()
        assert "Heuristic 1" in text
        assert "Heuristic 2" in text
        assert "at source" in text
        assert "—" in text  # every decision line carries its reason

    def test_to_dict_round_trips_decisions(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        report = explain_plan(engine.plan(FILTERED_QUERY))
        payload = report.to_dict()
        assert payload["policy"] == report.policy
        assert len(payload["decisions"]) == len(report.decisions)
        assert all(
            set(entry)
            == {
                "heuristic",
                "subject",
                "taken",
                "outcome",
                "reason",
                "estimate",
                "alternative_estimate",
            }
            for entry in payload["decisions"]
        )

    def test_payload_validates_and_round_trips_through_json(self, tiny_lake):
        import json

        from repro.obs import EXPLAIN_SCHEMA
        from repro.obs.explain import ExplainReport
        from repro.obs.schema import validate_json_schema

        engine = FederatedEngine(tiny_lake)
        report = explain_plan(engine.plan(FILTERED_QUERY))
        payload = report.to_dict()
        assert validate_json_schema(payload, EXPLAIN_SCHEMA) == []
        recovered = ExplainReport.from_dict(json.loads(json.dumps(payload)))
        assert recovered.to_dict() == payload
        assert recovered.render() == report.render()

    def test_schema_rejects_malformed_decisions(self, tiny_lake):
        from repro.obs import EXPLAIN_SCHEMA
        from repro.obs.schema import validate_json_schema

        engine = FederatedEngine(tiny_lake)
        payload = explain_plan(engine.plan(FILTERED_QUERY)).to_dict()
        payload["decisions"].append({"heuristic": "H3", "subject": "?x"})
        assert validate_json_schema(payload, EXPLAIN_SCHEMA)
