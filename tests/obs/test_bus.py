"""Tests for the trace bus: spans, instants, canonical ordering."""

import threading

from repro.obs import (
    CATEGORY_PLAN,
    CATEGORY_WRAPPER,
    ENGINE_TRACK,
    TraceBus,
)


class TestSpans:
    def test_span_records_fields_and_args(self):
        bus = TraceBus()
        span = bus.add_span("SQL kegg", CATEGORY_WRAPPER, "kegg", 1.0, 3.5, rows=7)
        assert span.duration == 2.5
        assert span.args_dict() == {"rows": 7}
        assert bus.spans() == [span]

    def test_spans_return_canonical_order_not_insertion_order(self):
        bus = TraceBus()
        late = bus.add_span("b", CATEGORY_WRAPPER, "t", 2.0, 3.0)
        early = bus.add_span("a", CATEGORY_WRAPPER, "t", 0.0, 1.0)
        assert bus.spans() == [early, late]

    def test_equal_start_ties_break_on_track_then_name(self):
        bus = TraceBus()
        bus.add_span("z", CATEGORY_WRAPPER, "track-b", 0.0, 1.0)
        bus.add_span("m", CATEGORY_WRAPPER, "track-a", 0.0, 1.0)
        bus.add_span("a", CATEGORY_WRAPPER, "track-a", 0.0, 1.0)
        assert [(s.track, s.name) for s in bus.spans()] == [
            ("track-a", "a"),
            ("track-a", "m"),
            ("track-b", "z"),
        ]

    def test_concurrent_appends_are_all_kept(self):
        bus = TraceBus()

        def worker(offset):
            for i in range(50):
                bus.add_span(f"s{offset}-{i}", CATEGORY_WRAPPER, "t", float(i), i + 1.0)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(bus.spans()) == 200


class TestInstants:
    def test_instants_keep_emission_order(self):
        bus = TraceBus()
        bus.add_instant("parse", CATEGORY_PLAN)
        bus.add_instant("decompose", CATEGORY_PLAN, kind="star")
        bus.add_instant("h1-decision", CATEGORY_PLAN, merged=True)
        assert [i.name for i in bus.instants()] == [
            "parse",
            "decompose",
            "h1-decision",
        ]
        assert bus.instants()[1].args_dict() == {"kind": "star"}

    def test_instants_default_to_engine_track_at_time_zero(self):
        bus = TraceBus()
        instant = bus.add_instant("parse", CATEGORY_PLAN)
        assert instant.track == ENGINE_TRACK
        assert instant.timestamp == 0.0


class TestTracks:
    def test_engine_track_always_first(self):
        bus = TraceBus()
        bus.add_span("w", CATEGORY_WRAPPER, "kegg", 0.0, 1.0)
        assert bus.tracks()[0] == ENGINE_TRACK
        assert "kegg" in bus.tracks()

    def test_tracks_deduplicate(self):
        bus = TraceBus()
        bus.add_span("a", CATEGORY_WRAPPER, "kegg", 0.0, 1.0)
        bus.add_span("b", CATEGORY_WRAPPER, "kegg", 1.0, 2.0)
        bus.add_instant("parse", CATEGORY_PLAN)
        assert bus.tracks() == [ENGINE_TRACK, "kegg"]
