"""Tests for the metrics registry."""

import pytest

from repro.obs import MetricsRegistry


class TestCounters:
    def test_inc_and_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("answers").inc()
        registry.counter("answers").inc(3)
        assert registry.counter("answers").value == 4

    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        registry.counter("source_requests", source="kegg").inc()
        registry.counter("source_requests", source="drugbank").inc(2)
        assert registry.counter("source_requests", source="kegg").value == 1
        assert registry.counter("source_requests", source="drugbank").value == 2

    def test_counters_reject_negative_increments(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("answers").inc(-1)


class TestGaugesAndHistograms:
    def test_gauge_set_overwrites(self):
        registry = MetricsRegistry()
        registry.gauge("execution_time_seconds").set(1.5)
        registry.gauge("execution_time_seconds").set(0.25)
        assert registry.gauge("execution_time_seconds").value == 0.25

    def test_histogram_summary_statistics(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("delay")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.minimum == 1.0
        assert histogram.maximum == 3.0
        assert histogram.mean == 2.0

    def test_empty_histogram_mean_is_zero(self):
        registry = MetricsRegistry()
        assert registry.histogram("delay").mean == 0.0


class TestOutput:
    def test_collect_sorted_by_name_then_labels(self):
        registry = MetricsRegistry()
        registry.counter("b_metric").inc()
        registry.counter("a_metric", source="z").inc()
        registry.counter("a_metric", source="a").inc()
        names = [(inst.name, inst.labels) for inst in registry.collect()]
        assert names == sorted(names)

    def test_to_dict_shapes(self):
        registry = MetricsRegistry()
        registry.counter("hits", outcome="hit").inc(2)
        registry.histogram("delay").observe(0.5)
        dump = registry.to_dict()
        counter = next(entry for entry in dump if entry["kind"] == "counter")
        histogram = next(entry for entry in dump if entry["kind"] == "histogram")
        assert counter == {
            "name": "hits",
            "kind": "counter",
            "labels": {"outcome": "hit"},
            "value": 2.0,
        }
        assert histogram["count"] == 1
        assert histogram["mean"] == 0.5

    def test_render_prometheus_flavour(self):
        registry = MetricsRegistry()
        registry.counter("hits", outcome="hit").inc(2)
        registry.gauge("time").set(1.5)
        text = registry.render()
        assert 'hits{outcome="hit"} 2' in text
        assert "time 1.5" in text
