"""Exposition-format edge cases the round-trip tests don't reach."""

import math

import pytest

from repro.obs import (
    ExpositionError,
    LogBucketHistogram,
    SLOAccountant,
    parse_exposition,
    render_exposition,
)
from repro.obs.promexport import _escape_label, _unescape_label_value


class TestLabelEscaping:
    @pytest.mark.parametrize(
        "value",
        [
            'line one\nline two',
            'backslash \\ alone',
            'a\\nb',  # literal backslash then n — NOT a newline
            'quote " inside',
            '\\\\n',  # two backslashes then n
            'trailing backslash \\',
            '\\n',  # literal backslash-n, escapes to \\n
            'mixed \\ and \n and "',
        ],
    )
    def test_escape_unescape_round_trip(self, value):
        assert _unescape_label_value(_escape_label(value)) == value

    def test_escaped_values_survive_a_full_parse(self):
        value = 'path\\to\nthing "quoted" a\\nb'
        line = f'metric{{label="{_escape_label(value)}"}} 1\n'
        families = parse_exposition(line)
        __, labels, __v = families["metric"]["samples"][0]
        assert labels["label"] == value

    def test_literal_backslash_n_is_not_a_newline(self):
        # The regression the scanner fixes: a\\nb is backslash-escape of
        # backslash followed by a literal n, not an escaped newline.
        assert _unescape_label_value("a\\\\nb") == "a\\nb"
        assert _unescape_label_value("a\\nb") == "a\nb"

    def test_unknown_escape_is_kept_verbatim(self):
        assert _unescape_label_value("a\\tb") == "a\\tb"

    def test_malformed_label_segment_raises(self):
        with pytest.raises(ExpositionError, match="malformed label"):
            parse_exposition('metric{label=unquoted} 1\n')

    def test_duplicate_label_raises(self):
        with pytest.raises(ExpositionError, match="duplicate label"):
            parse_exposition('metric{a="1",a="2"} 1\n')


class TestHistogramEdges:
    def test_exemplar_free_inf_bucket_parses(self):
        text = (
            "# HELP h x\n"
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 2\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 2.5\n"
            "h_count 3\n"
        )
        families = parse_exposition(text)
        bounds = {
            labels["le"]: value
            for name, labels, value in families["h"]["samples"]
            if name == "h_bucket"
        }
        assert bounds["+Inf"] == 3

    def test_inf_bucket_count_disagreement_raises(self):
        text = (
            "# HELP h x\n"
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_count 4\n"
        )
        with pytest.raises(ExpositionError, match=r"\+Inf bucket != _count"):
            parse_exposition(text)

    def test_missing_inf_bucket_raises(self):
        text = "# HELP h x\n# TYPE h histogram\n" 'h_bucket{le="1"} 2\n'
        with pytest.raises(ExpositionError, match=r"missing \+Inf"):
            parse_exposition(text)

    def test_empty_histogram_renders_inf_bucket_without_samples(self):
        # A never-observed histogram still exposes the +Inf bucket so the
        # family is scrapeable (and the parser's invariants hold).
        histogram = LogBucketHistogram()
        buckets = histogram.cumulative_buckets()
        assert buckets[-1][0] == math.inf
        assert buckets[-1][1] == 0


class TestEmptyRegistry:
    def test_empty_accountant_renders_and_parses(self):
        stats = {"stats_version": 3, "slo": SLOAccountant().snapshot()}
        text = render_exposition(stats)
        families = parse_exposition(text)
        # No tenants, no observations: the families still render (with
        # zero-count histograms) and the strict parser accepts them all.
        assert "repro_stats_version" in families
        blame_counts = [
            value
            for name, __, value in families["repro_blame_seconds"]["samples"]
            if name == "repro_blame_seconds_count"
        ]
        assert blame_counts and all(count == 0 for count in blame_counts)
        for family in families.values():
            assert isinstance(family["samples"], list)

    def test_blame_families_appear_once_observed(self):
        accountant = SLOAccountant()
        accountant.note_submit("acme")
        accountant.note_start("acme", 0.0)
        accountant.note_execution_profile(
            "acme", 0.2, 0.7, 0.1, {"drugbank": 0.7}
        )
        accountant.note_done("acme", 1.0, 1.0)
        text = render_exposition({"stats_version": 3, "slo": accountant.snapshot()})
        families = parse_exposition(text)
        blame_labels = {
            labels["class"]
            for name, labels, __ in families["repro_blame_seconds"]["samples"]
            if name == "repro_blame_seconds_count"
        }
        assert blame_labels == {
            "engine_work",
            "network_delay",
            "cache_miss_penalty",
            "queue_wait",
        }
        source_labels = {
            labels["source"]
            for name, labels, __ in families[
                "repro_source_network_delay_seconds"
            ]["samples"]
            if name == "repro_source_network_delay_seconds_count"
        }
        assert source_labels == {"drugbank"}

    def test_rejects_document_without_slo(self):
        with pytest.raises(ValueError, match="no 'slo' section"):
            render_exposition({"stats_version": 3})
