"""The regression-attribution doctor: clean baselines, injected faults."""

import pytest

from repro.datasets import BENCHMARK_QUERIES
from repro.benchmark.critpath import build_critpath_baseline
from repro.obs import DOCTOR_SCHEMA, DoctorReport, Finding, diagnose
from repro.obs.doctor import (
    check_cache,
    check_heuristics,
    check_q_error,
    check_slo_burn,
)
from repro.obs.schema import validate_json_schema


@pytest.fixture(scope="module")
def small_baseline(small_lslod_lake):
    """A one-query attribution baseline over the module-scoped lake."""
    return build_critpath_baseline(
        small_lslod_lake,
        {"Q1": BENCHMARK_QUERIES["Q1"].text},
        scale=0.1,
        data_seed=42,
        run_seed=7,
        networks=("gamma3",),
        runtimes=("sequential", "event"),
    )


class TestCritpathCheck:
    def test_clean_on_its_own_baseline(self, small_lslod_lake, small_baseline):
        report = diagnose(lake=small_lslod_lake, critpath_baseline=small_baseline)
        assert report.checks == ["critpath"]
        assert report.findings == []
        assert report.exit_code("critical") == 0
        assert report.exit_code("info") == 0

    def test_injected_delay_doubling_is_attributed_to_network(
        self, small_lslod_lake, small_baseline
    ):
        """The acceptance scenario: double every gamma3 delay sample and
        the doctor must blame network_delay on the affected source."""
        report = diagnose(
            lake=small_lslod_lake,
            critpath_baseline=small_baseline,
            delay_scale=2.0,
        )
        assert report.findings, "doubled delays must surface findings"
        for finding in report.findings:
            assert finding.check == "critpath"
            assert finding.code == "network-delay-regression"
            assert finding.severity == "critical"
            evidence = finding.evidence
            assert evidence["dominant_class"] == "network_delay"
            assert evidence["affected_source"] is not None
            # The blamed source is the one whose delay delta is largest.
            deltas = evidence["source_network_delay_deltas"]
            assert evidence["affected_source"] == max(deltas, key=deltas.get)
            assert evidence["relative_drift"] > 0.10
            assert evidence["affected_source"] in finding.title
        assert report.exit_code("critical") == 1

    def test_tampered_baseline_is_critical_attribution_drift(
        self, small_lslod_lake, small_baseline
    ):
        import copy

        tampered = copy.deepcopy(small_baseline)
        key = next(iter(tampered["cells"]))
        tampered["cells"][key]["exact_classes"]["engine_work"] = "1/3"
        report = diagnose(lake=small_lslod_lake, critpath_baseline=tampered)
        codes = {finding.code for finding in report.findings}
        assert codes == {"attribution-drift"}
        assert all(f.severity == "critical" for f in report.findings)

    def test_axis_filters_narrow_the_grid(self, small_lslod_lake, small_baseline):
        report = diagnose(
            lake=small_lslod_lake,
            critpath_baseline=small_baseline,
            delay_scale=2.0,
            runtimes=["event"],
        )
        cells = {finding.evidence["cell"] for finding in report.findings}
        assert cells == {"Q1|aware|gamma3|event"}


class TestSnapshotChecks:
    def queue_dominated_slo(self):
        return {
            "tenants": {
                "acme": {
                    "queue_wait": {"count": 5, "p50": 0.4, "p90": 0.9},
                    "execution": {"count": 5, "p50": 0.1, "p90": 0.2},
                    "starts": 5,
                }
            }
        }

    def test_slo_burn_flags_queue_dominated_tenants(self):
        report = DoctorReport()
        check_slo_burn(report, self.queue_dominated_slo())
        assert [f.code for f in report.findings] == ["queue-dominated"]
        assert report.findings[0].severity == "warning"
        assert report.findings[0].evidence["tenant"] == "acme"

    def test_slo_burn_quiet_when_execution_bound(self):
        report = DoctorReport()
        slo = self.queue_dominated_slo()
        slo["tenants"]["acme"]["queue_wait"]["p90"] = 0.01
        check_slo_burn(report, slo)
        assert report.findings == []

    def test_cache_drop_severities(self):
        baseline = {"slo": {"cache": {"plans": {"hit_rate": 0.9}}}}
        for rate, expected in ((0.88, None), (0.8, "warning"), (0.5, "critical")):
            report = DoctorReport()
            slo = {"cache": {"plans": {"hit_rate": rate, "hits": 1, "misses": 1}}}
            check_cache(report, slo, baseline)
            if expected is None:
                assert report.findings == []
            else:
                assert [f.severity for f in report.findings] == [expected]
                assert report.findings[0].code == "hit-ratio-drop"

    def test_q_error_elevated_on_engine_dominated_path(self):
        plan_quality = {
            "cells": {
                "Q9|aware|nodelay|event": {"q_error_max": 8.0, "q_error_mean": 2.0}
            }
        }
        critpath = {
            "cells": {
                "Q9|aware|nodelay|event": {
                    "total": 1.0,
                    "classes": {"engine_work": 0.7},
                }
            }
        }
        report = DoctorReport()
        check_q_error(report, plan_quality, critpath)
        assert [f.severity for f in report.findings] == ["warning"]
        # Without the critpath overlay the same hotspot is informational.
        report = DoctorReport()
        check_q_error(report, plan_quality, None)
        assert [f.severity for f in report.findings] == ["info"]

    def test_heuristic_misfire_needs_both_policies(self):
        plan_quality = {
            "cells": {
                "Q1|aware|gamma1|event": {"execution_time": 2.2},
                "Q1|unaware|gamma1|event": {"execution_time": 1.0},
                "Q2|aware|gamma1|event": {"execution_time": 0.9},
                "Q2|unaware|gamma1|event": {"execution_time": 1.0},
            }
        }
        report = DoctorReport()
        check_heuristics(report, plan_quality)
        assert [f.code for f in report.findings] == ["aware-slower-than-unaware"]
        assert report.findings[0].evidence["cell"] == "Q1|aware|gamma1|event"


class TestReportSurface:
    def test_report_dict_validates_and_ranks(self):
        report = DoctorReport(
            findings=[
                Finding("info", "q-error", "estimation-hotspot", "c"),
                Finding("critical", "critpath", "attribution-drift", "a"),
                Finding("warning", "cache", "hit-ratio-drop", "b"),
            ],
            checks=["critpath", "cache", "q-error"],
        )
        document = report.to_dict()
        assert validate_json_schema(document, DOCTOR_SCHEMA) == []
        assert [f["severity"] for f in document["findings"]] == [
            "critical",
            "warning",
            "info",
        ]
        assert document["counts"] == {"critical": 1, "warning": 1, "info": 1}

    def test_exit_code_thresholds(self):
        report = DoctorReport(
            findings=[Finding("warning", "cache", "hit-ratio-drop", "t")]
        )
        assert report.exit_code("critical") == 0
        assert report.exit_code("warning") == 1
        assert report.exit_code("info") == 1
        assert DoctorReport().exit_code("info") == 0

    def test_render_lists_evidence(self):
        report = DoctorReport(
            findings=[
                Finding(
                    "critical",
                    "critpath",
                    "network-delay-regression",
                    "Q1: slower",
                    {"affected_source": "drugbank"},
                )
            ],
            checks=["critpath"],
        )
        text = report.render()
        assert "[CRITICAL" in text
        assert "critpath/network-delay-regression" in text
        assert "affected_source = 'drugbank'" in text
        assert "all clear" in DoctorReport(checks=["critpath"]).render()

    def test_diagnose_uses_journal_replay_for_slo(self):
        events = [
            {"v": 1, "kind": "submit", "ts": 0.0, "tenant": "acme", "request_id": "r1"},
            {
                "v": 1,
                "kind": "start",
                "ts": 2.0,
                "tenant": "acme",
                "request_id": "r1",
                "queue_wait": 2.0,
            },
            {
                "v": 1,
                "kind": "done",
                "ts": 2.1,
                "tenant": "acme",
                "request_id": "r1",
                "execution": 0.1,
                "end_to_end": 2.1,
            },
        ]
        report = diagnose(journal_events=events)
        assert "slo-burn" in report.checks
        assert [f.code for f in report.findings] == ["queue-dominated"]
