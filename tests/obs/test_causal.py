"""Causal span graphs: structure, determinism, and zero cost when off."""

from repro import FederatedEngine, NetworkSetting
from repro.obs import CAUSAL_SCHEMA, build_causal_graph
from repro.obs.schema import validate_json_schema
from repro.runtime import RUNTIMES

from ..conftest import TINY_QUERY


def observe(lake, runtime, seed=5, network=NetworkSetting.gamma2):
    engine = FederatedEngine(lake, network=network())
    answers, stats, observation = engine.observe(TINY_QUERY, seed=seed, runtime=runtime)
    return answers, stats, observation


class TestGraphShape:
    def test_graph_validates_against_schema(self, tiny_lake):
        for runtime in RUNTIMES:
            __, __, observation = observe(tiny_lake, runtime)
            document = build_causal_graph(observation).to_dict()
            assert validate_json_schema(document, CAUSAL_SCHEMA) == []

    def test_operator_tree_is_the_pull_edge_skeleton(self, tiny_lake):
        __, __, observation = observe(tiny_lake, "sequential")
        graph = build_causal_graph(observation)
        operators = [n for n in graph.nodes if n["kind"] == "operator"]
        pulls = [e for e in graph.edges if e["kind"] == "pull"]
        # A tree: every operator except the root has exactly one pull edge in.
        assert len(pulls) == len(operators) - 1
        roots = {n["id"] for n in operators} - {e["dst"] for e in pulls}
        assert len(roots) == 1
        assert next(n for n in operators if n["id"] in roots)["depth"] == 0

    def test_sequential_runs_have_no_tasks_or_rendezvous(self, tiny_lake):
        __, __, observation = observe(tiny_lake, "sequential")
        graph = build_causal_graph(observation)
        assert not [n for n in graph.nodes if n["kind"] == "task"]
        kinds = {e["kind"] for e in graph.edges}
        assert kinds == {"pull"}

    def test_scheduled_runs_record_spawns_and_rendezvous(self, tiny_lake):
        for runtime in ("event", "thread"):
            __, __, observation = observe(tiny_lake, runtime)
            graph = build_causal_graph(observation)
            tasks = [n for n in graph.nodes if n["kind"] == "task"]
            assert tasks, runtime
            spawn_like = [e for e in graph.edges if e["kind"] in ("spawn", "gate")]
            # Every producer task hangs off the operator that started it.
            assert {e["dst"] for e in spawn_like} == {n["id"] for n in tasks}
            rendezvous = [e for e in graph.edges if e["kind"] == "rendezvous"]
            assert rendezvous
            assert all(e["dst"] == "engine" for e in rendezvous)
            assert all(e["wait"] >= 0.0 for e in rendezvous)

    def test_queue_admission_edge_attached_on_request(self, tiny_lake):
        __, __, observation = observe(tiny_lake, "event")
        graph = build_causal_graph(observation, queue_wait=0.25)
        admission = [e for e in graph.edges if e["kind"] == "queue-admission"]
        assert len(admission) == 1
        assert admission[0]["wait"] == 0.25
        assert "admission" in {n["id"] for n in graph.nodes}
        bare = build_causal_graph(observation)
        assert not [e for e in bare.edges if e["kind"] == "queue-admission"]


class TestDeterminismContract:
    def test_structural_fingerprint_identical_across_runtimes(self, tiny_lake):
        fingerprints = set()
        for runtime in RUNTIMES:
            __, __, observation = observe(tiny_lake, runtime)
            fingerprints.add(build_causal_graph(observation).structural_fingerprint())
        assert len(fingerprints) == 1

    def test_graph_reproduces_bit_for_bit_per_seed(self, tiny_lake):
        for runtime in RUNTIMES:
            first = build_causal_graph(observe(tiny_lake, runtime)[2]).to_dict()
            second = build_causal_graph(observe(tiny_lake, runtime)[2]).to_dict()
            assert first == second, runtime

    def test_plain_runs_never_touch_the_recorder(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma3())
        stream = engine.execute(TINY_QUERY, seed=5, runtime="event")
        stream.collect()
        assert stream.observation is None

    def test_recorder_populated_only_under_schedulers(self, tiny_lake):
        __, __, sequential = observe(tiny_lake, "sequential")
        assert not sequential.causal.spawns
        assert not sequential.causal.deliveries
        __, __, event = observe(tiny_lake, "event")
        assert event.causal.spawns
        assert event.causal.deliveries
