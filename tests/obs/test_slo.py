"""Tests for the SLO layer: log-bucketed histograms and the accountant."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.obs import (
    BUCKET_BOUNDS,
    LogBucketHistogram,
    SLOAccountant,
    TenantSLO,
    accountant_from_journal,
    render_slo_report,
)
from repro.service import ServiceConfig, TenantConfig


# -- histogram edge cases (the determinism substrate) -------------------------


class TestHistogramEdgeCases:
    def test_empty_percentiles_are_zero(self):
        histogram = LogBucketHistogram()
        assert histogram.count == 0
        assert histogram.percentile(0.5) == 0.0
        assert histogram.percentile(0.99) == 0.0
        assert histogram.mean == 0.0
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["min"] is None and snapshot["max"] is None
        assert snapshot["buckets"] == []

    def test_single_observation_percentiles_are_exact(self):
        histogram = LogBucketHistogram()
        histogram.observe(0.37)
        # Every percentile of one value is that value: the bucket upper
        # bound (0.5) is capped at the tracked exact max.
        for q in (0.01, 0.5, 0.9, 0.99, 1.0):
            assert histogram.percentile(q) == 0.37
        assert histogram.mean == 0.37
        assert histogram.minimum == histogram.maximum == 0.37

    def test_value_exactly_on_bucket_boundary_falls_in_that_bucket(self):
        # le-semantics: a value equal to a bound belongs to that bound's
        # bucket, same as Prometheus' cumulative `le` buckets.
        for bound in (BUCKET_BOUNDS[0], 1.0, 2.0, BUCKET_BOUNDS[-1]):
            histogram = LogBucketHistogram()
            histogram.observe(bound)
            index = BUCKET_BOUNDS.index(bound)
            assert histogram.counts[index] == 1
            assert histogram.percentile(0.5) == bound

    def test_value_above_last_bound_lands_in_overflow(self):
        histogram = LogBucketHistogram()
        huge = BUCKET_BOUNDS[-1] * 3
        histogram.observe(huge)
        assert histogram.counts[-1] == 1
        # Overflow percentile reports the exact max, not infinity.
        assert histogram.percentile(0.99) == huge

    def test_percentile_never_exceeds_observed_max(self):
        histogram = LogBucketHistogram()
        for value in (0.9, 1.1, 1.7):
            histogram.observe(value)
        # Rank-3 bucket bound is 2.0; the cap brings it to the true max.
        assert histogram.percentile(0.99) == 1.7

    def test_merge_associativity(self):
        values_a, values_b, values_c = (
            [0.001, 0.2, 5.0],
            [1.0, 1.0, 900.0],
            [0.00001, 3.3],
        )

        def build(values):
            histogram = LogBucketHistogram()
            for value in values:
                histogram.observe(value)
            return histogram

        left = build(values_a).merge(build(values_b)).merge(build(values_c))
        right = build(values_a).merge(build(values_b).merge(build(values_c)))
        assert left.counts == right.counts
        assert left.count == right.count
        assert left.total == right.total
        assert left.minimum == right.minimum
        assert left.maximum == right.maximum
        assert left.snapshot() == right.snapshot()

    @given(
        st.lists(st.floats(min_value=1e-7, max_value=1e4), max_size=30),
        st.lists(st.floats(min_value=1e-7, max_value=1e4), max_size=30),
    )
    def test_merge_equals_combined_stream(self, values_a, values_b):
        merged = LogBucketHistogram()
        for value in values_a:
            merged.observe(value)
        other = LogBucketHistogram()
        for value in values_b:
            other.observe(value)
        merged.merge(other)
        combined = LogBucketHistogram()
        for value in values_a + values_b:
            combined.observe(value)
        assert merged.counts == combined.counts
        assert merged.count == combined.count
        assert merged.minimum == combined.minimum
        assert merged.maximum == combined.maximum
        assert merged.total == pytest.approx(combined.total)

    def test_snapshot_round_trip(self):
        histogram = LogBucketHistogram()
        for value in (0.01, 0.5, 7.0, 7.0):
            histogram.observe(value)
        clone = LogBucketHistogram.from_snapshot(histogram.snapshot())
        assert clone.counts == histogram.counts
        assert clone.count == histogram.count
        assert clone.percentile(0.9) == histogram.percentile(0.9)

    def test_cumulative_buckets_end_with_inf_and_total(self):
        histogram = LogBucketHistogram()
        for value in (0.1, 10.0, 1e9):
            histogram.observe(value)
        pairs = histogram.cumulative_buckets()
        assert pairs[-1][0] == math.inf
        assert pairs[-1][1] == 3
        counts = [count for __, count in pairs]
        assert counts == sorted(counts)  # cumulative => monotone


# -- bucket bounds ------------------------------------------------------------


def test_bounds_are_exact_powers_of_two():
    assert BUCKET_BOUNDS[0] == 2.0 ** -20
    assert BUCKET_BOUNDS[-1] == 2.0 ** 12
    for earlier, later in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:]):
        assert later == earlier * 2


# -- the accountant -----------------------------------------------------------


class TestAccountant:
    def test_rates_and_counts(self):
        accountant = SLOAccountant()
        for __ in range(4):
            accountant.note_submit("acme")
        accountant.note_start("acme", 0.1)
        accountant.note_done("acme", 1.0, 1.1)
        accountant.note_shed("acme", "tenant-queue-full")
        accountant.note_timeout("acme")
        accountant.note_error("acme")
        snapshot = accountant.snapshot()
        entry = snapshot["tenants"]["acme"]
        assert entry["submitted"] == 4
        assert entry["completed"] == 1
        assert entry["shed"] == 1
        assert entry["timed_out"] == 1
        assert entry["errors"] == 1
        assert entry["shed_rate"] == 0.25
        assert entry["timeout_rate"] == 0.25
        assert entry["error_rate"] == 0.25
        assert entry["shed_by_reason"] == {"tenant-queue-full": 1}

    def test_global_is_merge_of_tenants(self):
        accountant = SLOAccountant()
        for tenant, execution in (("a", 1.0), ("b", 3.0)):
            accountant.note_submit(tenant)
            accountant.note_start(tenant, 0.5)
            accountant.note_done(tenant, execution, execution + 0.5)
        snapshot = accountant.snapshot()
        assert snapshot["global"]["submitted"] == 2
        assert snapshot["global"]["completed"] == 2
        assert snapshot["global"]["busy_seconds"] == 4.0
        assert snapshot["global"]["execution"]["count"] == 2

    def test_weights_come_from_config(self):
        config = ServiceConfig(
            tenants={"vip": TenantConfig(name="vip", weight=3.0)}
        )
        accountant = SLOAccountant(config)
        accountant.note_submit("vip")
        accountant.note_submit("other")
        snapshot = accountant.snapshot()
        assert snapshot["tenants"]["vip"]["weight"] == 3.0
        assert snapshot["tenants"]["other"]["weight"] == 1.0
        # fair_share = weight / active weight sum.
        assert snapshot["tenants"]["vip"]["fair_share"] == 0.75
        assert snapshot["tenants"]["other"]["fair_share"] == 0.25

    def test_utilization_shares_sum_to_one(self):
        accountant = SLOAccountant()
        for tenant, execution in (("a", 1.0), ("b", 1.0), ("c", 2.0)):
            accountant.note_submit(tenant)
            accountant.note_start(tenant, 0.0)
            accountant.note_done(tenant, execution, execution)
        snapshot = accountant.snapshot()
        shares = [
            entry["utilization_share"] for entry in snapshot["tenants"].values()
        ]
        assert sum(shares) == pytest.approx(1.0)
        assert snapshot["tenants"]["c"]["utilization_share"] == 0.5

    def test_cache_hit_ratios(self):
        accountant = SLOAccountant()
        snapshot = accountant.snapshot(
            cache_stats={
                "plans": {"hits": 3, "misses": 1, "evictions": 2},
                "result": {"hits": 0, "misses": 0, "evictions": 0},
            }
        )
        assert snapshot["cache"]["plans"]["hit_rate"] == 0.75
        assert snapshot["cache"]["plans"]["evictions"] == 2
        assert snapshot["cache"]["result"]["hit_rate"] == 0.0

    def test_report_renders_all_tenants_and_global(self):
        accountant = SLOAccountant()
        accountant.note_submit("acme")
        accountant.note_start("acme", 0.2)
        accountant.note_done("acme", 0.8, 1.0)
        text = render_slo_report(
            accountant.snapshot(cache_stats={"plans": {"hits": 1, "misses": 1}})
        )
        assert "acme" in text
        assert "GLOBAL" in text
        assert "cache plans" in text


# -- journal replay -----------------------------------------------------------


def test_accountant_from_journal_matches_live_feed():
    live = SLOAccountant()
    events = []

    def both(kind, tenant, **fields):
        events.append({"kind": kind, "tenant": tenant, "ts": 0.0, **fields})

    live.note_submit("a")
    both("submit", "a")
    live.note_start("a", 0.25)
    both("start", "a", queue_wait=0.25)
    live.note_done("a", 2.0, 2.25)
    both("done", "a", execution=2.0, end_to_end=2.25)
    live.note_submit("b")
    both("submit", "b")
    live.note_shed("b", "tenant-queue-full")
    both("shed", "b", reason="tenant-queue-full")
    live.note_error("a")
    both("error", "a")
    events.append(
        {"kind": "cache-snapshot", "ts": 9.9, "caches": {"plans": {"hits": 1, "misses": 0}}}
    )

    replayed, cache_stats = accountant_from_journal(events)
    assert cache_stats == {"plans": {"hits": 1, "misses": 0}}
    assert replayed.snapshot(cache_stats=cache_stats) == live.snapshot(
        cache_stats=cache_stats
    )


def test_tenant_slo_merge_accumulates_reasons():
    left = TenantSLO("x")
    right = TenantSLO("x")
    left.shed_by_reason["a"] = 1
    right.shed_by_reason["a"] = 2
    right.shed_by_reason["b"] = 1
    left.merge(right)
    assert left.shed_by_reason == {"a": 3, "b": 1}
