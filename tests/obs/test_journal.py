"""Tests for the structured event journal: canonical encoding, fingerprints,
observer mapping, file round-trips."""

import io
import json
import threading

from repro.obs import EventJournal, JOURNAL_VERSION, canonical_line
from repro.service import ServiceConfig
from repro.service.admission import AdmissionController


def test_canonical_line_is_sorted_and_compact():
    line = canonical_line({"b": 2, "a": 1, "nested": {"z": 0, "y": [1, 2]}})
    assert line == '{"a":1,"b":2,"nested":{"y":[1,2],"z":0}}'


def test_append_and_fingerprint_are_order_sensitive():
    first = EventJournal()
    first.append("submit", 1.0, request_id="r-1", tenant="a")
    first.append("done", 2.0, request_id="r-1", tenant="a")
    second = EventJournal()
    second.append("done", 2.0, request_id="r-1", tenant="a")
    second.append("submit", 1.0, request_id="r-1", tenant="a")
    assert first.fingerprint() != second.fingerprint()
    third = EventJournal()
    third.append("submit", 1.0, request_id="r-1", tenant="a")
    third.append("done", 2.0, request_id="r-1", tenant="a")
    assert first.fingerprint() == third.fingerprint()


def test_every_event_carries_version_and_kind():
    journal = EventJournal()
    event = journal.append("submit", 0.5, request_id="r-1", tenant="a")
    assert event["v"] == JOURNAL_VERSION
    assert event["kind"] == "submit"
    assert event["ts"] == 0.5


def test_file_round_trip_preserves_fingerprint(tmp_path):
    journal = EventJournal()
    journal.append("submit", 0.0, request_id="r-1", tenant="a", deadline=30.0)
    journal.append("start", 0.1, request_id="r-1", tenant="a", queue_wait=0.1)
    journal.append("cache-snapshot", 5.0, caches={"plans": {"hits": 1}})
    path = tmp_path / "journal.jsonl"
    journal.write_jsonl(str(path))
    loaded = EventJournal.read_jsonl(str(path))
    assert loaded.events == journal.events
    assert loaded.fingerprint() == journal.fingerprint()


def test_streaming_sink_receives_canonical_lines():
    sink = io.StringIO()
    journal = EventJournal(sink=sink)
    journal.append("submit", 0.0, request_id="r-1", tenant="a")
    journal.append("shed", 0.0, request_id="r-2", tenant="a", reason="full")
    lines = sink.getvalue().splitlines()
    assert lines == journal.canonical_lines()
    assert json.loads(lines[1])["reason"] == "full"


def test_counts_by_kind():
    journal = EventJournal()
    for __ in range(3):
        journal.append("submit", 0.0, tenant="a")
    journal.append("done", 1.0, tenant="a")
    assert journal.counts_by_kind() == {"done": 1, "submit": 3}


def test_concurrent_appends_do_not_lose_events():
    journal = EventJournal()

    def worker(worker_id):
        for index in range(50):
            journal.append("result-cache-evict", 0.0, worker=worker_id, index=index)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(journal) == 200


# -- the admission observer mapping -------------------------------------------


def drive_schedule(journal):
    """A tiny deterministic schedule: 2 accepted, 1 shed, 1 queued-timeout."""
    from repro.service import TenantConfig

    config = ServiceConfig(
        global_concurrency=1,
        timeout=10.0,
        tenants={"a": TenantConfig(name="a", max_concurrency=1, queue_depth=2)},
    )
    controller = AdmissionController(config)
    controller.add_observer(journal)
    first = controller.submit("r-1", "a", 0.0)
    second = controller.submit("r-2", "a", 0.1)
    third = controller.submit("r-3", "a", 0.2)  # queue full (depth 2) -> shed
    started = controller.start_ready(0.2)
    assert [ticket.request_id for ticket in started] == ["r-1"]
    controller.complete(first, 1.0)
    controller.start_ready(1.0)
    # r-2 started at 1.0; run it past its deadline -> running-timeout.
    controller.complete(second, 12.0)
    assert third.state == "shed"
    return controller


def test_admission_events_capture_the_whole_lifecycle():
    journal = EventJournal()
    drive_schedule(journal)
    kinds = [event["kind"] for event in journal]
    assert kinds == [
        "submit",
        "submit",
        "submit",
        "shed",
        "start",
        "done",
        "start",
        "running-timeout",
        "tenant-idle",
    ]
    start = next(event for event in journal if event["kind"] == "start")
    assert start["queue_wait"] == 0.2
    assert "stride_pass" in start
    done = next(event for event in journal if event["kind"] == "done")
    assert done["execution"] == 0.8
    assert done["end_to_end"] == 1.0
    overrun = next(
        event for event in journal if event["kind"] == "running-timeout"
    )
    assert overrun["execution"] == 11.0
    assert overrun["overrun"] == 12.0 - 10.1  # finished - deadline
    idle = [event for event in journal if event["kind"] == "tenant-idle"]
    assert idle == [{"v": JOURNAL_VERSION, "kind": "tenant-idle", "ts": 12.0, "tenant": "a"}]


def test_no_observers_means_no_overhead_paths():
    # Without observers the controller must not keep any journal state.
    config = ServiceConfig()
    controller = AdmissionController(config)
    ticket = controller.submit("r-1", "a", 0.0)
    controller.start_ready(0.0)
    controller.complete(ticket, 1.0)
    assert controller.observers == []
