"""Cross-runtime observation: the acceptance sweep.

Profiling must work under the sequential, event, and thread runtimes and
report *identical per-operator output cardinalities* for every benchmark
query under every network setting — the answer multiset and each
operator's row counts are runtime-invariant; only the timeline shape
differs.
"""

import pytest

from repro import FederatedEngine, NetworkSetting
from repro.datasets import BENCHMARK_QUERIES
from repro.runtime import RUNTIMES

from ..conftest import TINY_QUERY

NETWORKS = (
    NetworkSetting.no_delay,
    NetworkSetting.gamma1,
    NetworkSetting.gamma2,
    NetworkSetting.gamma3,
)


class TestCrossRuntimeCardinalities:
    @pytest.mark.parametrize("query_name", ["Q1", "Q2", "Q3", "Q4", "Q5"])
    @pytest.mark.parametrize("network", NETWORKS, ids=lambda n: n.__name__)
    def test_identical_cardinalities_q1_q5(self, small_lslod_lake, query_name, network):
        text = BENCHMARK_QUERIES[query_name].text
        reference = None
        for runtime in RUNTIMES:
            engine = FederatedEngine(small_lslod_lake, network=network())
            answers, stats, observation = engine.observe(text, seed=3, runtime=runtime)
            cards = observation.profile_report(stats).cardinalities()
            if reference is None:
                reference = (len(answers), cards)
            else:
                assert (len(answers), cards) == reference, runtime

    def test_execution_time_agrees_across_observed_runtimes(self, tiny_lake):
        # Runtimes sum the same charges in different orders, so times agree
        # to float round-off (bit-identity holds within a runtime; see
        # TestZeroCostWhenOff for the observed-vs-plain contract).
        times = []
        for runtime in RUNTIMES:
            engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma2())
            __, stats, __obs = engine.observe(TINY_QUERY, seed=5, runtime=runtime)
            times.append(stats.execution_time)
        assert times[1] == pytest.approx(times[0], rel=1e-12)
        assert times[2] == pytest.approx(times[0], rel=1e-12)


class TestZeroCostWhenOff:
    def test_observed_and_plain_runs_bit_identical(self, tiny_lake):
        """The bus must never perturb the virtual timeline (determinism
        contract: observation only reads the clocks)."""
        for runtime in RUNTIMES:
            engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma3())
            plain, plain_stats = engine.run(TINY_QUERY, seed=9, runtime=runtime)
            observed, observed_stats, __ = engine.observe(
                TINY_QUERY, seed=9, runtime=runtime
            )
            assert plain == observed
            assert plain_stats.execution_time == observed_stats.execution_time
            assert plain_stats.trace == observed_stats.trace

    def test_plain_run_attaches_no_observation(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        stream = engine.execute(TINY_QUERY, seed=1)
        assert stream.observation is None
        assert stream.context.obs is None
        stream.collect()

    def test_plan_left_clean_after_observed_sequential_run(self, tiny_lake):
        """Sequential instrumentation rebinds operator ``execute``; the
        restore contract says nothing may leak into the (cached) plan."""
        engine = FederatedEngine(tiny_lake)
        engine.observe(TINY_QUERY, seed=1)
        plan = engine.plan(TINY_QUERY)

        def assert_clean(operator):
            assert "execute" not in operator.__dict__, operator.label()
            for child in operator.children():
                assert_clean(child)

        assert_clean(plan.root)


class TestObservationContent:
    def test_wrapper_spans_present_under_every_runtime(self, tiny_lake):
        for runtime in RUNTIMES:
            engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma1())
            __, __, observation = engine.observe(TINY_QUERY, seed=1, runtime=runtime)
            wrapper_spans = [
                span
                for span in observation.bus.spans()
                if span.category == "wrapper"
            ]
            assert wrapper_spans, runtime
            total_rows = sum(span.args_dict()["rows"] for span in wrapper_spans)
            assert total_rows > 0

    def test_metrics_cover_heuristics_and_sources(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma1())
        __, __, observation = engine.observe(TINY_QUERY, seed=1)
        names = {inst.name for inst in observation.metrics.collect()}
        assert {"answers", "execution_time_seconds", "h1_merge", "operator_rows_out"} <= names
        delay = observation.metrics.gauge("source_network_delay_seconds", source="diseasome")
        assert delay.value > 0

    def test_planning_instants_emitted_on_fresh_plan(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, enable_plan_cache=False)
        __, __, observation = engine.observe(TINY_QUERY, seed=1)
        instant_names = [instant.name for instant in observation.bus.instants()]
        assert "parse" in instant_names
        assert "decompose" in instant_names
        assert "source-selection" in instant_names
        assert "h1-decision" in instant_names

    def test_plan_cache_hit_emits_cache_instant(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        engine.run(TINY_QUERY, seed=1)  # warm the plan cache
        __, __, observation = engine.observe(TINY_QUERY, seed=1)
        cache_instants = [
            instant
            for instant in observation.bus.instants()
            if instant.name == "plan-cache"
        ]
        assert len(cache_instants) == 1
        assert cache_instants[0].args_dict() == {"outcome": "hit"}
