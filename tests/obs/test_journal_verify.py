"""Journal sealing and on-disk integrity verification."""

import json

from repro.obs import EventJournal, SEAL_KIND, verify_journal_file
from repro.obs.journal import canonical_line


def sample_journal():
    journal = EventJournal()
    journal.append("submit", 0.0, request_id="r1", tenant="acme", seq=1, deadline=30.0)
    journal.append("start", 0.5, request_id="r1", tenant="acme", queue_wait=0.5)
    journal.append(
        "exec-profile",
        1.2,
        request_id="r1",
        tenant="acme",
        engine=0.1,
        network=0.5,
        cache=0.1,
        total=0.7,
        sources={"drugbank": 0.5},
    )
    journal.append("done", 1.2, request_id="r1", tenant="acme", execution=0.7)
    return journal


class TestSeal:
    def test_seal_line_declares_fingerprint_and_count(self):
        journal = sample_journal()
        seal = json.loads(journal.seal_line())
        assert seal["kind"] == SEAL_KIND
        assert seal["fingerprint"] == journal.fingerprint()
        assert seal["events"] == len(journal)

    def test_read_jsonl_keeps_the_seal_out_of_the_events(self, tmp_path):
        journal = sample_journal()
        path = str(tmp_path / "sealed.jsonl")
        journal.write_jsonl(path, seal=True)
        loaded = EventJournal.read_jsonl(path)
        assert loaded.events == journal.events
        assert loaded.seal is not None
        assert loaded.seal["fingerprint"] == journal.fingerprint()
        # Replay fingerprint excludes the seal, so round-trips are stable.
        assert loaded.fingerprint() == journal.fingerprint()


class TestVerify:
    def write(self, tmp_path, seal=True):
        path = str(tmp_path / "journal.jsonl")
        sample_journal().write_jsonl(path, seal=seal)
        return path

    def test_sealed_file_verifies(self, tmp_path):
        path = self.write(tmp_path)
        ok, problems, info = verify_journal_file(path)
        assert ok, problems
        assert problems == []
        assert info["events"] == 4
        assert info["counts_by_kind"]["exec-profile"] == 1
        assert info["seal"]["fingerprint"] == info["fingerprint"]

    def test_whitespace_reformat_is_forgiven(self, tmp_path):
        # The fingerprint is over canonical re-encodings: pretty-printing
        # an event does not change its parsed value, so it still verifies.
        path = self.write(tmp_path)
        lines = open(path).read().splitlines()
        reordered_keys = json.dumps(json.loads(lines[0]), indent=None, sort_keys=False)
        lines[0] = reordered_keys
        open(path, "w").write("\n".join(lines) + "\n")
        ok, problems, __ = verify_journal_file(path)
        assert ok, problems

    def test_tampered_value_fails(self, tmp_path):
        path = self.write(tmp_path)
        lines = open(path).read().splitlines()
        event = json.loads(lines[2])
        event["network"] = 99.0
        lines[2] = canonical_line(event)
        open(path, "w").write("\n".join(lines) + "\n")
        ok, problems, __ = verify_journal_file(path)
        assert not ok
        assert any("fingerprint mismatch" in p for p in problems)

    def test_truncated_file_fails_with_count_mismatch(self, tmp_path):
        path = self.write(tmp_path)
        lines = open(path).read().splitlines()
        del lines[1]  # drop an event, keep the seal
        open(path, "w").write("\n".join(lines) + "\n")
        ok, problems, info = verify_journal_file(path)
        assert not ok
        assert any("event count mismatch" in p for p in problems)
        assert info["events"] == 3

    def test_content_after_the_seal_fails(self, tmp_path):
        path = self.write(tmp_path)
        with open(path, "a") as handle:
            handle.write(
                canonical_line({"v": 1, "kind": "done", "ts": 9.0}) + "\n"
            )
        ok, problems, __ = verify_journal_file(path)
        assert not ok
        assert any("content after the seal" in p for p in problems)

    def test_unsealed_fails_unless_allowed(self, tmp_path):
        path = self.write(tmp_path, seal=False)
        ok, problems, __ = verify_journal_file(path)
        assert not ok
        assert any("unsealed" in p for p in problems)
        ok, problems, info = verify_journal_file(path, allow_unsealed=True)
        assert ok, problems
        assert info["seal"] is None

    def test_non_json_and_schema_problems_are_reported_per_line(self, tmp_path):
        path = str(tmp_path / "broken.jsonl")
        with open(path, "w") as handle:
            handle.write("not json at all\n")
            handle.write('["a","list"]\n')
            handle.write('{"kind":"done"}\n')  # no v, no ts
        ok, problems, __ = verify_journal_file(path, allow_unsealed=True)
        assert not ok
        assert any("not valid JSON" in p for p in problems)
        assert any("not a JSON object" in p for p in problems)
        assert any("non-integer 'v'" in p for p in problems)
        assert any("non-numeric 'ts'" in p for p in problems)

    def test_blank_lines_are_ignored(self, tmp_path):
        path = self.write(tmp_path)
        content = open(path).read().replace("\n", "\n\n", 1)
        open(path, "w").write(content)
        ok, problems, __ = verify_journal_file(path)
        assert ok, problems
