"""Tests for the exporters: Chrome trace format, JSON dump, validation."""

from repro import FederatedEngine, NetworkSetting
from repro.obs import (
    CHROME_TRACE_SCHEMA,
    chrome_trace_json,
    to_chrome_trace,
    validate_chrome_trace,
    validate_json_schema,
)

from ..conftest import TINY_CROSS_SOURCE_QUERY, TINY_QUERY


def _observe(lake, runtime="sequential", query=TINY_QUERY, seed=1):
    engine = FederatedEngine(lake, network=NetworkSetting.gamma1())
    return engine.observe(query, seed=seed, runtime=runtime)


class TestChromeTrace:
    def test_export_validates_against_schema(self, tiny_lake):
        __, __, observation = _observe(tiny_lake)
        trace = observation.to_chrome_trace()
        assert validate_json_schema(trace, CHROME_TRACE_SCHEMA) == []
        assert validate_chrome_trace(trace) == []

    def test_one_track_per_task_and_source(self, tiny_lake):
        __, __, observation = _observe(
            tiny_lake, runtime="event", query=TINY_CROSS_SOURCE_QUERY
        )
        trace = observation.to_chrome_trace()
        thread_names = [
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        ]
        # Both sources run as producer tasks with deterministic keys.
        assert any("diseasome" in name and "task" in name for name in thread_names)
        assert any("affymetrix" in name and "task" in name for name in thread_names)
        # Plan operators get their own rows.
        assert any(name.startswith("op: ") for name in thread_names)

    def test_timestamps_are_microseconds(self, tiny_lake):
        __, stats, observation = _observe(tiny_lake)
        trace = observation.to_chrome_trace()
        query_spans = [
            event
            for event in trace["traceEvents"]
            if event["ph"] == "X" and event["name"] == "query"
        ]
        assert len(query_spans) == 1
        assert query_spans[0]["dur"] == stats.execution_time * 1e6

    def test_multi_run_export_uses_one_process_per_run(self, tiny_lake):
        __, __, first = _observe(tiny_lake)
        __, __, second = _observe(tiny_lake, runtime="event")
        trace = to_chrome_trace([("run-a", first), ("run-b", second)])
        processes = {
            event["pid"]: event["args"]["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        }
        assert processes == {1: "run-a", 2: "run-b"}
        assert validate_chrome_trace(trace) == []

    def test_validator_rejects_malformed_traces(self):
        assert validate_chrome_trace({"traceEvents": []}) != []
        bad_event = {
            "traceEvents": [{"ph": "X", "pid": 1, "tid": 0, "name": "x", "ts": 0.0}],
            "displayTimeUnit": "ms",
        }
        errors = validate_chrome_trace(bad_event)
        assert any("dur" in error for error in errors)
        unannounced = {
            "traceEvents": [
                {"ph": "i", "s": "t", "pid": 9, "tid": 0, "name": "x", "ts": 0.0}
            ],
            "displayTimeUnit": "ms",
        }
        errors = validate_chrome_trace(unannounced)
        assert any("process_name" in error for error in errors)


class TestDeterminism:
    def test_same_seed_byte_identical_export(self, tiny_lake):
        for runtime in ("sequential", "event", "thread"):
            __, __, first = _observe(
                tiny_lake, runtime=runtime, query=TINY_CROSS_SOURCE_QUERY
            )
            __, __, second = _observe(
                tiny_lake, runtime=runtime, query=TINY_CROSS_SOURCE_QUERY
            )
            assert chrome_trace_json([("r", first)]) == chrome_trace_json(
                [("r", second)]
            ), runtime


class TestJsonDump:
    def test_dump_contains_all_sections(self, tiny_lake):
        __, __, observation = _observe(tiny_lake)
        payload = observation.to_json()
        assert set(payload) >= {"runtime", "instants", "spans", "operators", "metrics"}
        assert payload["runtime"] == "sequential"
        assert any(span["category"] == "wrapper" for span in payload["spans"])
        assert any(entry["name"] == "answers" for entry in payload["metrics"])

    def test_dump_embeds_explain_record(self, tiny_lake):
        __, __, observation = _observe(tiny_lake)
        payload = observation.to_json()
        assert "explain" in payload
        assert any(
            decision["heuristic"] == "H1" for decision in payload["explain"]["decisions"]
        )


class TestRequestIdInArgs:
    """Service-originated runs: the request ID must reach every event's
    args, not just the process metadata, so merged exports stay
    filterable by request."""

    def test_request_id_round_trips_through_every_event(self, tiny_lake):
        __, __, observation = _observe(tiny_lake, query=TINY_CROSS_SOURCE_QUERY)
        observation.request_id = "r-000042"  # as the service assigns post-run
        trace = to_chrome_trace([("svc run", observation)])
        timed = [
            event for event in trace["traceEvents"] if event["ph"] in ("X", "i")
        ]
        assert timed, "expected spans/instants in an observed run"
        for event in timed:
            assert event["args"]["request_id"] == "r-000042"
        # The process metadata keeps carrying it too.
        process = next(
            event
            for event in trace["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        )
        assert process["args"]["request_id"] == "r-000042"
        # And the export still validates against the trace-event schema.
        assert validate_chrome_trace(trace) == []

    def test_unattributed_runs_stay_clean(self, tiny_lake):
        __, __, observation = _observe(tiny_lake)
        assert observation.request_id is None
        trace = to_chrome_trace([("local run", observation)])
        for event in trace["traceEvents"]:
            if event["ph"] in ("X", "i"):
                assert "request_id" not in event["args"]

    def test_injection_does_not_clobber_existing_args(self, tiny_lake):
        __, __, observation = _observe(tiny_lake)
        observation.request_id = "r-000001"
        trace = to_chrome_trace([("svc run", observation)])
        op_rows = [
            event
            for event in trace["traceEvents"]
            if event["ph"] == "X" and "rows_out" in event.get("args", {})
        ]
        assert op_rows, "operator profile rows expected"
        for event in op_rows:
            assert event["args"]["request_id"] == "r-000001"
