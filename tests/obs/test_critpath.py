"""Critical-path attribution: exactness, determinism, zero perturbation.

The acceptance bar from the issue: per-blame-class attribution sums to
the end-to-end virtual time *exactly* (Fraction-checked, not approx) for
every benchmark query under every network, the attribution is
deterministic for a fixed seed, and running it does not change the
answers or the virtual timeline.
"""

from fractions import Fraction

import pytest

from repro import FederatedEngine, NetworkSetting
from repro.datasets import BENCHMARK_QUERIES
from repro.obs import (
    BLAME_CLASSES,
    CRITPATH_SCHEMA,
    aggregate_reports,
    chrome_overlay,
    render_aggregate,
    render_critpath,
)
from repro.obs.schema import validate_json_schema
from repro.runtime import RUNTIMES

from ..conftest import TINY_QUERY

NETWORKS = (
    NetworkSetting.no_delay,
    NetworkSetting.gamma1,
    NetworkSetting.gamma2,
    NetworkSetting.gamma3,
)


def exact_sum(report):
    return sum(
        (Fraction(*map(int, report.exact_classes[name].split("/"))) for name in BLAME_CLASSES),
        Fraction(0),
    )


class TestExactness:
    @pytest.mark.parametrize("runtime", RUNTIMES)
    @pytest.mark.parametrize("network", NETWORKS, ids=lambda n: n.__name__)
    def test_blame_sums_to_total_exactly(self, tiny_lake, runtime, network):
        engine = FederatedEngine(tiny_lake, network=network())
        __, stats, report = engine.critpath(TINY_QUERY, seed=11, runtime=runtime)
        assert report.exact
        assert exact_sum(report) == Fraction(stats.execution_time)

    @pytest.mark.parametrize("query_name", ["Q1", "Q2", "Q3", "Q4", "Q5"])
    @pytest.mark.parametrize("network", NETWORKS, ids=lambda n: n.__name__)
    def test_benchmark_grid_is_exact_under_every_runtime(
        self, small_lslod_lake, query_name, network
    ):
        text = BENCHMARK_QUERIES[query_name].text
        for runtime in RUNTIMES:
            engine = FederatedEngine(small_lslod_lake, network=network())
            __, stats, report = engine.critpath(text, seed=3, runtime=runtime)
            assert report.exact, (query_name, network.__name__, runtime)
            assert exact_sum(report) == Fraction(stats.execution_time)

    def test_segments_tile_the_timeline_without_gaps(self, tiny_lake):
        for runtime in RUNTIMES:
            engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma2())
            __, stats, report = engine.critpath(TINY_QUERY, seed=11, runtime=runtime)
            cursor = 0.0
            for segment in report.segments:
                assert segment["start"] == pytest.approx(cursor, abs=1e-15)
                assert segment["end"] >= segment["start"]
                assert segment["class"] in BLAME_CLASSES
                cursor = segment["end"]
            assert cursor == pytest.approx(stats.execution_time, rel=1e-12)

    def test_planner_and_queue_classes_are_zero_at_engine_level(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma1())
        __, __, report = engine.critpath(TINY_QUERY, seed=2, runtime="event")
        assert report.classes["planner_time"] == 0.0
        assert report.classes["queue_wait"] == 0.0

    def test_nodelay_runs_blame_no_network_beyond_overhead(self, tiny_lake):
        # Under no_delay the only network charges are the constant
        # per-message overheads — far below the source evaluation cost.
        engine = FederatedEngine(tiny_lake, network=NetworkSetting.no_delay())
        __, __, report = engine.critpath(TINY_QUERY, seed=2, runtime="sequential")
        assert report.classes["network_delay"] < report.total


class TestDeterminism:
    def test_ten_seeded_runs_bit_identical_per_runtime(self, tiny_lake):
        for runtime in RUNTIMES:
            reference = None
            for __ in range(10):
                engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma3())
                __a, __s, report = engine.critpath(TINY_QUERY, seed=17, runtime=runtime)
                document = report.to_dict(include_segments=True)
                if reference is None:
                    reference = document
                else:
                    assert document == reference, runtime

    def test_structural_fingerprint_agrees_across_runtimes(self, tiny_lake):
        fingerprints = set()
        for runtime in RUNTIMES:
            engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma2())
            __, __, report = engine.critpath(TINY_QUERY, seed=5, runtime=runtime)
            fingerprints.add(report.structural_fingerprint)
        assert len(fingerprints) == 1

    def test_attribution_does_not_perturb_the_run(self, tiny_lake):
        """engine.critpath is observe+attribute: answers and the virtual
        timeline must be bit-identical to a plain run of the same seed."""
        for runtime in RUNTIMES:
            engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma3())
            plain, plain_stats = engine.run(TINY_QUERY, seed=9, runtime=runtime)
            attributed, stats, __ = engine.critpath(TINY_QUERY, seed=9, runtime=runtime)
            assert attributed == plain
            assert stats.execution_time == plain_stats.execution_time
            assert stats.trace == plain_stats.trace


class TestReportSurface:
    def test_report_dict_validates_against_schema(self, tiny_lake):
        for runtime in RUNTIMES:
            engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma1())
            __, __, report = engine.critpath(TINY_QUERY, seed=4, runtime=runtime)
            document = report.to_dict(include_segments=True)
            assert validate_json_schema(document, CRITPATH_SCHEMA) == []
            assert "segments" not in report.to_dict()

    def test_summary_is_the_status_embed_shape(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma3())
        __, __, report = engine.critpath(TINY_QUERY, seed=4, runtime="event")
        summary = report.summary()
        assert set(summary) == {
            "total",
            "exact",
            "classes",
            "dominant_class",
            "queue_wait",
        }
        assert summary["dominant_class"] == report.dominant_class()

    def test_gamma3_is_network_dominated(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma3())
        __, __, report = engine.critpath(TINY_QUERY, seed=4, runtime="event")
        assert report.dominant_class() == "network_delay"
        assert report.share("network_delay") > 0.5

    def test_render_mentions_every_class_and_exactness(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma2())
        __, __, report = engine.critpath(TINY_QUERY, seed=4, runtime="thread")
        text = render_critpath(report, label="tiny")
        assert "tiny" in text
        assert "attribution=exact" in text
        for name in BLAME_CLASSES:
            assert name in text

    def test_aggregate_sums_cells(self, tiny_lake):
        reports = []
        for runtime in RUNTIMES:
            engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma1())
            __, __, report = engine.critpath(TINY_QUERY, seed=4, runtime=runtime)
            reports.append(report)
        aggregate = aggregate_reports(reports)
        assert aggregate["cells"] == len(reports)
        assert aggregate["all_exact"]
        assert aggregate["total"] == pytest.approx(
            sum(r.total for r in reports), rel=1e-12
        )
        assert sum(aggregate["shares"].values()) == pytest.approx(1.0, rel=1e-9)
        assert "grid attribution" in render_aggregate(aggregate)

    def test_chrome_overlay_adds_a_gap_free_blame_track(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma2())
        stream = engine.execute(TINY_QUERY, seed=4, runtime="event", observe=True)
        stream.collect()
        from repro.obs.critpath import attribute_run

        report = attribute_run(stream.observation, stream.stats)
        document = chrome_overlay(stream.observation, report)
        band = [
            event
            for event in document["traceEvents"]
            if event.get("cat") == "critpath" and event.get("ph") == "X"
        ]
        assert len(band) == len(report.segments)
        covered = sum(event["dur"] for event in band)
        assert covered == pytest.approx(report.total * 1e6, rel=1e-9)

    def test_slack_never_negative_for_scheduled_runs(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, network=NetworkSetting.gamma3())
        __, __, report = engine.critpath(TINY_QUERY, seed=6, runtime="event")
        for lead in report.slack.values():
            if lead is not None:
                assert lead >= 0.0
