"""Tests for the synthetic LSLOD generators, queries and lake builder."""

import pytest

from repro.datasets import (
    ADVISOR_CANDIDATES,
    BENCHMARK_INDEXES,
    BENCHMARK_QUERIES,
    GRID_QUERIES,
    KNOWN_GENE_SYMBOLS,
    LakeBuildReport,
    build_lslod_lake,
    dataset_bundles,
    generate_all,
)
from repro.federation.endpoints import RDFSource, RelationalSource
from repro.rdf import IRI, Literal, RDF_TYPE
from repro.sparql import parse_query


@pytest.fixture(scope="module")
def bundles():
    return generate_all(scale=0.05, seed=42)


class TestGenerators:
    def test_all_ten_datasets(self, bundles):
        assert len(bundles) == 10
        assert set(bundles) == {
            "diseasome",
            "affymetrix",
            "drugbank",
            "kegg",
            "sider",
            "dailymed",
            "medicare",
            "linkedct",
            "chebi",
            "tcga",
        }

    def test_deterministic(self):
        first = generate_all(scale=0.05, seed=7)
        second = generate_all(scale=0.05, seed=7)
        for name in first:
            assert set(first[name].graph) == set(second[name].graph)

    def test_seed_changes_data(self):
        first = generate_all(scale=0.05, seed=7)
        second = generate_all(scale=0.05, seed=8)
        assert set(first["drugbank"].graph) != set(second["drugbank"].graph)

    def test_scale_changes_sizes(self):
        small = generate_all(scale=0.05, seed=7)
        large = generate_all(scale=0.1, seed=7)
        assert len(large["medicare"].graph) > len(small["medicare"].graph)

    def test_every_subject_typed(self, bundles):
        for bundle in bundles.values():
            subjects = {t.subject for t in bundle.graph}
            typed = {t.subject for t in bundle.graph.triples(None, RDF_TYPE, None)}
            assert subjects == typed

    def test_known_symbols_present_in_diseasome(self, bundles):
        symbols = {
            t.object.lexical
            for t in bundles["diseasome"].graph.triples(
                None, IRI("http://lslod.repro/diseasome/vocab#geneSymbol"), None
            )
        }
        assert set(KNOWN_GENE_SYMBOLS) <= symbols

    def test_q3_symbol_in_tcga(self, bundles):
        symbols = [
            t.object.lexical
            for t in bundles["tcga"].graph.triples(
                None, IRI("http://lslod.repro/tcga/vocab#geneSymbol"), None
            )
        ]
        count = sum(1 for s in symbols if s == "GAB10")
        assert count > 0
        assert count / len(symbols) < 0.1  # selective

    def test_species_skewed_above_15_percent(self, bundles):
        species = [
            t.object.lexical
            for t in bundles["affymetrix"].graph.triples(
                None, IRI("http://lslod.repro/affymetrix/vocab#scientificName"), None
            )
        ]
        top = max(species.count(value) for value in set(species))
        assert top / len(species) > 0.15

    def test_sider_multivalued(self, bundles):
        graph = bundles["sider"].graph
        predicate = IRI("http://lslod.repro/sider/vocab#sideEffect")
        per_subject = {}
        for triple in graph.triples(None, predicate, None):
            per_subject.setdefault(triple.subject, []).append(triple.object)
        assert any(len(values) > 1 for values in per_subject.values())


class TestQueries:
    def test_grid_queries_defined(self):
        assert GRID_QUERIES == ("Q1", "Q2", "Q3", "Q4", "Q5")
        for name in GRID_QUERIES:
            assert name in BENCHMARK_QUERIES

    def test_all_queries_parse(self):
        for query in BENCHMARK_QUERIES.values():
            parsed = parse_query(query.text)
            assert parsed.where.patterns

    def test_rationales_documented(self):
        for query in BENCHMARK_QUERIES.values():
            assert len(query.rationale) > 40
            assert query.exercises

    def test_q2_targets_single_source(self):
        parsed = parse_query(BENCHMARK_QUERIES["Q2"].text)
        text = BENCHMARK_QUERIES["Q2"].text
        assert "diseasome:" in text
        assert text.count("a ") >= 2


class TestLakeBuilder:
    @pytest.fixture(scope="class")
    def lake_and_report(self):
        report = LakeBuildReport(scale=0.0, seed=0)
        lake = build_lslod_lake(scale=0.05, seed=42, report=report)
        return lake, report

    def test_ten_sources(self, lake_and_report):
        lake, __ = lake_and_report
        assert len(lake.source_ids) == 10

    def test_kegg_is_native_rdf(self, lake_and_report):
        lake, __ = lake_and_report
        assert isinstance(lake.source("kegg"), RDFSource)
        assert isinstance(lake.source("tcga"), RelationalSource)

    def test_benchmark_indexes_created(self, lake_and_report):
        lake, __ = lake_and_report
        for source_id, table, column in BENCHMARK_INDEXES:
            assert lake.physical_catalog.is_indexed(source_id, table, column), (
                source_id,
                table,
                column,
            )

    def test_advisor_declines_species(self, lake_and_report):
        lake, report = lake_and_report
        species = next(
            advice
            for advice in report.advisor_decisions
            if advice.column == "scientificname"
        )
        assert species.create is False
        assert not lake.physical_catalog.is_indexed(
            "affymetrix", "probeset", "scientificname"
        )

    def test_without_benchmark_indexes(self):
        lake = build_lslod_lake(scale=0.05, seed=42, with_benchmark_indexes=False)
        assert not lake.physical_catalog.is_indexed(
            "diseasome", "gene", "associateddisease"
        )
        # PKs always indexed
        assert lake.physical_catalog.is_indexed("diseasome", "gene", "id")

    def test_report_filled(self, lake_and_report):
        __, report = lake_and_report
        assert report.entity_counts["diseasome"]["Gene"] > 0
        assert report.created_indexes
