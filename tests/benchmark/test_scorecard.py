"""Heuristic scorecard: decision win/loss accounting and the paper's headline."""

from __future__ import annotations

import pytest

from repro.benchmark import run_scorecard
from repro.benchmark.scorecard import DecisionOutcome
from repro.datasets import BENCHMARK_QUERIES
from repro.network.delays import NetworkSetting


@pytest.fixture(scope="module")
def full_card(small_lslod_lake):
    return run_scorecard(
        small_lslod_lake,
        [BENCHMARK_QUERIES[name] for name in ("Q1", "Q2", "Q3", "Q4", "Q5")],
    )


class TestDecisionOutcome:
    def _outcome(self, time_taken, time_declined, dief_taken=2.0, dief_declined=1.0):
        return DecisionOutcome(
            query="Q2",
            network="Gamma 3",
            runtime="sequential",
            heuristic="H1",
            subject="?gene + ?disease",
            taken_policy="Physical-Design-Aware",
            declined_policy="Physical-Design-Unaware",
            time_taken=time_taken,
            time_declined=time_declined,
            dief_taken=dief_taken,
            dief_declined=dief_declined,
        )

    def test_win_when_taking_is_faster(self):
        outcome = self._outcome(1.0, 2.0)
        assert outcome.verdict == "win"
        assert outcome.time_delta == pytest.approx(1.0)
        assert outcome.dief_delta == pytest.approx(1.0)

    def test_loss_when_taking_is_slower(self):
        assert self._outcome(2.0, 1.0).verdict == "loss"

    def test_tie_within_tolerance(self):
        assert self._outcome(1.0, 1.0 + 1e-12).verdict == "tie"


class TestScorecardSweep:
    def test_sweep_covers_the_grid(self, full_card):
        # 5 queries x 5 policies x 4 networks.
        assert len(full_card.cells) == 100
        assert len(full_card.networks()) == 4
        assert len(full_card.queries()) == 5

    def test_h1_decisions_are_scored(self, full_card):
        """The unaware policy logs declined merges, so every H1 merge has a
        taken-vs-declined comparison instead of vanishing from the report."""
        h1 = full_card.heuristic_summaries()["H1"]
        assert h1.considered > 0

    def test_h1_merges_pay_off(self, full_card):
        """The paper's Heuristic 1 claim: pushing joins down into the source
        never loses on this workload."""
        h1 = full_card.heuristic_summaries()["H1"]
        assert h1.wins > 0
        assert h1.losses == 0
        assert h1.mean_time_delta > 0

    def test_h2_wins_on_balance(self, full_card):
        h2 = full_card.heuristic_summaries()["H2"]
        assert h2.considered > 0
        assert h2.wins > h2.losses
        assert h2.mean_time_delta > 0

    def test_aware_dominates_unaware_on_slow_networks(self, full_card):
        """The headline: physical-design-aware planning wins on most queries,
        and at least as broadly on the slow networks as with no delay."""
        dominance = full_card.dominance(
            "Physical-Design-Unaware", "Physical-Design-Aware"
        )
        for network, (faster, total) in dominance.items():
            assert total == 5
            assert faster >= 3, f"aware should win most queries on {network}"
        assert dominance["Gamma 3"][0] >= dominance["No Delay"][0]

    def test_outcomes_carry_dief_deltas(self, full_card):
        assert full_card.outcomes
        for outcome in full_card.outcomes:
            # The delta is computed over a common window, so both sides are
            # finite and the describe() line shows it.
            assert outcome.dief_taken >= 0
            assert outcome.dief_declined >= 0
            assert "Δdief@t" in outcome.describe()

    def test_render_and_to_dict(self, full_card):
        text = full_card.render()
        assert "Mean virtual execution time" in text
        assert "Heuristic 1" in text
        assert "Aware vs unaware" in text
        payload = full_card.to_dict()
        assert payload["heuristics"]["H1"]["wins"] == full_card.heuristic_summaries()["H1"].wins
        assert len(payload["cells"]) == len(full_card.cells)
        assert len(payload["outcomes"]) == len(full_card.outcomes)

    def test_deterministic(self, small_lslod_lake):
        queries = [BENCHMARK_QUERIES["Q2"]]
        networks = [NetworkSetting.gamma3()]
        first = run_scorecard(small_lslod_lake, queries, networks=networks)
        second = run_scorecard(small_lslod_lake, queries, networks=networks)
        assert first.to_dict() == second.to_dict()
