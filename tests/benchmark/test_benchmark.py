"""Tests for the benchmark harness: metrics, runner, traces, reporting."""

import json

import pytest

from repro.benchmark import (
    Configuration,
    GridResults,
    RunResult,
    TracePlot,
    answers_at,
    completeness,
    describe_result,
    dief_at_k,
    dief_at_t,
    downsample,
    experiment_grid,
    format_table,
    grid_table,
    network_impact_table,
    run_grid,
    run_query,
    same_answers,
    speedup_table,
    to_csv,
    to_json,
    total_answers,
)
from repro.core import PlanPolicy
from repro.network import NetworkSetting
from repro.rdf import Literal

from ..conftest import TINY_QUERY


class TestMetrics:
    TRACE = [(0.5, 1), (1.0, 2), (3.0, 3)]

    def test_totals(self):
        assert total_answers(self.TRACE) == 3
        assert total_answers([]) == 0

    def test_answers_at(self):
        assert answers_at(self.TRACE, 0.4) == 0
        assert answers_at(self.TRACE, 1.5) == 2

    def test_dief_at_t(self):
        # 1 answer in [0.5,1.0), 2 in [1.0,3.0)
        assert dief_at_t(self.TRACE, 3.0) == pytest.approx(0.5 + 4.0)

    def test_dief_at_t_monotone(self):
        assert dief_at_t(self.TRACE, 1.0) <= dief_at_t(self.TRACE, 2.0)

    def test_dief_at_k(self):
        assert dief_at_k(self.TRACE, 2) == 1.0
        assert dief_at_k(self.TRACE, 5) is None

    def test_dief_at_t_empty_trace(self):
        assert dief_at_t([], 0.0) == 0.0
        assert dief_at_t([], 10.0) == 0.0

    def test_dief_at_t_at_zero(self):
        # No area can accumulate before the first answer.
        assert dief_at_t(self.TRACE, 0.0) == 0.0

    def test_dief_at_t_beyond_last_answer(self):
        # Past the last arrival the final count keeps integrating: the full
        # area plus 3 answers held for 2 more virtual seconds.
        assert dief_at_t(self.TRACE, 5.0) == pytest.approx(0.5 + 4.0 + 3 * 2.0)

    def test_dief_at_k_empty_trace(self):
        assert dief_at_k([], 1) is None

    def test_dief_at_k_equals_answer_count(self):
        # k == total answers is the completion time of the run's last answer.
        assert dief_at_k(self.TRACE, total_answers(self.TRACE)) == 3.0

    def test_completeness(self):
        reference = [{"a": Literal("1")}, {"a": Literal("2")}]
        produced = [{"a": Literal("1")}]
        assert completeness(produced, reference) == pytest.approx(0.5)
        assert completeness(reference, reference) == 1.0
        assert completeness([], []) == 1.0

    def test_same_answers_order_independent(self):
        left = [{"a": Literal("1")}, {"a": Literal("2")}]
        right = [{"a": Literal("2")}, {"a": Literal("1")}]
        assert same_answers(left, right)
        assert not same_answers(left, right[:1])


class TestRunner:
    def test_experiment_grid_has_eight_cells(self):
        grid = experiment_grid()
        assert len(grid) == 8
        labels = {configuration.label for configuration in grid}
        assert "Physical-Design-Aware / Gamma 3" in labels

    def test_run_query(self, tiny_lake):
        configuration = Configuration(
            PlanPolicy.physical_design_aware(), NetworkSetting.no_delay()
        )
        result = run_query(tiny_lake, TINY_QUERY, configuration, seed=1)
        assert result.answers == 4
        assert result.execution_time > 0
        assert result.query == "query"

    def test_run_grid(self, tiny_lake):
        from repro.datasets.queries import BenchmarkQuery

        query = BenchmarkQuery(name="tiny", text=TINY_QUERY, rationale="test", exercises=())
        grid = run_grid(tiny_lake, [query])
        assert len(grid.results) == 8
        assert grid.queries() == ["tiny"]
        assert len(grid.networks()) == 4

    def test_lookup_and_derived_metrics(self, tiny_lake):
        from repro.datasets.queries import BenchmarkQuery

        query = BenchmarkQuery(name="tiny", text=TINY_QUERY, rationale="test", exercises=())
        grid = run_grid(tiny_lake, [query])
        result = grid.lookup("tiny", "Physical-Design-Aware", "Gamma 2")
        assert result.network == "Gamma 2"
        slowdown = grid.slowdown("tiny", "Physical-Design-Aware", "No Delay", "Gamma 3")
        assert slowdown > 1.0
        speedup = grid.speedup(
            "tiny", "Gamma 3", "Physical-Design-Unaware", "Physical-Design-Aware"
        )
        assert speedup > 0

    def test_lookup_missing_raises(self):
        with pytest.raises(KeyError):
            GridResults().lookup("q", "p", "n")

    def test_slowdown_guards_zero_baseline(self):
        """A zero (or negative) baseline time must not divide: the slowdown
        degenerates to +inf instead of raising ZeroDivisionError."""
        grid = GridResults()
        for network, elapsed in (("No Delay", 0.0), ("Gamma 3", 2.0)):
            grid.add(
                RunResult(
                    query="Q",
                    policy="Aware",
                    network=network,
                    answers=0,
                    execution_time=elapsed,
                    time_to_first_answer=None,
                    messages=0,
                    engine_cost=0.0,
                    trace=[],
                )
            )
        assert grid.slowdown("Q", "Aware", "No Delay", "Gamma 3") == float("inf")


def make_grid() -> GridResults:
    grid = GridResults()
    for policy in ("Unaware", "Aware"):
        for network, base in (("No Delay", 1.0), ("Gamma 3", 5.0)):
            factor = 1.0 if policy == "Aware" else 2.0
            grid.add(
                RunResult(
                    query="Q",
                    policy=policy,
                    network=network,
                    answers=10,
                    execution_time=base * factor,
                    time_to_first_answer=0.1,
                    messages=100,
                    engine_cost=0.5,
                    trace=[(0.1, 1), (base * factor, 10)],
                )
            )
    return grid


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "b"], [["1", "22"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]

    def test_grid_table(self):
        text = grid_table(make_grid())
        assert "Q" in text
        assert "10.0000" in text

    def test_speedup_table(self):
        text = speedup_table(make_grid(), "Unaware", "Aware")
        assert "2.00x" in text

    def test_network_impact_table(self):
        text = network_impact_table(make_grid())
        assert "5.00x" in text

    def test_to_csv(self):
        csv = to_csv(make_grid())
        assert csv.splitlines()[0].startswith("query,policy,network")
        assert len(csv.splitlines()) == 5

    def test_to_json(self):
        payload = json.loads(to_json(make_grid(), include_traces=True))
        assert len(payload) == 4
        assert payload[0]["trace"]

    def test_describe_result(self):
        text = describe_result(make_grid().results[0])
        assert "Q [Unaware / No Delay]" in text


class TestTraces:
    def test_plot_renders(self):
        plot = TracePlot("test")
        plot.add("a", [(0.1, 1), (0.5, 2)])
        plot.add("b", [(0.2, 1)])
        rendered = plot.render_ascii(width=40, height=8)
        assert "test" in rendered
        assert "[*] a" in rendered
        assert "[o] b" in rendered

    def test_plot_empty(self):
        assert "(no answers)" in TracePlot("empty").render_ascii()

    def test_plot_csv(self):
        plot = TracePlot("test")
        plot.add("a", [(0.1, 1)])
        assert plot.to_csv().splitlines() == ["label,time,answers", "a,0.100000,1"]

    def test_downsample(self):
        trace = [(float(index), index) for index in range(1000)]
        thinned = downsample(trace, points=100)
        assert len(thinned) <= 101
        assert thinned[-1] == trace[-1]
        assert thinned[0] == trace[0]

    def test_downsample_short_trace_unchanged(self):
        trace = [(0.1, 1)]
        assert downsample(trace, points=100) == trace
