"""Plan-quality baseline: snapshot/compare semantics and the regression gate."""

from __future__ import annotations

import copy
import json

import pytest

from repro.benchmark.baseline import (
    BASELINE_KIND,
    BASELINE_VERSION,
    Thresholds,
    baseline_json,
    build_baseline,
    cell_key,
    compare_baselines,
    load_baseline,
    write_baseline,
)
from repro.datasets import BENCHMARK_QUERIES

# One query on a reduced grid keeps the fixture fast while still crossing
# policies, networks and runtimes.
QUERIES = {"Q2": BENCHMARK_QUERIES["Q2"].text}
POLICIES = ("aware", "unaware")
NETWORKS = ("nodelay", "gamma3")
RUNTIMES = ("sequential", "event")


@pytest.fixture(scope="module")
def payload(small_lslod_lake):
    return build_baseline(
        small_lslod_lake,
        QUERIES,
        scale=0.1,
        data_seed=42,
        policies=POLICIES,
        networks=NETWORKS,
        runtimes=RUNTIMES,
    )


class TestSnapshot:
    def test_covers_the_grid(self, payload):
        assert len(payload["cells"]) == 1 * 2 * 2 * 2
        assert cell_key("Q2", "aware", "gamma3", "event") in payload["cells"]

    def test_cells_carry_plan_quality_quantities(self, payload):
        cell = payload["cells"][cell_key("Q2", "aware", "gamma3", "sequential")]
        assert cell["answers"] > 0
        assert cell["execution_time"] > 0
        assert cell["dief_t"] > 0
        assert cell["dief_k"] > 0
        assert cell["operators"], "per-operator cardinalities must be recorded"
        for label, estimated, actual in cell["operators"]:
            assert isinstance(label, str)
            assert isinstance(actual, int)
            assert estimated is None or estimated >= 0
        assert cell["q_error_max"] >= 1.0

    def test_reproducible(self, small_lslod_lake, payload):
        again = build_baseline(
            small_lslod_lake,
            QUERIES,
            scale=0.1,
            data_seed=42,
            policies=POLICIES,
            networks=NETWORKS,
            runtimes=RUNTIMES,
        )
        assert baseline_json(again) == baseline_json(payload)

    def test_write_load_round_trip(self, payload, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(payload, str(path))
        assert load_baseline(str(path)) == payload

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError, match="not a plan-quality baseline"):
            load_baseline(str(path))
        path.write_text(
            json.dumps({"kind": BASELINE_KIND, "version": BASELINE_VERSION + 1})
        )
        with pytest.raises(ValueError, match="version"):
            load_baseline(str(path))


class TestRegressionGate:
    def test_clean_comparison_passes(self, payload):
        report = compare_baselines(payload, payload)
        assert report.ok
        assert report.cells_compared == len(payload["cells"])
        assert "OK" in report.render()

    def test_time_regression_fails(self, payload):
        perturbed = copy.deepcopy(payload)
        key = cell_key("Q2", "aware", "gamma3", "sequential")
        perturbed["cells"][key]["execution_time"] *= 1.10
        report = compare_baselines(payload, perturbed)
        assert not report.ok
        assert [diff.key for diff in report.diffs] == [key]
        assert report.diffs[0].quantity == "execution_time"
        assert "DRIFT" in report.render()
        assert key in report.render()

    def test_speedup_also_fails(self, payload):
        """Drift is symmetric: an unexplained speedup invalidates the file."""
        perturbed = copy.deepcopy(payload)
        key = cell_key("Q2", "unaware", "gamma3", "event")
        perturbed["cells"][key]["execution_time"] *= 0.80
        assert not compare_baselines(payload, perturbed).ok

    def test_drift_within_tolerance_passes(self, payload):
        perturbed = copy.deepcopy(payload)
        key = cell_key("Q2", "aware", "gamma3", "sequential")
        perturbed["cells"][key]["execution_time"] *= 1.005
        assert compare_baselines(payload, perturbed).ok
        assert not compare_baselines(
            payload, perturbed, Thresholds(rel_time=0.001)
        ).ok

    def test_answer_counts_compare_exactly(self, payload):
        perturbed = copy.deepcopy(payload)
        key = cell_key("Q2", "aware", "nodelay", "sequential")
        perturbed["cells"][key]["answers"] += 1
        report = compare_baselines(payload, perturbed)
        assert any(diff.quantity == "answers" for diff in report.diffs)

    def test_cardinality_change_is_reported_per_operator(self, payload):
        perturbed = copy.deepcopy(payload)
        key = cell_key("Q2", "aware", "nodelay", "sequential")
        perturbed["cells"][key]["operators"][0][2] += 5
        report = compare_baselines(payload, perturbed)
        diffs = [diff for diff in report.diffs if diff.quantity == "operators"]
        assert len(diffs) == 1
        assert "rows" in diffs[0].detail

    def test_missing_and_extra_cells_are_reported(self, payload):
        perturbed = copy.deepcopy(payload)
        key = cell_key("Q2", "aware", "gamma3", "event")
        moved = perturbed["cells"].pop(key)
        perturbed["cells"]["Q9|aware|gamma3|event"] = moved
        report = compare_baselines(payload, perturbed)
        details = {(diff.key, diff.detail) for diff in report.diffs}
        assert (key, "cell not re-run") in details
        assert ("Q9|aware|gamma3|event", "cell absent from baseline") in details

    def test_report_to_dict_round_trips_through_json(self, payload):
        perturbed = copy.deepcopy(payload)
        key = cell_key("Q2", "aware", "gamma3", "sequential")
        perturbed["cells"][key]["dief_t"] *= 2
        report = compare_baselines(payload, perturbed)
        payload_dict = json.loads(json.dumps(report.to_dict()))
        assert payload_dict["ok"] is False
        assert payload_dict["diffs"][0]["key"] == key


class TestCommittedBaseline:
    """The repo-level BENCH_plan_quality.json is the gate CI runs against."""

    def test_committed_baseline_matches_a_fresh_run(self, small_lslod_lake):
        committed = load_baseline("BENCH_plan_quality.json")
        assert committed["scale"] == 0.1
        assert committed["data_seed"] == 42
        # Re-run a slice of the committed grid (full grid belongs to CI)
        # against the same session lake and require exact agreement.
        fresh = build_baseline(
            small_lslod_lake,
            {"Q2": BENCHMARK_QUERIES["Q2"].text},
            scale=committed["scale"],
            data_seed=committed["data_seed"],
            run_seed=committed["run_seed"],
            policies=committed["policies"],
            networks=committed["networks"],
            runtimes=committed["runtimes"],
        )
        trimmed = {
            "cells": {
                key: cell
                for key, cell in committed["cells"].items()
                if key.startswith("Q2|")
            }
        }
        report = compare_baselines(trimmed, fresh)
        assert report.ok, report.render()
