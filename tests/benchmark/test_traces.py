"""Tests for answer-trace series, plots, and the CSV round-trip."""

import pytest

from repro.benchmark import TracePlot
from repro.benchmark.traces import TraceSeries, downsample


class TestTraceSeries:
    def test_empty_trace(self):
        series = TraceSeries("empty", [])
        assert series.final_time == 0.0
        assert series.final_count == 0
        assert series.count_at(0.0) == 0
        assert series.count_at(10.0) == 0

    def test_single_point(self):
        series = TraceSeries("one", [(0.5, 1)])
        assert series.final_time == 0.5
        assert series.final_count == 1
        assert series.count_at(0.25) == 0
        assert series.count_at(0.5) == 1

    def test_count_at_boundaries(self):
        series = TraceSeries("s", [(1.0, 1), (2.0, 2), (4.0, 3)])
        # Before the first answer.
        assert series.count_at(0.999) == 0
        # Exactly on a timestamp: the answer at t counts at t (<=).
        assert series.count_at(1.0) == 1
        assert series.count_at(2.0) == 2
        # Between points: the last completed count.
        assert series.count_at(3.5) == 2
        # At and beyond the end.
        assert series.count_at(4.0) == 3
        assert series.count_at(100.0) == 3


class TestRender:
    def test_render_empty_plot(self):
        plot = TracePlot("nothing")
        assert "(no answers)" in plot.render_ascii()

    def test_render_all_empty_series(self):
        plot = TracePlot("nothing")
        plot.add("a", [])
        assert "(no answers)" in plot.render_ascii()

    def test_render_single_point_series(self):
        plot = TracePlot("one answer")
        plot.add("a", [(0.5, 1)])
        text = plot.render_ascii(width=20, height=5)
        assert "one answer" in text
        assert "1 answers in 0.500s" in text


class TestCsvRoundTrip:
    def test_round_trip_preserves_series_and_values(self):
        plot = TracePlot("rt")
        plot.add("aware/gamma1", [(0.25, 1), (0.5, 2)])
        plot.add("unaware/gamma1", [(0.125, 1)])
        restored = TracePlot.from_csv(plot.to_csv(), title="rt")
        assert [series.label for series in restored.series] == [
            "aware/gamma1",
            "unaware/gamma1",
        ]
        assert restored.series[0].trace == [(0.25, 1), (0.5, 2)]
        assert restored.series[1].trace == [(0.125, 1)]
        # A second trip is byte-stable.
        assert restored.to_csv() == plot.to_csv()

    def test_round_trip_empty_plot(self):
        restored = TracePlot.from_csv(TracePlot("empty").to_csv())
        assert restored.series == []

    def test_labels_containing_commas_survive(self):
        plot = TracePlot("commas")
        plot.add("policy,with,commas", [(1.0, 1)])
        restored = TracePlot.from_csv(plot.to_csv())
        assert restored.series[0].label == "policy,with,commas"
        assert restored.series[0].trace == [(1.0, 1)]

    def test_rejects_bad_header_and_rows(self):
        with pytest.raises(ValueError, match="header"):
            TracePlot.from_csv("time,label,answers\n")
        with pytest.raises(ValueError, match="row 2"):
            TracePlot.from_csv("label,time,answers\na,not-a-number,1")


class TestDownsample:
    def test_short_traces_pass_through(self):
        trace = [(0.1, 1), (0.2, 2)]
        assert downsample(trace, points=10) == trace

    def test_long_traces_keep_endpoints(self):
        trace = [(float(i), i + 1) for i in range(1000)]
        thinned = downsample(trace, points=50)
        assert len(thinned) <= 51
        assert thinned[0] == trace[0]
        assert thinned[-1] == trace[-1]
