"""Shared fixtures: a small deterministic lake and helper factories."""

from __future__ import annotations

import os

import pytest

from repro.datalake import SemanticDataLake
from repro.datasets import build_lslod_lake
from repro.rdf import Graph, parse_into

try:
    from hypothesis import settings as _hypothesis_settings

    # `dev` keeps the default run fast; `ci` turns the thoroughness up.
    # Select with HYPOTHESIS_PROFILE=ci (the CI workflow does).
    _hypothesis_settings.register_profile("dev", max_examples=50, deadline=None)
    _hypothesis_settings.register_profile("ci", max_examples=300, deadline=None)
    _hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    pass


def pytest_collection_modifyitems(config, items):
    # Everything not opted out as slow/fuzz is tier-1, so `-m tier1`
    # selects exactly the ROADMAP verify gate.
    for item in items:
        if item.get_closest_marker("slow") is None and item.get_closest_marker("fuzz") is None:
            item.add_marker(pytest.mark.tier1)


TINY_DISEASOME = """\
<http://ex/diseasome/Disease/1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/vocab#Disease> .
<http://ex/diseasome/Disease/1> <http://ex/vocab#diseaseName> "breast cancer" .
<http://ex/diseasome/Disease/1> <http://ex/vocab#diseaseClass> "cancer" .
<http://ex/diseasome/Disease/2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/vocab#Disease> .
<http://ex/diseasome/Disease/2> <http://ex/vocab#diseaseName> "diabetes" .
<http://ex/diseasome/Disease/2> <http://ex/vocab#diseaseClass> "metabolic" .
<http://ex/diseasome/Disease/3> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/vocab#Disease> .
<http://ex/diseasome/Disease/3> <http://ex/vocab#diseaseName> "lung cancer" .
<http://ex/diseasome/Disease/3> <http://ex/vocab#diseaseClass> "cancer" .
<http://ex/diseasome/Gene/10> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/vocab#Gene> .
<http://ex/diseasome/Gene/10> <http://ex/vocab#geneSymbol> "BRCA1" .
<http://ex/diseasome/Gene/10> <http://ex/vocab#associatedDisease> <http://ex/diseasome/Disease/1> .
<http://ex/diseasome/Gene/11> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/vocab#Gene> .
<http://ex/diseasome/Gene/11> <http://ex/vocab#geneSymbol> "TP53" .
<http://ex/diseasome/Gene/11> <http://ex/vocab#associatedDisease> <http://ex/diseasome/Disease/1> .
<http://ex/diseasome/Gene/12> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/vocab#Gene> .
<http://ex/diseasome/Gene/12> <http://ex/vocab#geneSymbol> "KRAS" .
<http://ex/diseasome/Gene/12> <http://ex/vocab#associatedDisease> <http://ex/diseasome/Disease/3> .
<http://ex/diseasome/Gene/13> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/vocab#Gene> .
<http://ex/diseasome/Gene/13> <http://ex/vocab#geneSymbol> "INS" .
<http://ex/diseasome/Gene/13> <http://ex/vocab#associatedDisease> <http://ex/diseasome/Disease/2> .
"""

TINY_AFFYMETRIX = """\
<http://ex/affy/Probeset/1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/vocab#Probeset> .
<http://ex/affy/Probeset/1> <http://ex/vocab#symbol> "BRCA1" .
<http://ex/affy/Probeset/1> <http://ex/vocab#scientificName> "Homo sapiens" .
<http://ex/affy/Probeset/2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/vocab#Probeset> .
<http://ex/affy/Probeset/2> <http://ex/vocab#symbol> "TP53" .
<http://ex/affy/Probeset/2> <http://ex/vocab#scientificName> "Mus musculus" .
<http://ex/affy/Probeset/3> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/vocab#Probeset> .
<http://ex/affy/Probeset/3> <http://ex/vocab#symbol> "KRAS" .
<http://ex/affy/Probeset/3> <http://ex/vocab#scientificName> "Homo sapiens" .
"""


def make_tiny_graph(text: str, name: str = "tiny") -> Graph:
    graph = Graph(name)
    parse_into(graph, text)
    return graph


@pytest.fixture
def diseasome_graph() -> Graph:
    return make_tiny_graph(TINY_DISEASOME, "diseasome")


@pytest.fixture
def affymetrix_graph() -> Graph:
    return make_tiny_graph(TINY_AFFYMETRIX, "affymetrix")


@pytest.fixture
def tiny_lake(diseasome_graph, affymetrix_graph) -> SemanticDataLake:
    """A two-source relational lake with the benchmark's index layout."""
    lake = SemanticDataLake("tiny")
    lake.add_graph_as_relational("diseasome", diseasome_graph)
    lake.add_graph_as_relational("affymetrix", affymetrix_graph)
    lake.create_index("diseasome", "gene", ["associateddisease"])
    lake.create_index("affymetrix", "probeset", ["symbol"])
    return lake


@pytest.fixture(scope="session")
def small_lslod_lake() -> SemanticDataLake:
    """A session-scoped small LSLOD lake (treat as read-only)."""
    return build_lslod_lake(scale=0.1, seed=42)


TINY_QUERY = """
PREFIX v: <http://ex/vocab#>
SELECT ?g ?sym ?dn WHERE {
  ?g a v:Gene ; v:geneSymbol ?sym ; v:associatedDisease ?d .
  ?d a v:Disease ; v:diseaseName ?dn .
}
"""

TINY_CROSS_SOURCE_QUERY = """
PREFIX v: <http://ex/vocab#>
SELECT ?g ?p ?species WHERE {
  ?g a v:Gene ; v:geneSymbol ?sym .
  ?p a v:Probeset ; v:symbol ?sym ; v:scientificName ?species .
  FILTER(CONTAINS(?species, "Homo"))
}
"""
