"""Admission-control invariants, unit-tested and property-tested.

The property half drives the controller through hundreds of seeded random
schedules (random limits, tenants, arrival patterns, completion orders,
deadlines) and checks, for every one:

* no accepted request is ever dropped — each reaches exactly one terminal
  state (done / timeout / shed);
* per-tenant FIFO ordering holds;
* the global and per-tenant concurrency limits hold at every instant
  (re-verified post-hoc by :func:`audit_schedule` from the ticket log);
* every refusal is structured — a shed or timed-out ticket names its
  reason and the limit that triggered it.
"""

import random

import pytest

from repro.service import (
    AdmissionController,
    DONE,
    QUEUED,
    RUNNING,
    SHED,
    ServiceConfig,
    ServiceConfigError,
    TIMED_OUT,
    TenantConfig,
    Ticket,
    audit_schedule,
)
from repro.service.admission import (
    REASON_TENANT_QUEUE_FULL,
    REASON_UNKNOWN_TENANT,
)


def make_config(**overrides) -> ServiceConfig:
    defaults = dict(
        global_concurrency=2,
        timeout=None,
        default_tenant=TenantConfig(name="default", max_concurrency=1, queue_depth=2),
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


# -- deterministic unit tests -------------------------------------------------


def test_fifo_within_tenant():
    ctl = AdmissionController(make_config(global_concurrency=1))
    first = ctl.submit("r1", "a", 0.0)
    second = ctl.submit("r2", "a", 1.0)
    assert ctl.start_ready(1.0) == [first]
    ctl.complete(first, 2.0)
    assert ctl.start_ready(2.0) == [second]
    assert second.started_at == 2.0


def test_no_cross_tenant_head_of_line_blocking():
    # Tenant "a" saturates its per-tenant limit; the younger request of
    # tenant "b" must start anyway (skipped, not blocked).
    ctl = AdmissionController(make_config(global_concurrency=4))
    blocked = ctl.submit("r1", "a", 0.0)
    waiting = ctl.submit("r2", "a", 0.1)
    younger = ctl.submit("r3", "b", 0.2)
    started = ctl.start_ready(0.2)
    assert [ticket.request_id for ticket in started] == ["r1", "r3"]
    assert waiting.state == QUEUED
    ctl.complete(blocked, 1.0)
    assert ctl.start_ready(1.0) == [waiting]
    assert younger.state == RUNNING


def test_global_limit_holds():
    ctl = AdmissionController(
        make_config(
            global_concurrency=2,
            default_tenant=TenantConfig(
                name="default", max_concurrency=5, queue_depth=10
            ),
        )
    )
    for index in range(4):
        ctl.submit(f"r{index}", "a", float(index) / 10)
    assert len(ctl.start_ready(1.0)) == 2
    assert ctl.running == 2
    assert ctl.queued == 2


def test_queue_depth_sheds_with_structured_refusal():
    ctl = AdmissionController(
        make_config(
            global_concurrency=1,
            default_tenant=TenantConfig(
                name="default", max_concurrency=1, queue_depth=1
            ),
        )
    )
    ctl.submit("r1", "a", 0.0)
    ctl.start_ready(0.0)
    ctl.submit("r2", "a", 0.1)  # fills the queue
    shed = ctl.submit("r3", "a", 0.2)
    assert shed.state == SHED
    assert shed.reason == REASON_TENANT_QUEUE_FULL
    refusal = shed.refusal()
    assert refusal["request_id"] == "r3"
    assert refusal["reason"] == REASON_TENANT_QUEUE_FULL
    assert refusal["state"] == SHED
    # A shed never consumed queue space: the queued request still starts.
    assert ctl.queued_for("a") == 1


def test_strict_tenants_shed_unknown():
    config = make_config(strict_tenants=True, tenants={"acme": TenantConfig("acme")})
    ctl = AdmissionController(config)
    shed = ctl.submit("r1", "evil", 0.0)
    assert shed.state == SHED
    assert shed.reason == REASON_UNKNOWN_TENANT
    ok = ctl.submit("r2", "acme", 0.1)
    assert ok.state == QUEUED


def test_queued_timeout_stamps_deadline():
    ctl = AdmissionController(make_config(global_concurrency=1, timeout=5.0))
    running = ctl.submit("r1", "a", 0.0)
    ctl.start_ready(0.0)
    queued = ctl.submit("r2", "b", 1.0)
    # Nothing frees a slot before r2's deadline (6.0); expiry happens at
    # the next pump, but finished_at records the exact deadline.
    assert ctl.start_ready(10.0) == []
    assert queued.state == TIMED_OUT
    assert queued.reason == "queued-timeout"
    assert queued.finished_at == 6.0
    assert queued.started_at is None
    assert running.state == RUNNING  # still holds its slot


def test_running_timeout_on_late_completion():
    ctl = AdmissionController(make_config(timeout=2.0))
    ticket = ctl.submit("r1", "a", 0.0)
    ctl.start_ready(0.0)
    ctl.complete(ticket, 5.0)
    assert ticket.state == TIMED_OUT
    assert ticket.reason == "running-timeout"
    assert ctl.running == 0  # the slot was released on actual completion


def test_complete_requires_running():
    ctl = AdmissionController(make_config())
    ticket = ctl.submit("r1", "a", 0.0)
    with pytest.raises(ValueError, match="cannot complete ticket 'r1'"):
        ctl.complete(ticket, 1.0)


def test_metrics_add_up():
    ctl = AdmissionController(
        make_config(
            global_concurrency=1,
            default_tenant=TenantConfig(
                name="default", max_concurrency=1, queue_depth=1
            ),
        )
    )
    first = ctl.submit("r1", "a", 0.0)
    ctl.start_ready(0.0)
    ctl.submit("r2", "a", 0.1)
    ctl.submit("r3", "a", 0.2)  # shed
    ctl.complete(first, 1.0)
    ctl.start_ready(1.0)
    metrics = ctl.metrics.to_dict()
    assert metrics["submitted"] == 3
    assert metrics["shed"] == 1
    assert metrics["started"] == 2
    assert metrics["completed"] == 1
    assert metrics["shed_by_reason"] == {REASON_TENANT_QUEUE_FULL: 1}


def test_audit_flags_fabricated_violations():
    config = make_config(global_concurrency=1, timeout=None)
    overlapping = [
        Ticket("r1", "a", 0.0, seq=1, state=DONE, started_at=0.0, finished_at=2.0),
        Ticket("r2", "a", 0.5, seq=2, state=DONE, started_at=1.0, finished_at=3.0),
    ]
    violations = audit_schedule(overlapping, config)
    assert any("exceeds the global limit" in violation for violation in violations)
    out_of_order = [
        Ticket("r1", "a", 0.0, seq=1, state=DONE, started_at=5.0, finished_at=6.0),
        Ticket("r2", "a", 0.5, seq=2, state=DONE, started_at=1.0, finished_at=2.0),
    ]
    violations = audit_schedule(out_of_order, config)
    assert any("FIFO violation" in violation for violation in violations)
    dropped = [Ticket("r1", "a", 0.0, seq=1, state=QUEUED)]
    violations = audit_schedule(dropped, config)
    assert any("dropped" in violation for violation in violations)


# -- property-style randomized schedules --------------------------------------


def run_random_schedule(seed: int):
    """Drive one random schedule to completion; returns (config, ctl, tickets)."""
    rng = random.Random(seed)
    tenant_count = rng.randint(1, 4)
    strict = rng.random() < 0.25
    roster = {}
    if strict or rng.random() < 0.5:
        for index in range(tenant_count):
            name = f"t{index}"
            roster[name] = TenantConfig(
                name=name,
                max_concurrency=rng.randint(1, 3),
                queue_depth=rng.randint(1, 4),
            )
    config = ServiceConfig(
        global_concurrency=rng.randint(1, 5),
        timeout=rng.choice([None, round(rng.uniform(0.5, 4.0), 3)]),
        default_tenant=TenantConfig(
            name="default",
            max_concurrency=rng.randint(1, 3),
            queue_depth=rng.randint(1, 4),
        ),
        tenants=roster,
        strict_tenants=strict,
    )
    ctl = AdmissionController(config)
    tickets: list = []
    running: list = []
    now = 0.0

    def pump():
        running.extend(ctl.start_ready(now))

    total = rng.randint(5, 40)
    for index in range(total):
        now += rng.random() * 0.8
        # Strict configs see occasional unknown tenants (must shed, not crash).
        tenant = (
            "unknown"
            if strict and rng.random() < 0.15
            else f"t{rng.randrange(tenant_count)}"
        )
        tickets.append(ctl.submit(f"r{index}", tenant, now))
        pump()
        while running and rng.random() < 0.4:
            now += rng.random() * 0.8
            ctl.complete(running.pop(rng.randrange(len(running))), now)
            pump()
    # Drain: finish everything still running; queued tickets either start
    # into freed slots or expire past their deadline.
    guard = 0
    while running or ctl.queued:
        guard += 1
        assert guard < 10_000, "drain loop did not converge"
        now += rng.random() + 0.05
        if running:
            ctl.complete(running.pop(rng.randrange(len(running))), now)
        pump()
    return config, ctl, tickets


@pytest.mark.parametrize("seed", range(250))
def test_random_schedule_invariants(seed):
    config, ctl, tickets = run_random_schedule(seed)

    # The post-hoc auditor re-verifies FIFO + limits from the log alone.
    assert audit_schedule(tickets, config) == []

    # No accepted request is dropped: every ticket is terminal, exactly one way.
    for ticket in tickets:
        assert ticket.state in (DONE, SHED, TIMED_OUT), ticket
        if ticket.state == SHED:
            assert ticket.reason in (REASON_TENANT_QUEUE_FULL, REASON_UNKNOWN_TENANT)
            assert ticket.started_at is None
            refusal = ticket.refusal()
            assert refusal["reason"] == ticket.reason
            assert refusal["tenant"] == ticket.tenant
        elif ticket.state == TIMED_OUT:
            assert ticket.reason in ("queued-timeout", "running-timeout")
            if ticket.reason == "queued-timeout":
                assert ticket.started_at is None
                assert ticket.finished_at == ticket.deadline
            else:
                assert ticket.started_at is not None
                assert ticket.finished_at > ticket.deadline
        else:
            assert ticket.started_at is not None
            assert ticket.finished_at is not None
            assert ticket.submitted_at <= ticket.started_at <= ticket.finished_at
            if ticket.deadline is not None:
                assert ticket.finished_at <= ticket.deadline

    # All slots were released.
    assert ctl.running == 0
    assert ctl.queued == 0

    # The lifetime counters agree with the per-ticket outcomes.
    outcomes = {DONE: 0, SHED: 0, TIMED_OUT: 0}
    started = 0
    for ticket in tickets:
        outcomes[ticket.state] += 1
        if ticket.started_at is not None:
            started += 1
    assert ctl.metrics.submitted == len(tickets)
    assert ctl.metrics.shed == outcomes[SHED]
    assert ctl.metrics.completed == outcomes[DONE]
    assert ctl.metrics.timed_out == outcomes[TIMED_OUT]
    assert ctl.metrics.started == started


def test_random_schedules_exercise_every_outcome():
    """Sanity: across the seeds, shedding and both timeout kinds occur."""
    reasons = set()
    states = set()
    for seed in range(250):
        __, __, tickets = run_random_schedule(seed)
        for ticket in tickets:
            states.add(ticket.state)
            if ticket.reason:
                reasons.add(ticket.reason)
    assert states == {DONE, SHED, TIMED_OUT}
    assert REASON_TENANT_QUEUE_FULL in reasons
    assert REASON_UNKNOWN_TENANT in reasons
    assert "queued-timeout" in reasons
    assert "running-timeout" in reasons


def test_controller_rejects_invalid_config():
    with pytest.raises(ServiceConfigError):
        AdmissionController(ServiceConfig(global_concurrency=0))


# -- weighted fair share (stride scheduling) ----------------------------------


def weighted_config() -> ServiceConfig:
    return make_config(
        global_concurrency=1,
        tenants={
            "a": TenantConfig(name="a", max_concurrency=1, queue_depth=32, weight=2.0),
            "b": TenantConfig(name="b", max_concurrency=1, queue_depth=32, weight=1.0),
        },
    )


def drain_one_at_a_time(ctl: AdmissionController, start: float = 1.0) -> list[str]:
    """Start and immediately complete one ticket at a time; returns tenants
    in start order (global_concurrency=1 makes each pump start exactly one)."""
    order = []
    now = start
    while ctl.queued:
        started = ctl.start_ready(now)
        assert len(started) == 1
        order.append(started[0].tenant)
        ctl.complete(started[0], now + 0.5)
        now += 1.0
    return order


def test_weight_2_tenant_gets_twice_the_starts():
    ctl = AdmissionController(weighted_config())
    for index in range(8):
        ctl.submit(f"a{index}", "a", 0.0)
    for index in range(4):
        ctl.submit(f"b{index}", "b", 0.0)
    order = drain_one_at_a_time(ctl)
    # Stride with weights 2:1 — tenant a starts twice for every b start,
    # and equal passes break ties by submission order.
    assert order == ["a", "b", "a", "a", "b", "a", "a", "b", "a", "a", "b", "a"]


def test_started_tickets_record_their_stride_pass():
    ctl = AdmissionController(weighted_config())
    ctl.submit("a0", "a", 0.0)
    ctl.submit("b0", "b", 0.0)
    first, = ctl.start_ready(1.0)
    assert first.tenant == "a" and first.stride_pass == 0.0
    assert first.to_dict()["stride_pass"] == 0.0
    ctl.complete(first, 2.0)
    second, = ctl.start_ready(2.0)
    assert second.tenant == "b" and second.stride_pass == 0.0


def test_idle_tenant_banks_no_credit():
    config = make_config(
        global_concurrency=1,
        tenants={
            "a": TenantConfig(name="a", max_concurrency=1, queue_depth=32),
            "b": TenantConfig(name="b", max_concurrency=1, queue_depth=32),
        },
    )
    ctl = AdmissionController(config)
    # Tenant a alone works through a backlog (its pass climbs to 4)...
    for index in range(4):
        ctl.submit(f"a{index}", "a", 0.0)
    assert drain_one_at_a_time(ctl) == ["a"] * 4
    # ...the system drains, then both tenants return together.  A new busy
    # period starts from even passes: strict alternation, not b twice first.
    ctl.submit("b4", "b", 10.0)
    ctl.submit("b5", "b", 10.0)
    ctl.submit("a4", "a", 10.0)
    ctl.submit("a5", "a", 10.0)
    assert drain_one_at_a_time(ctl, start=10.0) == ["b", "a", "b", "a"]


def test_audit_flags_weighted_unfairness():
    config = make_config(
        global_concurrency=2,
        tenants={
            "a": TenantConfig(name="a", max_concurrency=2, queue_depth=32),
            "b": TenantConfig(name="b", max_concurrency=2, queue_depth=32),
        },
    )
    # Tenant a started at pass 5.0 while tenant b's head (queued since 0.0,
    # startable, pass 0.0 when it finally started) was skipped.
    unfair = [
        Ticket(
            "r1", "a", 0.0, seq=1, state=DONE,
            started_at=1.0, finished_at=3.0, stride_pass=5.0,
        ),
        Ticket(
            "r2", "b", 0.0, seq=2, state=DONE,
            started_at=2.0, finished_at=3.0, stride_pass=0.0,
        ),
    ]
    violations = audit_schedule(unfair, config)
    assert any("weighted fair-share violation" in v for v in violations)
    # Same schedule with the passes the stride scheduler would actually
    # have produced (a picked at the lower pass) is clean.
    fair = [
        Ticket(
            "r1", "a", 0.0, seq=1, state=DONE,
            started_at=1.0, finished_at=3.0, stride_pass=0.0,
        ),
        Ticket(
            "r2", "b", 0.0, seq=2, state=DONE,
            started_at=2.0, finished_at=3.0, stride_pass=0.0,
        ),
    ]
    assert audit_schedule(fair, config) == []


def test_weighted_schedule_passes_its_own_audit():
    ctl = AdmissionController(weighted_config())
    log = []
    for index in range(6):
        log.append(ctl.submit(f"a{index}", "a", 0.0))
    for index in range(6):
        log.append(ctl.submit(f"b{index}", "b", 0.0))
    now = 1.0
    while ctl.queued:
        for ticket in ctl.start_ready(now):
            ctl.complete(ticket, now + 0.5)
        now += 1.0
    assert audit_schedule(log, ctl.config) == []
