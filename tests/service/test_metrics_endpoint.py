"""The telemetry surface of the live HTTP service: ``/metrics`` exposition,
the versioned ``/stats`` document, journal streaming via ``serve --journal``'s
config knob, and the ``repro slo report`` CLI over a journal file.
"""

import asyncio
import json

from repro.cli import main as cli_main
from repro.obs import (
    EventJournal,
    accountant_from_journal,
    parse_exposition,
    validate_exposition,
)
from repro.obs import SLO_VERSION
from repro.service import STATS_VERSION, ServiceConfig
from tests.service.test_server import (
    ServiceHarness,
    fake_run_query,
    http,
    poll_until_terminal,
    run,
)


async def http_raw(port, method, path):
    """One HTTP/1.1 exchange returning the body as raw text (no JSON)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    head = f"{method} {path} HTTP/1.1\r\nHost: localhost\r\n\r\n"
    writer.write(head.encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except ConnectionError:
        pass
    header_blob, __, data = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split(b" ")[1])
    return status, header_blob.decode("latin-1"), data.decode("utf-8")


async def drive_some_traffic(harness, count=3):
    for index in range(count):
        status, __h, body = await http(
            harness.port,
            "POST",
            "/queries",
            {"query": "Q1", "tenant": "acme" if index % 2 else "globex", "seed": 7},
        )
        assert status == 202
        terminal = await poll_until_terminal(harness.port, body["request_id"])
        assert terminal["state"] == "done"


def test_metrics_endpoint_serves_parseable_exposition(small_lslod_lake):
    config = ServiceConfig(port=0, workers=1)

    async def scenario():
        async with ServiceHarness(
            small_lslod_lake, config, run_query=fake_run_query()
        ) as harness:
            await drive_some_traffic(harness)
            return await http_raw(harness.port, "GET", "/metrics")

    status, headers, text = run(scenario())
    assert status == 200
    assert "text/plain; version=0.0.4" in headers
    assert validate_exposition(text) > 10
    families = parse_exposition(text)
    submitted = families["repro_requests_submitted_total"]
    by_tenant = {
        labels["tenant"]: value for __, labels, value in submitted["samples"]
    }
    assert by_tenant == {"acme": 1, "globex": 2}
    assert "repro_stats_version" in families
    assert families["repro_stats_version"]["samples"][0][2] == STATS_VERSION


def test_metrics_rejects_post(small_lslod_lake):
    config = ServiceConfig(port=0, workers=1)

    async def scenario():
        async with ServiceHarness(
            small_lslod_lake, config, run_query=fake_run_query()
        ) as harness:
            status, __h, body = await http(harness.port, "POST", "/metrics", {})
            assert status == 405
            assert body["error"] == "method-not-allowed"

    run(scenario())


def test_stats_is_versioned_and_carries_slo(small_lslod_lake):
    config = ServiceConfig(port=0, workers=1)

    async def scenario():
        async with ServiceHarness(
            small_lslod_lake, config, run_query=fake_run_query()
        ) as harness:
            await drive_some_traffic(harness, count=2)
            __s, __h, stats = await http(harness.port, "GET", "/stats")
            return stats

    stats = run(scenario())
    assert stats["stats_version"] == STATS_VERSION
    assert "evictions" in stats["result_cache"]
    slo = stats["slo"]
    assert slo["slo_version"] == SLO_VERSION
    assert slo["global"]["submitted"] == 2
    assert slo["global"]["completed"] == 2
    assert set(slo["tenants"]) == {"acme", "globex"}
    # The SLO's cache section mirrors the service's cache counters.
    assert slo["cache"]["result"]["evictions"] == stats["result_cache"]["evictions"]


def test_journal_path_streams_canonical_jsonl(small_lslod_lake, tmp_path):
    path = tmp_path / "service.jsonl"
    config = ServiceConfig(port=0, workers=1, journal_path=str(path))

    async def scenario():
        async with ServiceHarness(
            small_lslod_lake, config, run_query=fake_run_query()
        ) as harness:
            await drive_some_traffic(harness, count=2)

    run(scenario())
    # close() flushed the sink; the file is a loadable canonical journal.
    loaded = EventJournal.read_jsonl(str(path))
    counts = loaded.counts_by_kind()
    assert counts["submit"] == 2
    assert counts["done"] == 2
    for line in path.read_text().splitlines():
        event = json.loads(line)
        assert event["v"] == 1
        assert "kind" in event and "ts" in event
    # Replaying the streamed journal reproduces the tenants seen live.
    accountant, __ = accountant_from_journal(loaded.events)
    assert set(accountant.snapshot()["tenants"]) == {"acme", "globex"}


# -- the CLI report over a journal file ---------------------------------------


def write_sample_journal(path):
    journal = EventJournal()
    journal.append("submit", 0.0, request_id="r-1", tenant="acme", deadline=30.0)
    journal.append("start", 0.1, request_id="r-1", tenant="acme", queue_wait=0.1)
    journal.append(
        "done", 1.1, request_id="r-1", tenant="acme", execution=1.0, end_to_end=1.1
    )
    journal.append("submit", 0.2, request_id="r-2", tenant="bee")
    journal.append("shed", 0.2, request_id="r-2", tenant="bee", reason="queue-full")
    journal.append(
        "cache-snapshot", 2.0, caches={"plans": {"hits": 3, "misses": 1}}
    )
    journal.write_jsonl(str(path))
    return journal


def test_slo_report_text_over_journal(tmp_path, capsys):
    path = tmp_path / "journal.jsonl"
    journal = write_sample_journal(path)
    exit_code = cli_main(["slo", "report", "--journal", str(path)])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert journal.fingerprint() in out
    assert "acme" in out and "bee" in out and "GLOBAL" in out
    assert "cache plans" in out


def test_slo_report_json_over_journal(tmp_path, capsys):
    path = tmp_path / "journal.jsonl"
    journal = write_sample_journal(path)
    exit_code = cli_main(
        ["slo", "report", "--journal", str(path), "--format", "json"]
    )
    assert exit_code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["source"]["journal_fingerprint"] == journal.fingerprint()
    assert document["source"]["events"] == len(journal)
    slo = document["slo"]
    assert slo["tenants"]["acme"]["completed"] == 1
    assert slo["tenants"]["bee"]["shed"] == 1
    assert slo["cache"]["plans"]["hit_rate"] == 0.75


def test_slo_report_requires_exactly_one_source(tmp_path, capsys):
    assert cli_main(["slo", "report"]) == 2
    assert (
        cli_main(
            ["slo", "report", "--journal", "x.jsonl", "--url", "http://localhost:1"]
        )
        == 2
    )
    capsys.readouterr()


def test_slo_report_rejects_unreadable_journal(tmp_path, capsys):
    missing = tmp_path / "nope.jsonl"
    assert cli_main(["slo", "report", "--journal", str(missing)]) == 2
    err = capsys.readouterr().err
    assert "cannot read journal" in err
