"""Engine pool + shared-cache concurrency regression tests.

The PR-1 caches were engine-local and only ever touched from one engine's
runtimes; pooling N engines over one registry exposed the classic lost
update on ``hits += 1``/``misses += 1``.  The LRU is internally locked
now, and these tests hammer a shared registry from many threads — row and
batch data planes — asserting *exact* answers and *exact* counter totals
(with lost updates, ``hits + misses`` undercounts the lookups).
"""

import threading

import pytest

from repro.benchmark.baseline import NETWORK_CHOICES, POLICY_CHOICES
from repro.cache import CacheRegistry
from repro.core.engine import FederatedEngine
from repro.datasets import BENCHMARK_QUERIES
from repro.service import EnginePool
from repro.service.server import serialize_answers

RUN_SEED = 7


def make_pool(lake, size=4, exec="batch"):
    return EnginePool(
        lake,
        size=size,
        policy=POLICY_CHOICES["aware"](),
        network=NETWORK_CHOICES["nodelay"](),
        exec=exec,
    )


# -- pool basics --------------------------------------------------------------


def test_pool_size_validation(small_lslod_lake):
    with pytest.raises(ValueError, match="pool size must be a positive integer"):
        make_pool(small_lslod_lake, size=0)


def test_round_robin_and_checkout(small_lslod_lake):
    pool = make_pool(small_lslod_lake, size=3)
    assert len(pool) == 3
    assert pool.engine_for(0) is pool.engine_for(3)
    assert pool.engine_for(1) is not pool.engine_for(2)
    borrowed = [pool.checkout() for __ in range(3)]
    assert len(set(map(id, borrowed))) == 3
    for engine in borrowed:
        pool.checkin(engine)


def test_engines_share_one_registry(small_lslod_lake):
    pool = make_pool(small_lslod_lake, size=3)
    registries = {id(engine.caches) for engine in pool.engines}
    assert registries == {id(pool.caches)}


def test_shared_registry_opt_in_only(small_lslod_lake):
    # Engines built without `caches=` keep private registries (the PR-1
    # default), so pooling is strictly opt-in.
    one = FederatedEngine(small_lslod_lake)
    other = FederatedEngine(small_lslod_lake)
    assert one.caches is not other.caches
    shared = CacheRegistry()
    assert FederatedEngine(small_lslod_lake, caches=shared).caches is shared


def test_plan_warmed_by_one_engine_hits_on_another(small_lslod_lake):
    pool = make_pool(small_lslod_lake, size=2)
    text = BENCHMARK_QUERIES["Q1"].text
    cold, cold_stats = pool.engine_for(0).run(text, seed=RUN_SEED)
    warm, warm_stats = pool.engine_for(1).run(text, seed=RUN_SEED)
    assert serialize_answers(cold) == serialize_answers(warm)
    assert not cold_stats.plan_cache_hit
    assert warm_stats.plan_cache_hit  # engine 1 never planned this query
    # Virtual time is cache-neutral: the warm run re-charges the same delays.
    assert warm_stats.execution_time == cold_stats.execution_time


# -- the concurrency hammer ---------------------------------------------------


def lookup_totals(lake, query_names, exec):
    """Per-run plan/sub-result lookup counts (deterministic per query)."""
    totals = {}
    for name in query_names:
        pool = make_pool(lake, size=1, exec=exec)
        pool.engine_for(0).run(BENCHMARK_QUERIES[name].text, seed=RUN_SEED)
        stats = pool.cache_stats()
        totals[name] = {
            kind: stats[kind].hits + stats[kind].misses
            for kind in ("plans", "subresults")
        }
    return totals


@pytest.mark.parametrize("exec", ["row", "batch"])
def test_hammer_shared_caches_exact_answers_and_counters(small_lslod_lake, exec):
    queries = ["Q1", "Q2", "Q3"]
    expected = {
        name: serialize_answers(
            FederatedEngine(
                small_lslod_lake,
                policy=POLICY_CHOICES["aware"](),
                network=NETWORK_CHOICES["nodelay"](),
                exec=exec,
            ).run(BENCHMARK_QUERIES[name].text, seed=RUN_SEED)[0]
        )
        for name in queries
    }
    per_run = lookup_totals(small_lslod_lake, queries, exec)

    pool = make_pool(small_lslod_lake, size=4, exec=exec)
    threads = 8
    rounds = 4
    barrier = threading.Barrier(threads)
    failures: list[str] = []

    def worker(worker_id: int) -> None:
        barrier.wait()  # maximize cache contention at the start
        for round_index in range(rounds):
            name = queries[(worker_id + round_index) % len(queries)]
            engine = pool.checkout()
            try:
                answers, __ = engine.run(BENCHMARK_QUERIES[name].text, seed=RUN_SEED)
            finally:
                pool.checkin(engine)
            if serialize_answers(answers) != expected[name]:
                failures.append(f"worker {worker_id} round {round_index}: {name}")

    pool_threads = [
        threading.Thread(target=worker, args=(index,)) for index in range(threads)
    ]
    for thread in pool_threads:
        thread.start()
    for thread in pool_threads:
        thread.join()

    assert failures == []

    # Exact totals: every run performs a fixed, cache-state-independent
    # number of lookups, so hits + misses must equal the sum over all runs.
    # A lost counter update (the pre-fix race) breaks this equality.
    runs_per_query = {name: 0 for name in queries}
    for worker_id in range(threads):
        for round_index in range(rounds):
            runs_per_query[queries[(worker_id + round_index) % len(queries)]] += 1
    stats = pool.cache_stats()
    for kind in ("plans", "subresults"):
        expected_lookups = sum(
            per_run[name][kind] * count for name, count in runs_per_query.items()
        )
        observed = stats[kind].hits + stats[kind].misses
        assert observed == expected_lookups, (
            f"{kind}: {observed} recorded lookups != {expected_lookups} performed "
            f"(lost counter updates)"
        )
    # Every plan key was computed at least once and no key was evicted, so
    # the plan cache holds exactly the distinct queries.
    assert stats["plans"].size == len(queries)
    assert stats["plans"].misses >= len(queries)


def test_hammer_single_lru_counters_exact():
    """The raw LRU under contention: no lost hit/miss/eviction updates."""
    from repro.cache import LRUCache

    cache = LRUCache(capacity=64)
    for key in range(64):
        cache.put(key, key)
    threads = 8
    lookups = 2048  # a multiple of the 128-key period: exactly half hit
    barrier = threading.Barrier(threads)

    def worker(worker_id: int) -> None:
        barrier.wait()
        for index in range(lookups):
            cache.get((worker_id + index) % 128)  # half hit, half miss

    pool_threads = [
        threading.Thread(target=worker, args=(index,)) for index in range(threads)
    ]
    for thread in pool_threads:
        thread.start()
    for thread in pool_threads:
        thread.join()
    stats = cache.stats()
    assert stats.hits + stats.misses == threads * lookups
    assert stats.hits == threads * lookups // 2


def test_clear_caches_resets_entries_not_counters(small_lslod_lake):
    pool = make_pool(small_lslod_lake, size=2)
    pool.engine_for(0).run(BENCHMARK_QUERIES["Q1"].text, seed=RUN_SEED)
    before = pool.cache_stats()["plans"]
    assert before.size == 1
    pool.clear_caches()
    after = pool.cache_stats()["plans"]
    assert after.size == 0
    assert after.misses == before.misses  # counters survive a clear
