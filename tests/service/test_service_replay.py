"""Replay the oracle regression corpus through the service path.

Every committed :class:`FuzzCase` is submitted over real HTTP
(submit -> poll -> fetch) and the returned answers must be bit-identical
to a direct :class:`FederatedEngine` run — under all three runtimes, via
the service's per-request runtime override.  This pins the service stack
(admission, pooling, shared caches, executor threads, JSON transport) as
answer-preserving on exactly the corpus that once found engine bugs.
"""

import asyncio
from pathlib import Path

import pytest

from repro.benchmark.baseline import NETWORK_CHOICES, POLICY_CHOICES
from repro.core.engine import FederatedEngine
from repro.oracle import FuzzCase, build_lake
from repro.runtime import RUNTIMES
from repro.service import QueryService, ServiceConfig, ServiceServer
from repro.service.server import serialize_answers

from .test_server import http, poll_until_terminal

REGRESSIONS_DIR = Path(__file__).parent.parent / "oracle" / "regressions"
REGRESSION_FILES = sorted(REGRESSIONS_DIR.glob("*.json"))

RUN_SEED = 7


@pytest.mark.parametrize("path", REGRESSION_FILES, ids=lambda path: path.stem)
def test_service_path_is_answer_preserving(path):
    case = FuzzCase.from_json(path.read_text())
    lake = build_lake(case.layout)
    sparql = case.sparql()
    engine = FederatedEngine(
        lake,
        policy=POLICY_CHOICES["aware"](),
        network=NETWORK_CHOICES["nodelay"](),
    )
    expected = {
        runtime: serialize_answers(
            engine.run(sparql, seed=RUN_SEED, runtime=runtime)[0]
        )
        for runtime in RUNTIMES
    }
    config = ServiceConfig(port=0, workers=2, global_concurrency=2)

    async def scenario():
        service = QueryService(lake, config)
        server = ServiceServer(service)
        await server.start()
        try:
            collected = {}
            for runtime in RUNTIMES:
                status, __h, body = await http(
                    server.port,
                    "POST",
                    "/queries",
                    {"query": sparql, "seed": RUN_SEED, "runtime": runtime},
                )
                assert status == 202, body
                terminal = await poll_until_terminal(server.port, body["request_id"])
                assert terminal["state"] == "done", terminal
                __s, __h, result = await http(
                    server.port, "GET", f"/queries/{body['request_id']}/result"
                )
                collected[runtime] = result["answers"]
            return collected
        finally:
            await server.close()

    observed = asyncio.run(scenario())
    for runtime in RUNTIMES:
        assert observed[runtime] == expected[runtime], (
            f"{path.stem}: service answers diverge from the direct engine "
            f"under runtime {runtime!r}"
        )


def test_corpus_is_present():
    assert len(REGRESSION_FILES) >= 10
