"""The load driver's determinism contract and workload semantics.

The headline guarantee: two runs with the same seed produce bit-identical
request outcomes (per-request states, virtual timestamps, answer counts)
and identical shared-cache counter totals.  Wall-clock quantities are
measured but deliberately excluded from the fingerprint.
"""

import dataclasses

import pytest

from repro.obs import validate_chrome_trace
from repro.service import (
    DriverReport,
    ServiceConfig,
    TenantConfig,
    WorkloadSpec,
    run_load,
)
from repro.service.driver import _percentile

SMALL_SPEC = WorkloadSpec(
    clients=40,
    requests_per_client=2,
    tenants=3,
    cold_variants=4,
    mean_interarrival=0.2,
    mean_think=1.0,
)

CONFIG = ServiceConfig(workers=2, global_concurrency=4, timeout=20.0)

# A deliberately overloaded deployment: tiny limits, aggressive arrivals,
# tight deadlines — sheds and both timeout kinds must show up.
TIGHT_CONFIG = ServiceConfig(
    workers=1,
    global_concurrency=1,
    timeout=0.004,
    default_tenant=TenantConfig(name="default", max_concurrency=1, queue_depth=2),
)
TIGHT_SPEC = WorkloadSpec(
    clients=60,
    requests_per_client=2,
    tenants=2,
    cold_variants=2,
    mean_interarrival=0.001,
    mean_think=0.002,
)


def fingerprint_fields(report: DriverReport):
    return [result.key() for result in report.results]


def test_same_seed_same_everything(small_lslod_lake):
    first = run_load(small_lslod_lake, CONFIG, SMALL_SPEC, seed=11)
    second = run_load(small_lslod_lake, CONFIG, SMALL_SPEC, seed=11)
    assert first.fingerprint() == second.fingerprint()
    assert fingerprint_fields(first) == fingerprint_fields(second)
    assert first.cache_stats == second.cache_stats
    assert first.executions == second.executions
    # Every per-request field, not just the hashed projection.
    for left, right in zip(first.results, second.results):
        assert dataclasses.asdict(left) == dataclasses.asdict(right)


def test_different_seed_different_schedule(small_lslod_lake):
    first = run_load(small_lslod_lake, CONFIG, SMALL_SPEC, seed=11)
    second = run_load(small_lslod_lake, CONFIG, SMALL_SPEC, seed=12)
    assert first.fingerprint() != second.fingerprint()


def test_clean_run_completes_everything(small_lslod_lake):
    report = run_load(small_lslod_lake, CONFIG, SMALL_SPEC, seed=11)
    summary = report.summary()
    assert summary["requests"] == SMALL_SPEC.clients * SMALL_SPEC.requests_per_client
    assert summary["completed"] == summary["requests"]
    assert summary["shed"] == summary["timed_out"] == 0
    assert summary["answer_mismatches"] == 0
    assert summary["audit_violations"] == 0
    assert summary["latency_p50"] > 0
    assert summary["latency_p50"] <= summary["latency_p95"] <= summary["latency_p99"]
    assert summary["throughput_per_virtual_s"] > 0
    # The hot/cold mix exercised the shared caches.
    assert summary["cache"]["plans"]["hits"] > 0
    assert summary["cache"]["subresults"]["hits"] > 0
    # Completed requests all carry answers; nothing else does.
    for result in report.results:
        assert (result.answers is not None) == (result.outcome == "done")


def test_overload_sheds_and_times_out_deterministically(small_lslod_lake):
    report = run_load(small_lslod_lake, TIGHT_CONFIG, TIGHT_SPEC, seed=3)
    summary = report.summary()
    outcomes = report.outcomes()
    assert outcomes["shed"] > 0
    assert outcomes["timeout"] > 0
    assert summary["shed_rate"] > 0
    # Overload never corrupts the schedule: the auditor stays clean.
    assert report.audit_violations == []
    assert report.mismatches == []
    reasons = {result.reason for result in report.results if result.reason}
    assert "tenant-queue-full" in reasons
    assert reasons & {"queued-timeout", "running-timeout"}
    # And the chaos is reproducible bit for bit.
    again = run_load(small_lslod_lake, TIGHT_CONFIG, TIGHT_SPEC, seed=3)
    assert again.fingerprint() == report.fingerprint()


def test_tenant_skew_is_applied(small_lslod_lake):
    spec = dataclasses.replace(SMALL_SPEC, clients=80, tenant_skew=2.0)
    report = run_load(
        small_lslod_lake, CONFIG, spec, seed=5, verify_answers=False
    )
    per_tenant = report.summary()["per_tenant"]
    head = sum(per_tenant.get("t0", {}).values())
    tail = sum(per_tenant.get("t2", {}).values())
    assert head > tail  # Zipf head tenant dominates


def test_report_document_shape(small_lslod_lake):
    report = run_load(small_lslod_lake, CONFIG, SMALL_SPEC, seed=11)
    document = report.to_dict()
    assert set(document) >= {"seed", "spec", "summary", "admission", "fingerprint"}
    assert "requests" not in document
    embedded = report.to_dict(include_requests=True)
    assert len(embedded["requests"]) == len(report.results)
    admission = document["admission"]["metrics"]
    assert admission["submitted"] == len(report.results)


def test_chrome_trace_export_validates(small_lslod_lake):
    report = run_load(small_lslod_lake, CONFIG, SMALL_SPEC, seed=11)
    trace = report.to_chrome_trace()
    assert validate_chrome_trace(trace) == []
    assert len(trace["traceEvents"]) > len(report.results)  # >=2 spans per run


def test_unknown_query_name_rejected(small_lslod_lake):
    spec = dataclasses.replace(SMALL_SPEC, hot_queries=("Q99",))
    with pytest.raises(ValueError, match=r"unknown benchmark queries .*Q99"):
        run_load(small_lslod_lake, CONFIG, spec, seed=1)


@pytest.mark.parametrize(
    "overrides, message",
    [
        (dict(clients=0), "clients must be positive"),
        (dict(requests_per_client=0), "requests_per_client must be positive"),
        (dict(tenants=0), "tenants must be positive"),
        (dict(hot_fraction=1.5), r"hot_fraction must be in \[0, 1\]"),
        (dict(hot_queries=(), cold_queries=()), "at least one of hot/cold"),
    ],
)
def test_spec_validation(overrides, message):
    with pytest.raises(ValueError, match=message):
        dataclasses.replace(WorkloadSpec(), **overrides).validate()


def test_percentiles_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
    assert _percentile(values, 0.50) == 5.0
    assert _percentile(values, 0.95) == 10.0
    assert _percentile(values, 0.99) == 10.0
    assert _percentile([], 0.5) == 0.0
    assert _percentile([7.0], 0.99) == 7.0
