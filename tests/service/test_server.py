"""HTTP service tests over real sockets (submit -> poll -> fetch).

Each test spins up the asyncio server on an ephemeral localhost port and
talks stdlib HTTP/1.1 to it.  Slow/queued/timeout behaviour is made
deterministic by swapping the service's ``_run_query`` for a controlled
stand-in — admission control itself is exercised unmodified.
"""

import asyncio
import json
import time

import pytest

from repro.benchmark.baseline import NETWORK_CHOICES, POLICY_CHOICES
from repro.core.engine import FederatedEngine
from repro.datasets import BENCHMARK_QUERIES
from repro.obs import validate_chrome_trace
from repro.service import QueryService, ServiceConfig, ServiceServer, TenantConfig
from repro.service.server import serialize_answers

RUN_SEED = 7


async def http(port, method, path, body=None):
    """One HTTP/1.1 exchange; returns (status, headers-bytes, json-body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: localhost\r\n"
        f"Content-Length: {len(payload)}\r\nContent-Type: application/json\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except ConnectionError:
        pass
    header_blob, __, data = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split(b" ")[1])
    return status, header_blob, json.loads(data) if data else None


async def poll_until_terminal(port, request_id, attempts=400):
    for __ in range(attempts):
        status, __h, body = await http(port, "GET", f"/queries/{request_id}")
        assert status == 200
        if body["state"] in ("done", "timeout", "shed", "error"):
            return body
        await asyncio.sleep(0.02)
    raise AssertionError(f"request {request_id} never reached a terminal state")


class ServiceHarness:
    """Async context manager: a running service on an ephemeral port."""

    def __init__(self, lake, config, run_query=None):
        self.lake = lake
        self.config = config
        self.run_query = run_query
        self.server = None

    async def __aenter__(self):
        service = QueryService(self.lake, self.config)
        if self.run_query is not None:
            service._run_query = self.run_query
        self.server = ServiceServer(service)
        await self.server.start()
        return self

    async def __aexit__(self, *exc_info):
        await self.server.close()

    @property
    def port(self):
        return self.server.port


def run(coroutine):
    return asyncio.run(coroutine)


def fake_run_query(duration=0.0, answers=()):
    """A `_run_query` stand-in with a controlled wall-clock duration."""

    def _run(record):
        if duration:
            time.sleep(duration)
        return list(answers), {"answers": len(answers)}, None

    return _run


# -- happy path ---------------------------------------------------------------


def test_submit_poll_fetch_matches_direct_engine(small_lslod_lake):
    config = ServiceConfig(port=0, workers=2, global_concurrency=2, exec="batch")
    direct, __ = FederatedEngine(
        small_lslod_lake,
        policy=POLICY_CHOICES["aware"](),
        network=NETWORK_CHOICES["nodelay"](),
        exec="batch",
    ).run(BENCHMARK_QUERIES["Q1"].text, seed=RUN_SEED)

    async def scenario():
        async with ServiceHarness(small_lslod_lake, config) as harness:
            status, __h, body = await http(
                harness.port,
                "POST",
                "/queries",
                {"query": "Q1", "tenant": "acme", "seed": RUN_SEED},
            )
            assert status == 202
            assert body["request_id"] == "r-000001"
            assert body["status_url"] == "/queries/r-000001"
            terminal = await poll_until_terminal(harness.port, body["request_id"])
            assert terminal["state"] == "done"
            assert terminal["answers"] == len(direct)
            status, __h, result = await http(
                harness.port, "GET", f"/queries/{body['request_id']}/result"
            )
            assert status == 200
            return result

    result = run(scenario())
    assert result["answers"] == serialize_answers(direct)
    assert result["stats"]["answers"] == len(direct)
    assert result["stats"]["execution_time"] > 0


def test_healthz_and_stats(small_lslod_lake):
    config = ServiceConfig(port=0, workers=2)

    async def scenario():
        async with ServiceHarness(small_lslod_lake, config) as harness:
            status, __h, health = await http(harness.port, "GET", "/healthz")
            assert (status, health) == (200, {"status": "ok", "engines": 2})
            status, __h, stats = await http(harness.port, "GET", "/stats")
            assert status == 200
            assert stats["pool"] == {"engines": 2}
            assert set(stats["caches"]) == {"plans", "subresults"}
            assert stats["admission"]["global_concurrency"] == 8

    run(scenario())


def test_trace_endpoint_carries_request_id(small_lslod_lake):
    config = ServiceConfig(port=0, workers=1, observe=True)

    async def scenario():
        async with ServiceHarness(small_lslod_lake, config) as harness:
            __s, __h, body = await http(
                harness.port,
                "POST",
                "/queries",
                {"query": "Q1", "seed": RUN_SEED},
            )
            request_id = body["request_id"]
            await poll_until_terminal(harness.port, request_id)
            status, __h, trace = await http(
                harness.port, "GET", f"/queries/{request_id}/trace"
            )
            assert status == 200
            return request_id, trace

    request_id, trace = run(scenario())
    assert validate_chrome_trace(trace) == []
    names = [
        event["args"].get("name", "")
        for event in trace["traceEvents"]
        if event.get("name") == "process_name"
    ]
    assert any(request_id in name for name in names)


def test_trace_404_when_not_observed(small_lslod_lake):
    config = ServiceConfig(port=0, workers=1)  # observe off

    async def scenario():
        async with ServiceHarness(small_lslod_lake, config) as harness:
            __s, __h, body = await http(
                harness.port, "POST", "/queries", {"query": "Q1"}
            )
            await poll_until_terminal(harness.port, body["request_id"])
            status, __h, trace = await http(
                harness.port, "GET", f"/queries/{body['request_id']}/trace"
            )
            assert status == 404
            assert trace["error"] == "no-trace"

    run(scenario())


# -- request validation -------------------------------------------------------


@pytest.mark.parametrize(
    "payload, detail",
    [
        (None, "body must be a JSON object"),
        ({}, "field 'query' must be a non-empty string"),
        ({"query": "  "}, "field 'query' must be a non-empty string"),
        ({"query": "Q1", "tenant": 7}, "field 'tenant' must be a non-empty string"),
        ({"query": "Q1", "seed": "seven"}, "field 'seed' must be an integer"),
        ({"query": "Q1", "runtime": "bogus"}, "unknown runtime 'bogus'"),
        ({"query": "Q1", "exec": "columnar"}, "unknown exec mode 'columnar'"),
    ],
)
def test_submit_validation(small_lslod_lake, payload, detail):
    config = ServiceConfig(port=0, workers=1)

    async def scenario():
        async with ServiceHarness(small_lslod_lake, config) as harness:
            status, __h, body = await http(harness.port, "POST", "/queries", payload)
            assert status == 400
            assert body["error"] == "bad-request"
            assert detail in body["detail"]

    run(scenario())


def test_invalid_sparql_reports_execution_error(small_lslod_lake):
    config = ServiceConfig(port=0, workers=1)

    async def scenario():
        async with ServiceHarness(small_lslod_lake, config) as harness:
            __s, __h, body = await http(
                harness.port, "POST", "/queries", {"query": "SELECT nonsense"}
            )
            terminal = await poll_until_terminal(harness.port, body["request_id"])
            assert terminal["state"] == "error"
            status, __h, result = await http(
                harness.port, "GET", f"/queries/{body['request_id']}/result"
            )
            assert status == 500
            assert result["error"] == "execution-failed"

    run(scenario())


def test_routing_errors(small_lslod_lake):
    config = ServiceConfig(port=0, workers=1)

    async def scenario():
        async with ServiceHarness(small_lslod_lake, config) as harness:
            status, __h, body = await http(harness.port, "GET", "/nope")
            assert (status, body["error"]) == (404, "not-found")
            status, __h, body = await http(harness.port, "GET", "/queries/r-999999")
            assert (status, body["error"]) == (404, "not-found")
            status, __h, body = await http(harness.port, "DELETE", "/queries")
            assert (status, body["error"]) == (405, "method-not-allowed")
            status, __h, body = await http(harness.port, "POST", "/healthz")
            assert (status, body["error"]) == (405, "method-not-allowed")

    run(scenario())


# -- admission behaviour over HTTP -------------------------------------------


def test_shed_returns_429_with_retry_after(small_lslod_lake):
    config = ServiceConfig(
        port=0,
        workers=1,
        global_concurrency=1,
        default_tenant=TenantConfig(name="default", max_concurrency=1, queue_depth=1),
    )

    async def scenario():
        harness = ServiceHarness(
            small_lslod_lake, config, run_query=fake_run_query(duration=0.5)
        )
        async with harness:
            first = await http(harness.port, "POST", "/queries", {"query": "Q1"})
            second = await http(harness.port, "POST", "/queries", {"query": "Q1"})
            third = await http(harness.port, "POST", "/queries", {"query": "Q1"})
            assert first[0] == 202 and second[0] == 202
            status, headers, body = third
            assert status == 429
            assert b"Retry-After: 1" in headers
            assert body["error"] == "shed"
            assert body["reason"] == "tenant-queue-full"
            # The shed request stays queryable, as a terminal refusal.
            status, __h, result = await http(
                harness.port, "GET", f"/queries/{body['request_id']}/result"
            )
            assert status == 429
            assert result["reason"] == "tenant-queue-full"

    run(scenario())


def test_strict_tenant_shed(small_lslod_lake):
    config = ServiceConfig(
        port=0,
        workers=1,
        strict_tenants=True,
        tenants={"acme": TenantConfig(name="acme")},
    )

    async def scenario():
        async with ServiceHarness(small_lslod_lake, config) as harness:
            status, __h, body = await http(
                harness.port, "POST", "/queries", {"query": "Q1", "tenant": "evil"}
            )
            assert status == 429
            assert body["reason"] == "unknown-tenant"

    run(scenario())


def test_running_timeout_maps_to_504(small_lslod_lake):
    config = ServiceConfig(port=0, workers=1, timeout=0.1)

    async def scenario():
        harness = ServiceHarness(
            small_lslod_lake, config, run_query=fake_run_query(duration=0.4)
        )
        async with harness:
            __s, __h, body = await http(harness.port, "POST", "/queries", {"query": "Q1"})
            terminal = await poll_until_terminal(harness.port, body["request_id"])
            assert terminal["state"] == "timeout"
            assert terminal["reason"] == "running-timeout"
            status, __h, result = await http(
                harness.port, "GET", f"/queries/{body['request_id']}/result"
            )
            assert status == 504
            assert result["error"] == "timeout"

    run(scenario())


def test_queued_timeout_when_no_slot_frees(small_lslod_lake):
    config = ServiceConfig(port=0, workers=1, global_concurrency=1, timeout=0.15)

    async def scenario():
        harness = ServiceHarness(
            small_lslod_lake, config, run_query=fake_run_query(duration=0.5)
        )
        async with harness:
            first = await http(harness.port, "POST", "/queries", {"query": "Q1"})
            second = await http(harness.port, "POST", "/queries", {"query": "Q1"})
            assert first[0] == 202 and second[0] == 202
            terminal = await poll_until_terminal(harness.port, second[2]["request_id"])
            assert terminal["state"] == "timeout"
            assert terminal["reason"] == "queued-timeout"
            # The queued request never consumed a concurrency slot.
            assert terminal["started_at"] is None

    run(scenario())


def test_not_ready_result_is_409(small_lslod_lake):
    config = ServiceConfig(port=0, workers=1)

    async def scenario():
        harness = ServiceHarness(
            small_lslod_lake, config, run_query=fake_run_query(duration=0.3)
        )
        async with harness:
            __s, __h, body = await http(harness.port, "POST", "/queries", {"query": "Q1"})
            status, __h, result = await http(
                harness.port, "GET", f"/queries/{body['request_id']}/result"
            )
            assert status == 409
            assert result["error"] == "not-ready"
            await poll_until_terminal(harness.port, body["request_id"])

    run(scenario())


def test_concurrent_http_submissions_all_answered(small_lslod_lake):
    """A burst of real queries through the full stack, all bit-checked."""
    config = ServiceConfig(port=0, workers=3, global_concurrency=3, exec="batch")
    expected = {
        name: serialize_answers(
            FederatedEngine(
                small_lslod_lake,
                policy=POLICY_CHOICES["aware"](),
                network=NETWORK_CHOICES["nodelay"](),
                exec="batch",
            ).run(BENCHMARK_QUERIES[name].text, seed=RUN_SEED)[0]
        )
        for name in ("Q1", "Q2", "Q3")
    }

    async def scenario():
        async with ServiceHarness(small_lslod_lake, config) as harness:
            names = [("Q1", "acme"), ("Q2", "globex"), ("Q3", "acme")] * 3
            submissions = await asyncio.gather(
                *(
                    http(
                        harness.port,
                        "POST",
                        "/queries",
                        {"query": name, "tenant": tenant, "seed": RUN_SEED},
                    )
                    for name, tenant in names
                )
            )
            outcomes = []
            for (name, __t), (status, __h, body) in zip(names, submissions):
                assert status == 202, body
                terminal = await poll_until_terminal(harness.port, body["request_id"])
                assert terminal["state"] == "done"
                __s, __h, result = await http(
                    harness.port, "GET", f"/queries/{body['request_id']}/result"
                )
                outcomes.append((name, result["answers"]))
            return outcomes

    for name, answers in run(scenario()):
        assert answers == expected[name], name


# -- cross-request result cache -----------------------------------------------


async def submit_and_fetch(port, payload):
    status, __h, body = await http(port, "POST", "/queries", payload)
    assert status == 202
    await poll_until_terminal(port, body["request_id"])
    status, __h, result = await http(
        port, "GET", f"/queries/{body['request_id']}/result"
    )
    assert status == 200
    return result


def test_result_cache_hit_serves_identical_answers(small_lslod_lake):
    config = ServiceConfig(port=0, workers=2, global_concurrency=2)

    async def scenario():
        async with ServiceHarness(small_lslod_lake, config) as harness:
            payload = {"query": "Q1", "tenant": "acme", "seed": RUN_SEED}
            first = await submit_and_fetch(harness.port, payload)
            second = await submit_and_fetch(harness.port, payload)
            __s, __h, stats = await http(harness.port, "GET", "/stats")
            return first, second, stats

    first, second, stats = run(scenario())
    assert first["stats"]["result_cache"] == "miss"
    assert second["stats"]["result_cache"] == "hit"
    assert second["answers"] == first["answers"]
    # The hit's stats are the measured execution's numbers, replayed.
    assert second["stats"]["execution_time"] == first["stats"]["execution_time"]
    assert stats["result_cache"]["hits"] == 1
    assert stats["result_cache"]["misses"] == 1
    assert stats["result_cache"]["entries"] == 1
    assert stats["result_cache"]["capacity"] == config.result_cache_size


def test_result_cache_keys_on_seed_and_canonical_text(small_lslod_lake):
    config = ServiceConfig(port=0, workers=2, global_concurrency=2)
    spaced = "  " + "\n".join(BENCHMARK_QUERIES["Q1"].text.split()) + "  "

    async def scenario():
        async with ServiceHarness(small_lslod_lake, config) as harness:
            await submit_and_fetch(
                harness.port, {"query": "Q1", "tenant": "acme", "seed": RUN_SEED}
            )
            # Same query modulo whitespace: a hit.
            reformatted = await submit_and_fetch(
                harness.port, {"query": spaced, "tenant": "acme", "seed": RUN_SEED}
            )
            # Different seed: its own entry.
            reseeded = await submit_and_fetch(
                harness.port, {"query": "Q1", "tenant": "acme", "seed": RUN_SEED + 1}
            )
            return reformatted, reseeded

    reformatted, reseeded = run(scenario())
    assert reformatted["stats"]["result_cache"] == "hit"
    assert reseeded["stats"]["result_cache"] == "miss"


def test_result_cache_disabled_by_size_zero_and_observe(small_lslod_lake):
    async def scenario(config):
        async with ServiceHarness(small_lslod_lake, config) as harness:
            payload = {"query": "Q1", "tenant": "acme", "seed": RUN_SEED}
            await submit_and_fetch(harness.port, payload)
            second = await submit_and_fetch(harness.port, payload)
            __s, __h, stats = await http(harness.port, "GET", "/stats")
            return second, stats

    second, stats = run(scenario(ServiceConfig(port=0, result_cache_size=0)))
    assert "result_cache" not in second["stats"]
    assert stats["result_cache"] == {
        "capacity": 0, "entries": 0, "hits": 0, "misses": 0, "evictions": 0,
    }
    # Observed runs always execute for real — every request needs a trace.
    second, stats = run(scenario(ServiceConfig(port=0, observe=True)))
    assert "result_cache" not in second["stats"]
    assert stats["result_cache"]["hits"] == 0
