"""Critical-path attribution on the live service: ``/status`` embeds,
exec-profile journal events, blame histograms in ``/stats`` and the
tenant-filtered ``repro slo report``."""

import math

from repro.cli import main as cli_main
from repro.obs import EventJournal, accountant_from_journal, render_slo_report
from repro.obs.slo import SLO_BLAME_CLASSES, SLO_REPORT_COLUMNS
from repro.service import ServiceConfig
from tests.service.test_server import (
    ServiceHarness,
    http,
    poll_until_terminal,
    run,
)

RUN_SEED = 7


async def submit_and_finish(harness, query="Q1", tenant=None):
    body = {"query": query, "seed": RUN_SEED}
    if tenant is not None:
        body["tenant"] = tenant
    __s, __h, posted = await http(harness.port, "POST", "/queries", body)
    return await poll_until_terminal(harness.port, posted["request_id"])


class TestStatusCriticalPath:
    def test_observed_requests_embed_exact_attribution(self, small_lslod_lake):
        config = ServiceConfig(port=0, workers=1, observe=True)

        async def scenario():
            async with ServiceHarness(small_lslod_lake, config) as harness:
                body = await submit_and_finish(harness)
                __s, __h, result = await http(
                    harness.port, "GET", f"/queries/{body['request_id']}/result"
                )
                return body, result

        body, result = run(scenario())
        assert body["state"] == "done"
        critical_path = body["critical_path"]
        assert critical_path["exact"] is True
        assert critical_path["total"] == result["stats"]["execution_time"]
        charged = sum(critical_path["classes"].values())
        assert math.isclose(charged, critical_path["total"], rel_tol=1e-9)
        assert critical_path["dominant_class"] in critical_path["classes"]
        assert critical_path["queue_wait"] >= 0.0

    def test_unobserved_requests_carry_no_critical_path(self, small_lslod_lake):
        config = ServiceConfig(port=0, workers=1)

        async def scenario():
            async with ServiceHarness(small_lslod_lake, config) as harness:
                return await submit_and_finish(harness)

        body = run(scenario())
        assert body["state"] == "done"
        assert "critical_path" not in body


class TestExecProfileTelemetry:
    def scenario_stats_and_journal(self, lake, tmp_path, repeat_query=False):
        path = tmp_path / "service.jsonl"
        config = ServiceConfig(
            port=0, workers=1, journal_path=str(path), result_cache_size=8
        )

        async def scenario():
            async with ServiceHarness(lake, config) as harness:
                await submit_and_finish(harness)
                if repeat_query:
                    await submit_and_finish(harness)
                __s, __h, stats = await http(harness.port, "GET", "/stats")
                return stats

        stats = run(scenario())
        return stats, EventJournal.read_jsonl(str(path))

    def test_fresh_executions_journal_an_exec_profile(
        self, small_lslod_lake, tmp_path
    ):
        stats, journal = self.scenario_stats_and_journal(small_lslod_lake, tmp_path)
        profiles = [e for e in journal.events if e["kind"] == "exec-profile"]
        assert len(profiles) == 1
        event = profiles[0]
        assert set(event) >= {
            "request_id",
            "tenant",
            "engine",
            "network",
            "cache",
            "total",
            "sources",
        }
        assert event["sources"], "per-source delays must be recorded"
        # /stats v3: the blame and per-source histograms fed by the event.
        blame = stats["slo"]["blame"]
        assert set(blame) == set(SLO_BLAME_CLASSES)
        assert blame["engine_work"]["count"] == 1
        assert set(stats["slo"]["source_network_delay"]) == set(event["sources"])

    def test_result_cache_replays_do_not_double_count(
        self, small_lslod_lake, tmp_path
    ):
        stats, journal = self.scenario_stats_and_journal(
            small_lslod_lake, tmp_path, repeat_query=True
        )
        profiles = [e for e in journal.events if e["kind"] == "exec-profile"]
        assert len(profiles) == 1, "cache hits must not re-profile"
        assert stats["slo"]["blame"]["engine_work"]["count"] == 1

    def test_journal_replay_reproduces_the_blame_histograms(
        self, small_lslod_lake, tmp_path
    ):
        stats, journal = self.scenario_stats_and_journal(small_lslod_lake, tmp_path)
        accountant, cache_stats = accountant_from_journal(journal.events)
        replayed = accountant.snapshot(cache_stats=cache_stats)
        assert replayed["blame"] == stats["slo"]["blame"]
        assert (
            replayed["source_network_delay"] == stats["slo"]["source_network_delay"]
        )


class TestTenantFilteredReport:
    def snapshot(self):
        from repro.obs import SLOAccountant

        accountant = SLOAccountant()
        for tenant, execution in (("acme", 0.5), ("globex", 2.0)):
            accountant.note_submit(tenant)
            accountant.note_start(tenant, 0.1)
            accountant.note_done(tenant, execution, execution + 0.1)
        return accountant.snapshot(
            cache_stats={"plans": {"hits": 1, "misses": 1, "evictions": 0}}
        )

    def test_tenant_filter_shows_only_that_row(self):
        text = render_slo_report(self.snapshot(), tenant="acme")
        assert "acme" in text
        assert "globex" not in text
        assert "GLOBAL" not in text
        assert "cache plans" not in text

    def test_unknown_tenant_fails_loudly(self):
        text = render_slo_report(self.snapshot(), tenant="nope")
        assert text == "no such tenant: nope (known: acme, globex)"

    def test_column_order_is_stable(self):
        # The text format is a contract for scripted consumers: the header
        # must list exactly the declared columns, in declaration order.
        text = render_slo_report(self.snapshot())
        header = text.splitlines()[0]
        titles = [title for title, __, __ in SLO_REPORT_COLUMNS]
        positions = [header.index(title) for title in titles]
        assert positions == sorted(positions)
        assert header.split()[0] == "tenant"
        filtered = render_slo_report(self.snapshot(), tenant="acme")
        assert filtered.splitlines()[0] == header

    def test_cli_passes_tenant_through(self, tmp_path, capsys):
        journal = EventJournal()
        journal.append("submit", 0.0, request_id="r-1", tenant="acme")
        journal.append("start", 0.1, request_id="r-1", tenant="acme", queue_wait=0.1)
        journal.append(
            "done", 1.1, request_id="r-1", tenant="acme", execution=1.0, end_to_end=1.1
        )
        journal.append("submit", 0.2, request_id="r-2", tenant="bee")
        journal.append(
            "done", 0.9, request_id="r-2", tenant="bee", execution=0.7, end_to_end=0.7
        )
        path = tmp_path / "journal.jsonl"
        journal.write_jsonl(str(path))
        exit_code = cli_main(
            ["slo", "report", "--journal", str(path), "--tenant", "bee"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "bee" in out
        assert "acme" not in out
        assert "GLOBAL" not in out
