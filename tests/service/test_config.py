"""Service/tenant config validation — every bad value, its exact message.

Covers the raw :class:`ServiceConfig` API and the ``repro serve --check``
CLI path (which must fail fast with exit code 2 and the same message on
stderr, never a traceback).
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.service import ServiceConfig, ServiceConfigError, TenantConfig


# -- ServiceConfig.validate ---------------------------------------------------


@pytest.mark.parametrize(
    "port", [-1, 65536, 70000, "8089", 8089.0, None]
)
def test_bad_port_rejected(port):
    with pytest.raises(ServiceConfigError, match="port must be an integer in 0..65535"):
        ServiceConfig(port=port).validate()


def test_port_zero_means_ephemeral():
    ServiceConfig(port=0).validate()  # does not raise


@pytest.mark.parametrize("workers", [0, -3, 1.5, "4"])
def test_bad_workers_rejected(workers):
    with pytest.raises(ServiceConfigError, match="workers must be a positive integer"):
        ServiceConfig(workers=workers).validate()


@pytest.mark.parametrize("concurrency", [0, -1, "8"])
def test_bad_global_concurrency_rejected(concurrency):
    with pytest.raises(
        ServiceConfigError, match="global_concurrency must be a positive integer"
    ):
        ServiceConfig(global_concurrency=concurrency).validate()


@pytest.mark.parametrize("timeout", [0, -1, -0.5, "30"])
def test_bad_timeout_rejected(timeout):
    with pytest.raises(
        ServiceConfigError, match=r"timeout must be positive \(or None to disable\)"
    ):
        ServiceConfig(timeout=timeout).validate()


def test_none_timeout_disables_deadlines():
    ServiceConfig(timeout=None).validate()  # does not raise


@pytest.mark.parametrize("size", [0, -10])
def test_bad_cache_sizes_rejected(size):
    with pytest.raises(ServiceConfigError, match="plan_cache_size must be a positive"):
        ServiceConfig(plan_cache_size=size).validate()
    with pytest.raises(
        ServiceConfigError, match="subresult_cache_size must be a positive"
    ):
        ServiceConfig(subresult_cache_size=size).validate()


def test_roster_key_name_mismatch_rejected():
    config = ServiceConfig(tenants={"acme": TenantConfig(name="globex")})
    with pytest.raises(ServiceConfigError, match="roster key 'acme' does not match"):
        config.validate()


# -- TenantConfig -------------------------------------------------------------


@pytest.mark.parametrize("value", [0, -2, 1.5])
def test_tenant_bad_max_concurrency(value):
    with pytest.raises(
        ServiceConfigError, match="'acme': max_concurrency must be a positive integer"
    ):
        TenantConfig(name="acme", max_concurrency=value).validate()


@pytest.mark.parametrize("value", [0, -1, "16"])
def test_tenant_bad_queue_depth(value):
    with pytest.raises(
        ServiceConfigError, match="'acme': queue_depth must be a positive integer"
    ):
        TenantConfig(name="acme", queue_depth=value).validate()


@pytest.mark.parametrize("value", [0, -1.0, "heavy"])
def test_tenant_bad_weight(value):
    with pytest.raises(ServiceConfigError, match="'acme': weight must be a positive"):
        TenantConfig(name="acme", weight=value).validate()


def test_tenant_unknown_key_rejected():
    with pytest.raises(
        ServiceConfigError, match=r"'acme': unknown config keys \['max_conc'\]"
    ):
        TenantConfig.from_dict("acme", {"max_conc": 4})


def test_tenant_non_object_payload_rejected():
    with pytest.raises(ServiceConfigError, match="'acme': config must be an object"):
        TenantConfig.from_dict("acme", [4, 32])


# -- tenant roster JSON -------------------------------------------------------


def test_tenants_json_roundtrip():
    text = json.dumps(
        {
            "acme": {"max_concurrency": 4, "queue_depth": 32, "weight": 3.0},
            "globex": {"max_concurrency": 1},
        }
    )
    config = ServiceConfig().with_tenants_json(text)
    assert config.tenant("acme").max_concurrency == 4
    assert config.tenant("globex").queue_depth == 16  # default fills in
    # Unknown tenants fall back to the default limits, renamed.
    assert config.tenant("initech").max_concurrency == 2
    assert config.tenant("initech").name == "initech"


def test_tenants_json_invalid_json():
    with pytest.raises(
        ServiceConfigError, match="tenants.json: tenant config is not valid JSON"
    ):
        ServiceConfig().with_tenants_json("{nope", source="tenants.json")


def test_tenants_json_not_an_object():
    with pytest.raises(
        ServiceConfigError, match="must be a JSON object mapping tenant names"
    ):
        ServiceConfig().with_tenants_json("[1, 2]")


def test_strict_tenants_rejects_unknown():
    config = ServiceConfig(
        strict_tenants=True, tenants={"acme": TenantConfig(name="acme")}
    )
    with pytest.raises(
        ServiceConfigError, match=r"unknown tenant 'evil' .*roster: \['acme'\]"
    ):
        config.tenant("evil")


def test_describe_lists_roster():
    config = ServiceConfig().with_tenants_json(
        json.dumps({"acme": {"max_concurrency": 4}})
    )
    text = config.describe()
    assert "tenant acme" in text
    assert "concurrency=4" in text


# -- the CLI path (`repro serve --check`) -------------------------------------


def _serve_check(capsys, *args):
    code = cli_main(["serve", "--check", *args])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_cli_valid_config_prints_summary(capsys):
    code, out, err = _serve_check(capsys, "--port", "8089", "--workers", "2")
    assert code == 0
    assert "listen        127.0.0.1:8089" in out
    assert "workers       2 engines" in out
    assert err == ""


@pytest.mark.parametrize(
    "args, message",
    [
        (["--port", "-5"], "port must be an integer in 0..65535"),
        (["--port", "70000"], "port must be an integer in 0..65535"),
        (["--workers", "0"], "workers must be a positive integer, got 0"),
        (["--workers", "-2"], "workers must be a positive integer, got -2"),
        (
            ["--global-concurrency", "0"],
            "global_concurrency must be a positive integer, got 0",
        ),
        (["--timeout", "-1"], "timeout must be positive (or None to disable)"),
        (["--timeout", "0"], "timeout must be positive (or None to disable)"),
        (
            ["--tenant-concurrency", "0"],
            "max_concurrency must be a positive integer, got 0",
        ),
        (["--tenant-queue-depth", "-1"], "queue_depth must be a positive integer"),
    ],
)
def test_cli_bad_values_exit_2_with_message(capsys, args, message):
    code, __, err = _serve_check(capsys, *args)
    assert code == 2
    assert message in err
    assert "Traceback" not in err


def test_cli_no_timeout_flag(capsys):
    code, out, __ = _serve_check(capsys, "--no-timeout")
    assert code == 0
    assert "timeout=off" in out


def test_cli_malformed_tenants_file(capsys, tmp_path):
    bad = tmp_path / "tenants.json"
    bad.write_text('{"acme": {"max_conc": 4}}')
    code, __, err = _serve_check(capsys, "--tenants", str(bad))
    assert code == 2
    assert "unknown config keys ['max_conc']" in err


def test_cli_tenants_file_not_json(capsys, tmp_path):
    bad = tmp_path / "tenants.json"
    bad.write_text("not json")
    code, __, err = _serve_check(capsys, "--tenants", str(bad))
    assert code == 2
    assert "tenant config is not valid JSON" in err


def test_cli_missing_tenants_file(capsys, tmp_path):
    code, __, err = _serve_check(capsys, "--tenants", str(tmp_path / "absent.json"))
    assert code == 2
    assert "absent.json" in err


def test_cli_tenants_roster_applied(capsys, tmp_path):
    roster = tmp_path / "tenants.json"
    roster.write_text(json.dumps({"acme": {"max_concurrency": 7, "queue_depth": 3}}))
    code, out, __ = _serve_check(capsys, "--tenants", str(roster))
    assert code == 0
    assert "tenant acme" in out
    assert "concurrency=7" in out


def test_cli_loadtest_rejects_bad_spec(capsys):
    code = cli_main(["loadtest", "--clients", "0"])
    err = capsys.readouterr().err
    assert code == 2
    assert "clients must be positive, got 0" in err
