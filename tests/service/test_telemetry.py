"""The telemetry plane's contracts on the live service stack.

The load-bearing guarantee (the PR-4 invariant extended to the service):
enabling the SLO accountant and event journal must not change a single
bit of a seeded load test — answers, virtual times, cache totals, report
fingerprint.  On top of that, the journal itself must be deterministic
(same seed → same SHA-256) and faithful (replaying it reproduces the live
accountant's snapshot exactly).
"""

import json

import pytest

from repro.core.engine import FederatedEngine
from repro.obs import SLO_VERSION, EventJournal, accountant_from_journal
from repro.optimizer import run_with_feedback
from repro.service import (
    ServiceConfig,
    ServiceConfigError,
    TenantConfig,
    WorkloadSpec,
    run_load,
)
from repro.service.admission import AdmissionController

SPEC = WorkloadSpec(
    clients=40,
    requests_per_client=2,
    tenants=3,
    cold_variants=4,
    mean_interarrival=0.2,
    mean_think=1.0,
)

CONFIG = ServiceConfig(workers=2, global_concurrency=4, timeout=20.0)

# Overloaded on purpose: sheds and both timeout kinds must appear.
TIGHT_CONFIG = ServiceConfig(
    workers=1,
    global_concurrency=1,
    timeout=0.004,
    default_tenant=TenantConfig(name="default", max_concurrency=1, queue_depth=2),
)
TIGHT_SPEC = WorkloadSpec(
    clients=60,
    requests_per_client=2,
    tenants=2,
    cold_variants=2,
    mean_interarrival=0.001,
    mean_think=0.002,
)


# -- the bit-identity invariant -----------------------------------------------


def test_telemetry_does_not_perturb_the_run(small_lslod_lake):
    with_telemetry = run_load(small_lslod_lake, CONFIG, SPEC, seed=11)
    without = run_load(small_lslod_lake, CONFIG, SPEC, seed=11, telemetry=False)
    assert with_telemetry.fingerprint() == without.fingerprint()
    assert with_telemetry.cache_stats == without.cache_stats
    assert [r.key() for r in with_telemetry.results] == [
        r.key() for r in without.results
    ]
    assert without.journal is None and without.slo is None
    assert with_telemetry.journal is not None and with_telemetry.slo is not None


def test_journal_fingerprint_is_deterministic_per_seed(small_lslod_lake):
    first = run_load(small_lslod_lake, TIGHT_CONFIG, TIGHT_SPEC, seed=5)
    second = run_load(small_lslod_lake, TIGHT_CONFIG, TIGHT_SPEC, seed=5)
    assert first.journal.fingerprint() == second.journal.fingerprint()
    assert first.journal.events == second.journal.events
    assert first.slo == second.slo
    third = run_load(small_lslod_lake, TIGHT_CONFIG, TIGHT_SPEC, seed=6)
    assert third.journal.fingerprint() != first.journal.fingerprint()


def test_journal_covers_every_outcome_kind(small_lslod_lake):
    report = run_load(small_lslod_lake, TIGHT_CONFIG, TIGHT_SPEC, seed=5)
    counts = report.journal.counts_by_kind()
    summary = report.summary()
    assert counts["submit"] == summary["requests"]
    assert counts.get("shed", 0) == summary["shed"]
    assert (
        counts.get("queued-timeout", 0) + counts.get("running-timeout", 0)
        == summary["timed_out"]
    )
    assert counts["done"] == summary["completed"]
    assert counts["cache-snapshot"] == 1
    assert counts.get("tenant-idle", 0) >= 1  # the load fully drains


def test_replaying_the_journal_reproduces_the_live_slo(small_lslod_lake):
    report = run_load(small_lslod_lake, TIGHT_CONFIG, TIGHT_SPEC, seed=5)
    # Replay through a config-less accountant: tenant weights default to
    # 1.0, which matches this workload's roster.
    replayed, cache_stats = accountant_from_journal(report.journal.events)
    assert cache_stats == report.cache_stats
    assert replayed.snapshot(cache_stats=cache_stats) == report.slo


def test_slo_snapshot_matches_driver_summary(small_lslod_lake):
    report = run_load(small_lslod_lake, CONFIG, SPEC, seed=11)
    summary = report.summary()
    slo = report.slo
    assert slo["global"]["submitted"] == summary["requests"]
    assert slo["global"]["completed"] == summary["completed"]
    assert slo["global"]["shed"] == summary["shed"]
    assert slo["global"]["timed_out"] == summary["timed_out"]
    # The SLO p-quantiles bucket the same latencies the summary ranks
    # exactly; the bucketed value bounds the exact one from above (both
    # capped at the true max).
    latencies = report.latencies()
    if latencies:
        assert slo["global"]["end_to_end"]["max"] == pytest.approx(latencies[-1])


def test_report_json_carries_journal_fingerprint(small_lslod_lake):
    report = run_load(small_lslod_lake, CONFIG, SPEC, seed=11)
    document = report.to_dict()
    assert document["journal_fingerprint"] == report.journal.fingerprint()
    assert document["journal_events"] == report.journal.counts_by_kind()
    assert document["slo"]["slo_version"] == SLO_VERSION
    json.dumps(document)  # the whole report stays JSON-serializable


def test_journal_jsonl_round_trip(small_lslod_lake, tmp_path):
    report = run_load(small_lslod_lake, TIGHT_CONFIG, TIGHT_SPEC, seed=5)
    path = tmp_path / "load.jsonl"
    report.journal.write_jsonl(str(path))
    loaded = EventJournal.read_jsonl(str(path))
    assert loaded.fingerprint() == report.journal.fingerprint()
    replayed, cache_stats = accountant_from_journal(loaded.events)
    assert replayed.snapshot(cache_stats=cache_stats) == report.slo


# -- admission edge cases the journal must capture faithfully ------------------


def test_shed_then_tenant_drains_to_idle():
    config = ServiceConfig(
        global_concurrency=1,
        timeout=None,
        tenants={"a": TenantConfig(name="a", max_concurrency=1, queue_depth=1)},
    )
    controller = AdmissionController(config)
    journal = EventJournal()
    controller.add_observer(journal)
    first = controller.submit("r-1", "a", 0.0)
    controller.start_ready(0.0)
    # Queue depth 1: r-2 queues, r-3 sheds.
    controller.submit("r-2", "a", 0.1)
    shed = controller.submit("r-3", "a", 0.2)
    assert shed.state == "shed"
    controller.complete(first, 1.0)
    started = controller.start_ready(1.0)
    controller.complete(started[0], 2.0)
    kinds = [event["kind"] for event in journal]
    # The shed is recorded, and the later drain emits exactly one idle
    # marker — after the last completion, not after the shed.
    assert kinds.count("shed") == 1
    assert kinds.count("tenant-idle") == 1
    assert kinds[-1] == "tenant-idle"
    idle = journal.events[-1]
    assert idle["tenant"] == "a"
    assert idle["ts"] == 2.0


def test_running_timeout_frees_slot_late_and_is_journaled():
    config = ServiceConfig(
        global_concurrency=1,
        timeout=1.0,
        tenants={"a": TenantConfig(name="a", max_concurrency=1, queue_depth=4)},
    )
    controller = AdmissionController(config)
    journal = EventJournal()
    controller.add_observer(journal)
    slow = controller.submit("r-slow", "a", 0.0)
    controller.start_ready(0.0)
    next_up = controller.submit("r-next", "a", 0.5)
    # Deadline for r-slow passes at 1.0; the slot is still held.
    assert controller.start_ready(1.01) == []
    assert controller.running == 1
    # The execution finishes late: slot freed only now, overrun recorded.
    controller.complete(slow, 2.5)
    assert slow.state == "timeout"
    started = controller.start_ready(2.5)
    # r-next expired while queued (deadline 1.5) — both timeout flavours.
    assert started == []
    assert next_up.state == "timeout"
    overrun = next(e for e in journal if e["kind"] == "running-timeout")
    assert overrun["ts"] == 2.5
    assert overrun["execution"] == 2.5
    assert overrun["overrun"] == 1.5
    queued = next(e for e in journal if e["kind"] == "queued-timeout")
    assert queued["request_id"] == "r-next"
    assert queued["ts"] == 1.5  # timed out *at* its deadline
    assert queued["waited"] == 1.0


def test_zero_weight_tenant_config_is_rejected():
    with pytest.raises(ServiceConfigError, match="weight must be a positive"):
        TenantConfig(name="freeloader", weight=0.0).validate()
    with pytest.raises(ServiceConfigError, match="weight must be a positive"):
        TenantConfig.from_dict("freeloader", {"weight": 0})
    with pytest.raises(ServiceConfigError, match="weight must be a positive"):
        ServiceConfig().with_tenants_json(json.dumps({"t": {"weight": -1.5}}))


# -- the feedback loop's replan events ----------------------------------------


def test_run_with_feedback_journals_replan_events(small_lslod_lake):
    from repro.core.policy import PlanPolicy
    from repro.datasets import BENCHMARK_QUERIES

    engine = FederatedEngine(small_lslod_lake, policy=PlanPolicy.cost())
    query = BENCHMARK_QUERIES["Q2"].text
    journal = EventJournal()
    result = run_with_feedback(
        engine, query, seed=3, q_error_threshold=1.0, journal=journal
    )
    replans = [event for event in journal if event["kind"] == "replan"]
    assert len(replans) == 1
    event = replans[0]
    assert event["ts"] == result.execution_time
    assert event["max_q_error"] == pytest.approx(result.max_q_error, abs=1e-6)
    assert event["ingested"] == result.ingested
    assert event["replanned"] == result.replanned
    assert event["revision"] == engine.observed_stats.revision
    assert len(event["query"]) == 16  # sha-256 prefix, not raw query text

    # A second pass of the same query appends a second event with the
    # (possibly unchanged) store revision — the journal is the loop's log.
    run_with_feedback(engine, query, seed=3, q_error_threshold=1.0, journal=journal)
    assert len([e for e in journal if e["kind"] == "replan"]) == 2
