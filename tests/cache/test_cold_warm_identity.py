"""Cache × policy × network interaction: warm answers are bit-identical.

The differential fuzzer compares answer multisets; this test is stricter
for the paper's five benchmark queries: under every network setting, a
warm-cache run must reproduce the cold run's answers *bit-identically* —
same solutions, same term serializations, same order.
"""

import pytest

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.benchmark import solution_key
from repro.datasets import BENCHMARK_QUERIES, GRID_QUERIES

SEED = 7

NETWORKS = {
    "nodelay": NetworkSetting.no_delay,
    "gamma1": NetworkSetting.gamma1,
    "gamma2": NetworkSetting.gamma2,
    "gamma3": NetworkSetting.gamma3,
}


@pytest.mark.parametrize("network_name", sorted(NETWORKS))
@pytest.mark.parametrize("query_name", GRID_QUERIES)
def test_warm_cache_answers_bit_identical(small_lslod_lake, query_name, network_name):
    query = BENCHMARK_QUERIES[query_name].text
    engine = FederatedEngine(
        small_lslod_lake,
        policy=PlanPolicy.physical_design_aware(),
        network=NETWORKS[network_name](),
    )

    cold, stats_cold = engine.run(query, seed=SEED)
    warm, stats_warm = engine.run(query, seed=SEED)

    assert stats_cold.plan_cache_hit is False
    assert stats_warm.plan_cache_hit is True

    # Bit-identical: same length, same order, and every solution maps the
    # same variables to terms with identical N-Triples serializations.
    assert len(warm) == len(cold)
    assert [solution_key(solution) for solution in warm] == [
        solution_key(solution) for solution in cold
    ]
    assert warm == cold
