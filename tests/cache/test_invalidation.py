"""Cache invalidation: writes and physical-design changes drop cached state.

The satellite requirements: a cached wrapper sub-result must stop being
served after INSERT/DELETE on an underlying table and after CREATE/DROP
INDEX changes the physical design — and the plan cache too, since the
heuristics' decisions depend on the indexes.
"""

import pytest

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.rdf.terms import IRI, Literal, Triple

from ..conftest import TINY_QUERY

XSD_STRING = "http://www.w3.org/2001/XMLSchema#string"


def warm(engine, query=TINY_QUERY, seed=1):
    answers, stats = engine.run(query, seed=seed)
    return answers, stats


class TestDataVersionCounters:
    def test_insert_bumps_table_and_database_version(self, tiny_lake):
        database = tiny_lake.source("diseasome").database
        storage = database.table("gene")
        before_table, before_db = storage.version, database.data_version
        storage.insert({"id": 999, "genesymbol": "XYZ", "associateddisease": 1})
        assert storage.version == before_table + 1
        assert database.data_version == before_db + 1

    def test_delete_bumps_version(self, tiny_lake):
        database = tiny_lake.source("diseasome").database
        storage = database.table("gene")
        row_id = storage.insert({"id": 998, "genesymbol": "ZZZ", "associateddisease": 1})
        before = database.data_version
        assert storage.delete(row_id)
        assert database.data_version == before + 1

    def test_index_ddl_bumps_version(self, tiny_lake):
        database = tiny_lake.source("diseasome").database
        before = database.data_version
        database.create_index("gene", ["genesymbol"], name="ix_tmp")
        assert database.data_version > before
        mid = database.data_version
        database.drop_index("gene", "ix_tmp")
        assert database.data_version > mid

    def test_graph_version_counts_real_changes_only(self):
        from repro.rdf import Graph

        graph = Graph("g")
        triple = Triple(IRI("http://ex/s"), IRI("http://ex/p"), Literal("o", XSD_STRING))
        assert graph.version == 0
        graph.add(triple)
        assert graph.version == 1
        graph.add(triple)  # duplicate: no change, no bump
        assert graph.version == 1
        graph.remove(triple)
        assert graph.version == 2

    def test_lake_catalog_version_reflects_member_writes(self, tiny_lake):
        before = tiny_lake.catalog_version()
        tiny_lake.source("diseasome").database.table("gene").insert(
            {"id": 997, "genesymbol": "AAA", "associateddisease": 1}
        )
        after = tiny_lake.catalog_version()
        assert before != after
        changed = dict(after).keys() - {
            source for source, version in before if dict(after)[source] == version
        }
        assert "diseasome" in changed


class TestSubresultInvalidation:
    def test_insert_drops_cached_wrapper_result(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        answers_before, __ = warm(engine)
        __, stats_warm = warm(engine)
        assert stats_warm.subresult_cache_hits > 0
        assert stats_warm.subresult_cache_misses == 0

        # A new gene joins an existing disease: the result set must grow.
        tiny_lake.source("diseasome").database.table("gene").insert(
            {"id": 500, "genesymbol": "NEW1", "associateddisease": 2}
        )
        answers_after, stats_after = warm(engine)
        assert stats_after.subresult_cache_misses > 0  # stale entries skipped
        assert len(answers_after) == len(answers_before) + 1
        symbols = {str(solution["sym"]) for solution in answers_after}
        assert any("NEW1" in symbol for symbol in symbols)

    def test_delete_drops_cached_wrapper_result(self, tiny_lake):
        database = tiny_lake.source("diseasome").database
        storage = database.table("gene")
        row_id = storage.insert({"id": 501, "genesymbol": "TMP", "associateddisease": 2})
        engine = FederatedEngine(tiny_lake)
        answers_with, __ = warm(engine)
        storage.delete(row_id)
        answers_without, stats = warm(engine)
        assert len(answers_without) == len(answers_with) - 1
        assert stats.subresult_cache_misses > 0

    def test_create_index_invalidates_subresults_and_plans(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        warm(engine)
        __, stats_warm = warm(engine)
        assert stats_warm.plan_cache_hit is True

        tiny_lake.create_index("diseasome", "disease", ["diseaseclass"])
        __, stats_after = warm(engine)
        assert stats_after.plan_cache_hit is False  # replanned
        assert stats_after.subresult_cache_misses > 0

    def test_drop_index_invalidates_plan_cache(self, tiny_lake):
        tiny_lake.create_index("diseasome", "disease", ["diseaseclass"], name="ix_dc")
        engine = FederatedEngine(tiny_lake)
        warm(engine)
        __, stats_warm = warm(engine)
        assert stats_warm.plan_cache_hit is True
        tiny_lake.drop_index("diseasome", "disease", "ix_dc")
        __, stats_after = warm(engine)
        assert stats_after.plan_cache_hit is False

    def test_rdf_source_write_invalidates(self, diseasome_graph, affymetrix_graph):
        from repro.datalake import SemanticDataLake

        lake = SemanticDataLake("rdf")
        lake.add_rdf_source("diseasome", diseasome_graph)
        lake.add_rdf_source("affymetrix", affymetrix_graph)
        engine = FederatedEngine(lake)
        answers_before, __ = warm(engine)
        __, stats_warm = warm(engine)
        assert stats_warm.subresult_cache_hits > 0

        vocabulary = "http://ex/vocab#"
        subject = IRI("http://ex/diseasome/Gene/99")
        diseasome_graph.add(
            Triple(
                subject,
                IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
                IRI(f"{vocabulary}Gene"),
            )
        )
        diseasome_graph.add(
            Triple(subject, IRI(f"{vocabulary}geneSymbol"), Literal("G99", XSD_STRING))
        )
        diseasome_graph.add(
            Triple(
                subject,
                IRI(f"{vocabulary}associatedDisease"),
                IRI("http://ex/diseasome/Disease/1"),
            )
        )
        lake.invalidate_descriptions()
        answers_after, stats_after = warm(engine)
        assert stats_after.subresult_cache_misses > 0
        assert len(answers_after) == len(answers_before) + 1
