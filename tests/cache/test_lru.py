"""Unit tests of the bounded, counted LRU cache."""

import pytest

from repro.cache import CacheRegistry, LRUCache, canonicalize_query


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats().evictions == 1

    def test_put_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # overwrite refreshes
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 10

    def test_disabled_cache_never_stores(self):
        cache = LRUCache(capacity=4, enabled=False)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.stats().misses == 1

    def test_invalidate_and_clear(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)

    def test_hit_rate(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        assert cache.stats().hit_rate == 0.5


class TestCacheRegistry:
    def test_stats_and_describe(self):
        registry = CacheRegistry(plan_capacity=8, subresult_capacity=8)
        registry.plans.put("k", "plan")
        registry.plans.get("k")
        text = registry.describe()
        assert "plans" in text and "subresults" in text
        assert registry.stats()["plans"].hits == 1

    def test_clear(self):
        registry = CacheRegistry()
        registry.plans.put("k", 1)
        registry.subresults.put("k", 2)
        registry.clear()
        assert len(registry.plans) == 0
        assert len(registry.subresults) == 0

    def test_disabled_flags(self):
        registry = CacheRegistry(plans_enabled=False, subresults_enabled=True)
        assert registry.plans.enabled is False
        assert registry.subresults.enabled is True


class TestCanonicalizeQuery:
    def test_collapses_whitespace(self):
        assert (
            canonicalize_query("SELECT  *\n WHERE {\t?s ?p ?o }")
            == "SELECT * WHERE { ?s ?p ?o }"
        )

    def test_preserves_string_literals(self):
        a = canonicalize_query('SELECT * WHERE { ?s ?p "a  b" }')
        b = canonicalize_query('SELECT * WHERE { ?s ?p "a b" }')
        assert a != b
        assert '"a  b"' in a

    def test_strips_comments_outside_strings(self):
        text = 'SELECT * # all vars\nWHERE { ?s ?p "x # not a comment" }'
        canonical = canonicalize_query(text)
        assert "all vars" not in canonical
        assert "# not a comment" in canonical

    def test_escaped_quote_does_not_end_literal(self):
        canonical = canonicalize_query('SELECT * WHERE { ?s ?p "a\\"  b" }')
        assert 'a\\"  b' in canonical

    def test_equivalent_formattings_share_a_key(self):
        one = "SELECT ?x WHERE { ?x a <http://ex/C> }"
        two = "  SELECT   ?x\nWHERE   {\n  ?x a <http://ex/C> }  "
        assert canonicalize_query(one) == canonicalize_query(two)
