"""The semantics guard: caching saves wall-clock, never virtual time.

Acceptance criterion of the caching subsystem: virtual execution times and
answer counts for the paper's five benchmark queries are unchanged under
fixed seeds whether caches are cold, warm, or disabled — cached wrapper
replays re-charge network delays into the virtual clock identically to a
cold run.
"""

import pytest

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.benchmark import same_answers
from repro.datasets import BENCHMARK_QUERIES, GRID_QUERIES

from ..conftest import TINY_CROSS_SOURCE_QUERY, TINY_QUERY

SEED = 7


def stats_key(stats):
    """Every virtual-time-visible observable of one execution."""
    return (
        stats.answers,
        stats.execution_time,
        stats.time_to_first_answer,
        tuple(stats.trace),
        stats.messages,
        {
            source: (s.requests, s.answers, s.virtual_cost)
            for source, s in stats.source_stats.items()
        },
    )


@pytest.mark.parametrize("query_name", GRID_QUERIES)
def test_paper_queries_cached_equals_uncached(small_lslod_lake, query_name):
    query = BENCHMARK_QUERIES[query_name].text
    network = NetworkSetting.gamma2()
    uncached = FederatedEngine(
        small_lslod_lake,
        policy=PlanPolicy.physical_design_aware(),
        network=network,
        enable_plan_cache=False,
        enable_subresult_cache=False,
    )
    cached = FederatedEngine(
        small_lslod_lake, policy=PlanPolicy.physical_design_aware(), network=network
    )

    answers_off, stats_off = uncached.run(query, seed=SEED)
    answers_cold, stats_cold = cached.run(query, seed=SEED)
    answers_warm, stats_warm = cached.run(query, seed=SEED)

    assert stats_warm.plan_cache_hit is True
    assert stats_warm.subresult_cache_hits > 0
    assert stats_warm.subresult_cache_misses == 0

    assert same_answers(answers_off, answers_cold)
    assert same_answers(answers_off, answers_warm)
    assert stats_key(stats_off) == stats_key(stats_cold)
    assert stats_key(stats_off) == stats_key(stats_warm)


@pytest.mark.parametrize(
    "policy_factory",
    [
        PlanPolicy.physical_design_aware,
        PlanPolicy.physical_design_unaware,
        PlanPolicy.heuristic2,
        PlanPolicy.dependent_join,
    ],
    ids=lambda factory: factory.__name__,
)
def test_neutrality_across_policies(tiny_lake, policy_factory):
    policy = policy_factory()
    network = NetworkSetting.gamma1()
    uncached = FederatedEngine(
        tiny_lake,
        policy=policy,
        network=network,
        enable_plan_cache=False,
        enable_subresult_cache=False,
    )
    cached = FederatedEngine(tiny_lake, policy=policy, network=network)
    for query in (TINY_QUERY, TINY_CROSS_SOURCE_QUERY):
        answers_off, stats_off = uncached.run(query, seed=SEED)
        answers_cold, stats_cold = cached.run(query, seed=SEED)
        answers_warm, stats_warm = cached.run(query, seed=SEED)
        assert same_answers(answers_off, answers_warm)
        assert stats_key(stats_off) == stats_key(stats_cold) == stats_key(stats_warm)


def test_neutrality_over_pure_rdf_sources(diseasome_graph, affymetrix_graph):
    from repro.datalake import SemanticDataLake

    lake = SemanticDataLake("rdf")
    lake.add_rdf_source("diseasome", diseasome_graph)
    lake.add_rdf_source("affymetrix", affymetrix_graph)
    network = NetworkSetting.gamma2()
    uncached = FederatedEngine(
        lake, network=network, enable_plan_cache=False, enable_subresult_cache=False
    )
    cached = FederatedEngine(lake, network=network)
    answers_off, stats_off = uncached.run(TINY_CROSS_SOURCE_QUERY, seed=SEED)
    cached.run(TINY_CROSS_SOURCE_QUERY, seed=SEED)
    answers_warm, stats_warm = cached.run(TINY_CROSS_SOURCE_QUERY, seed=SEED)
    assert stats_warm.subresult_cache_hits > 0
    assert same_answers(answers_off, answers_warm)
    assert stats_key(stats_off) == stats_key(stats_warm)


def test_warm_results_are_fresh_copies(tiny_lake):
    """Replayed solutions must not alias cache-internal state."""
    engine = FederatedEngine(tiny_lake)
    engine.run(TINY_QUERY, seed=SEED)
    answers_one, __ = engine.run(TINY_QUERY, seed=SEED)
    for solution in answers_one:
        solution.clear()  # downstream consumer mangles its copy
    answers_two, __ = engine.run(TINY_QUERY, seed=SEED)
    assert all(answers_two), "cached solutions were shared with consumers"
