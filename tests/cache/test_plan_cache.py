"""Plan-cache behaviour: reuse, key isolation, and flag plumbing.

The key-isolation satellite: physical-design-aware and -unaware policies,
and different network settings, must never share a plan-cache entry — the
heuristics bake both into the plan.
"""

import pytest

from repro import FederatedEngine, NetworkSetting, PlanPolicy

from ..conftest import TINY_QUERY


class TestPlanReuse:
    def test_second_execution_hits(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        __, first = engine.run(TINY_QUERY, seed=1)
        __, second = engine.run(TINY_QUERY, seed=1)
        assert first.plan_cache_hit is False
        assert second.plan_cache_hit is True

    def test_cached_plan_is_the_same_object(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        assert engine.plan(TINY_QUERY) is engine.plan(TINY_QUERY)

    def test_whitespace_variants_share_one_entry(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        engine.plan(TINY_QUERY)
        reformatted = "\n".join(line.strip() for line in TINY_QUERY.split("\n"))
        engine.plan("  " + reformatted)
        assert engine.cache_stats()["plans"].hits == 1

    def test_parsed_queries_bypass_the_cache(self, tiny_lake):
        from repro.sparql.parser import parse_query

        engine = FederatedEngine(tiny_lake)
        query = parse_query(TINY_QUERY)
        engine.plan(query)
        engine.plan(query)
        stats = engine.cache_stats()["plans"]
        assert stats.lookups == 0

    def test_plan_records_catalog_version(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        plan = engine.plan(TINY_QUERY)
        assert plan.catalog_version == tiny_lake.catalog_version()


class TestKeyIsolation:
    def test_policies_never_share_entries(self, tiny_lake):
        aware = FederatedEngine(tiny_lake, policy=PlanPolicy.physical_design_aware())
        unaware = aware.with_policy(PlanPolicy.physical_design_unaware())
        # Same registry would be required to even risk sharing; engines keep
        # their own, so also verify via key construction on one engine.
        plan_aware = aware.plan(TINY_QUERY)
        plan_unaware = unaware.plan(TINY_QUERY)
        assert "SymmetricHashJoin" in plan_unaware.explain()
        assert "SymmetricHashJoin" not in plan_aware.explain()

    def test_fingerprint_differs_across_policies(self):
        fingerprints = {
            PlanPolicy.physical_design_aware().fingerprint(),
            PlanPolicy.physical_design_unaware().fingerprint(),
            PlanPolicy.heuristic2().fingerprint(),
            PlanPolicy.filters_at_source().fingerprint(),
            PlanPolicy.dependent_join().fingerprint(),
            PlanPolicy.triple_wise().fingerprint(),
        }
        assert len(fingerprints) == 6

    def test_fingerprint_ignores_cache_toggles(self):
        base = PlanPolicy.physical_design_aware()
        toggled = base.with_(use_plan_cache=False, use_subresult_cache=False)
        assert base.fingerprint() == toggled.fingerprint()

    def test_networks_never_share_entries(self, tiny_lake):
        # One engine per network, but exercise the actual key path by
        # checking distinct entries accumulate in a shared-lake scenario.
        fast = FederatedEngine(tiny_lake, network=NetworkSetting.no_delay())
        slow = fast.with_network(NetworkSetting.gamma3())
        plan_fast = fast.plan(TINY_QUERY)
        plan_slow = slow.plan(TINY_QUERY)
        assert plan_fast.network != plan_slow.network

    def test_network_is_part_of_the_key(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, network=NetworkSetting.no_delay())
        engine.plan(TINY_QUERY)
        engine.network = NetworkSetting.gamma3()
        plan_slow = engine.plan(TINY_QUERY)
        stats = engine.cache_stats()["plans"]
        assert stats.misses == 2 and stats.hits == 0
        assert plan_slow.network == NetworkSetting.gamma3()

    def test_policy_is_part_of_the_key(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, policy=PlanPolicy.physical_design_aware())
        engine.plan(TINY_QUERY)
        engine.policy = PlanPolicy.physical_design_unaware()
        plan = engine.plan(TINY_QUERY)
        stats = engine.cache_stats()["plans"]
        assert stats.misses == 2 and stats.hits == 0
        assert "SymmetricHashJoin" in plan.explain()


class TestFlags:
    def test_engine_flag_disables_plan_cache(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, enable_plan_cache=False)
        __, first = engine.run(TINY_QUERY, seed=1)
        __, second = engine.run(TINY_QUERY, seed=1)
        assert first.plan_cache_hit is None
        assert second.plan_cache_hit is None

    def test_policy_flag_disables_plan_cache(self, tiny_lake):
        policy = PlanPolicy.physical_design_aware().with_(use_plan_cache=False)
        engine = FederatedEngine(tiny_lake, policy=policy)
        __, stats = engine.run(TINY_QUERY, seed=1)
        assert stats.plan_cache_hit is None

    def test_engine_flag_disables_subresult_cache(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, enable_subresult_cache=False)
        engine.run(TINY_QUERY, seed=1)
        __, stats = engine.run(TINY_QUERY, seed=1)
        assert stats.subresult_cache_hits == 0
        assert stats.subresult_cache_misses == 0

    def test_policy_flag_disables_subresult_cache(self, tiny_lake):
        policy = PlanPolicy.physical_design_aware().with_(use_subresult_cache=False)
        engine = FederatedEngine(tiny_lake, policy=policy)
        engine.run(TINY_QUERY, seed=1)
        __, stats = engine.run(TINY_QUERY, seed=1)
        assert stats.subresult_cache_hits == 0

    def test_clear_caches(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        engine.run(TINY_QUERY, seed=1)
        engine.clear_caches()
        __, stats = engine.run(TINY_QUERY, seed=1)
        assert stats.plan_cache_hit is False

    def test_profile_reports_cache_summary(self, tiny_lake):
        engine = FederatedEngine(tiny_lake)
        engine.run(TINY_QUERY, seed=1)
        __, __stats, report = engine.profile(TINY_QUERY, seed=1)
        assert report.cache_summary is not None
        assert "subresults" in report.render()

    def test_profile_never_poisons_the_plan_cache(self, tiny_lake):
        """Instrumented operators must not leak into cached plans."""
        engine = FederatedEngine(tiny_lake)
        engine.profile(TINY_QUERY, seed=1)
        answers, stats = engine.run(TINY_QUERY, seed=1)
        answers_again, stats_again = engine.run(TINY_QUERY, seed=1)
        assert len(answers) == len(answers_again)
        assert stats.execution_time == stats_again.execution_time
