"""The plan-invariant checker and the planner's debug-validate hook."""

import pytest

from repro.core import heuristics
from repro.core.engine import FederatedEngine
from repro.core.policy import PlanPolicy
from repro.exceptions import InvariantViolation
from repro.oracle import (
    LakeLayout,
    build_lake,
    check_case_on_lake,
    check_plan,
    random_case,
)

from ..conftest import TINY_QUERY

ALL_POLICIES = [
    PlanPolicy.physical_design_aware,
    PlanPolicy.physical_design_unaware,
    PlanPolicy.heuristic2,
    PlanPolicy.filters_at_source,
    PlanPolicy.dependent_join,
]

# Two gene stars joined on geneSymbol: the only join attribute is a plain
# (non-primary-key) column, so Heuristic 1 must refuse to merge them when
# no index exists.  Star-to-star joins through link predicates always land
# on an auto-indexed primary key, which is why this shape — not the usual
# gene/disease join — is the H1-decisive one.
GENE_PAIR_QUERY = """
PREFIX v: <http://fuzz/vocab#>
SELECT ?g ?g2 ?sym ?len WHERE {
  ?g a v:Gene .
  ?g v:geneSymbol ?sym .
  ?g2 a v:Gene .
  ?g2 v:geneSymbol ?sym .
  ?g2 v:geneLength ?len .
}
"""

UNINDEXED_LAYOUT = LakeLayout(
    data_seed=1, kinds={"bio": "rdb", "probes": "rdb"}, indexes=[]
)


def _broken_mergeable(group, selection, candidate, catalog, policy):
    return True, "broken: index check disabled"


class TestCleanPlans:
    def test_no_violations_on_tiny_lake(self, tiny_lake):
        for policy in (factory() for factory in ALL_POLICIES):
            engine = FederatedEngine(tiny_lake, policy=policy)
            plan = engine.plan(TINY_QUERY)
            assert check_plan(plan, tiny_lake) == []

    def test_no_violations_across_fuzz_cases(self):
        for index in range(15):
            case = random_case(21, index)
            lake = build_lake(case.layout)
            for policy in (factory() for factory in ALL_POLICIES):
                engine = FederatedEngine(lake, policy=policy)
                plan = engine.plan(case.sparql())
                assert check_plan(plan, lake) == [], case.name


class TestBrokenHeuristic1:
    """Acceptance criterion: a merge without the index check is caught by
    the invariant checker AND by the differential runner."""

    def test_invariant_checker_flags_unindexed_merge(self, monkeypatch):
        monkeypatch.setattr(heuristics, "_mergeable", _broken_mergeable)
        lake = build_lake(UNINDEXED_LAYOUT)
        engine = FederatedEngine(lake, policy=PlanPolicy.physical_design_aware())
        plan = engine.plan(GENE_PAIR_QUERY)
        violations = check_plan(plan, lake)
        assert any("unindexed join attribute" in violation for violation in violations)

    def test_differential_runner_catches_unindexed_merge(self, monkeypatch):
        monkeypatch.setattr(heuristics, "_mergeable", _broken_mergeable)
        lake = build_lake(UNINDEXED_LAYOUT)
        mismatches = check_case_on_lake(lake, GENE_PAIR_QUERY)
        assert mismatches
        assert "invariant" in {m.kind for m in mismatches}

    def test_differential_runner_catches_it_without_invariant_audit(self, monkeypatch):
        # Even with the invariant audit disabled, the broken merge is a
        # *behavioural* bug: under triple-wise decomposition the merged
        # unit fails to translate, surfacing as "error" mismatches.
        monkeypatch.setattr(heuristics, "_mergeable", _broken_mergeable)
        lake = build_lake(UNINDEXED_LAYOUT)
        mismatches = check_case_on_lake(lake, GENE_PAIR_QUERY, check_invariants=False)
        assert mismatches
        assert "invariant" not in {m.kind for m in mismatches}

    def test_sanity_clean_heuristic_passes_both(self):
        lake = build_lake(UNINDEXED_LAYOUT)
        assert check_case_on_lake(lake, GENE_PAIR_QUERY) == []


class TestDebugValidateHook:
    def test_engine_flag_raises_on_broken_plan(self, monkeypatch):
        monkeypatch.setattr(heuristics, "_mergeable", _broken_mergeable)
        lake = build_lake(UNINDEXED_LAYOUT)
        engine = FederatedEngine(
            lake, policy=PlanPolicy.physical_design_aware(), debug_validate=True
        )
        with pytest.raises(InvariantViolation) as excinfo:
            engine.plan(GENE_PAIR_QUERY)
        assert excinfo.value.violations

    def test_env_var_enables_validation(self, monkeypatch):
        monkeypatch.setattr(heuristics, "_mergeable", _broken_mergeable)
        monkeypatch.setenv("REPRO_DEBUG_VALIDATE", "1")
        lake = build_lake(UNINDEXED_LAYOUT)
        engine = FederatedEngine(lake, policy=PlanPolicy.physical_design_aware())
        with pytest.raises(InvariantViolation):
            engine.plan(GENE_PAIR_QUERY)

    def test_explicit_false_overrides_env(self, monkeypatch):
        monkeypatch.setattr(heuristics, "_mergeable", _broken_mergeable)
        monkeypatch.setenv("REPRO_DEBUG_VALIDATE", "1")
        lake = build_lake(UNINDEXED_LAYOUT)
        engine = FederatedEngine(
            lake, policy=PlanPolicy.physical_design_aware(), debug_validate=False
        )
        engine.plan(GENE_PAIR_QUERY)  # must not raise

    def test_validation_off_by_default_and_clean_plans_pass(self, tiny_lake):
        engine = FederatedEngine(
            tiny_lake, policy=PlanPolicy.physical_design_aware(), debug_validate=True
        )
        assert engine.plan(TINY_QUERY) is not None
