"""The differential runner: configuration matrix, comparison semantics."""

import pytest

from repro.core.policy import DecompositionKind
from repro.oracle import (
    check_fuzz_case,
    compare_answers,
    default_configs,
    random_case,
    run_fuzz,
    shrink_case,
)
from repro.rdf import IRI, Literal, XSD_INTEGER
from repro.sparql import parse_query


class TestConfigurationMatrix:
    def test_covers_policies_decompositions_and_caches(self):
        configs = default_configs()
        assert len(configs) == 20  # 5 policies x 2 decompositions x 2 cache modes
        names = {config.name for config in configs}
        assert len(names) == 20
        assert {config.policy.decomposition for config in configs} == {
            DecompositionKind.STAR,
            DecompositionKind.TRIPLE,
        }
        assert {config.cache for config in configs} == {True, False}


def _solutions(values):
    return [{"x": Literal(str(value), XSD_INTEGER)} for value in values]


class TestCompareAnswers:
    def test_equal_multisets_pass(self):
        query = parse_query("SELECT ?x WHERE { ?x <http://p> ?y . }")
        expected = _solutions([1, 2, 2])
        assert compare_answers(query, expected, _solutions([2, 1, 2]), True, "c") == []

    def test_missing_answer_detected(self):
        query = parse_query("SELECT ?x WHERE { ?x <http://p> ?y . }")
        mismatches = compare_answers(
            query, _solutions([1, 2]), _solutions([1]), True, "c"
        )
        assert [m.kind for m in mismatches] == ["answers"]

    def test_duplicate_detected_under_multiset_comparison(self):
        query = parse_query("SELECT ?x WHERE { ?x <http://p> ?y . }")
        mismatches = compare_answers(
            query, _solutions([1, 2]), _solutions([1, 2, 2]), True, "c"
        )
        assert [m.kind for m in mismatches] == ["answers"]

    def test_replica_duplicates_tolerated_under_set_comparison(self):
        query = parse_query("SELECT ?x WHERE { ?x <http://p> ?y . }")
        assert compare_answers(
            query, _solutions([1, 2]), _solutions([1, 2, 2, 1]), False, "c"
        ) == []

    def test_distinct_forces_exactness_even_for_replicas(self):
        query = parse_query("SELECT DISTINCT ?x WHERE { ?x <http://p> ?y . }")
        mismatches = compare_answers(
            query, _solutions([1, 2]), _solutions([1, 2, 2]), False, "c"
        )
        assert {m.kind for m in mismatches} == {"duplicates", "answers"}

    def test_limit_checks_subset_and_cardinality(self):
        query = parse_query("SELECT ?x WHERE { ?x <http://p> ?y . } LIMIT 2")
        expected = _solutions([1, 2, 3])
        assert compare_answers(query, expected, _solutions([3, 1]), True, "c") == []
        short = compare_answers(query, expected, _solutions([3]), True, "c")
        assert [m.kind for m in short] == ["count"]
        foreign = compare_answers(query, expected, _solutions([3, 9]), True, "c")
        assert "answers" in {m.kind for m in foreign}

    def test_order_violation_detected(self):
        query = parse_query("SELECT ?x WHERE { ?x <http://p> ?y . } ORDER BY ?x")
        expected = _solutions([1, 2, 3])
        assert compare_answers(query, expected, _solutions([1, 2, 3]), True, "c") == []
        unsorted = compare_answers(query, expected, _solutions([2, 1, 3]), True, "c")
        assert "order" in {m.kind for m in unsorted}

    def test_iri_answers_compared_by_serialization(self):
        query = parse_query("SELECT ?x WHERE { ?x <http://p> ?y . }")
        expected = [{"x": IRI("http://a")}]
        assert compare_answers(query, expected, [{"x": IRI("http://a")}], True, "c") == []
        wrong = compare_answers(query, expected, [{"x": IRI("http://b")}], True, "c")
        assert wrong


class TestSmallCampaign:
    def test_short_campaign_is_clean(self):
        report = run_fuzz(3, 8, regressions_dir=None)
        assert report.ok, report.summary()
        assert report.iterations == 8
        assert report.configurations == 20

    def test_failing_campaign_writes_shrunk_reproducer(self, tmp_path, monkeypatch):
        # Inject a fault into the engine's DISTINCT operator and check the
        # pipeline end-to-end: detection, shrinking, reproducer on disk.
        from repro.federation import operators

        def broken_execute(self, context):
            seen = False
            for solution in self.child.execute(context):
                if not seen:
                    seen = True
                    continue  # drop the first solution
                yield solution

        monkeypatch.setattr(operators.Distinct, "execute", broken_execute)
        report = run_fuzz(42, 30, regressions_dir=tmp_path)
        assert not report.ok
        failure = report.failures[0]
        assert failure.written_to is not None
        written = list(tmp_path.glob("*.json"))
        assert written
        # The shrunk case still uses DISTINCT (the faulty feature).
        assert failure.shrunk.query.distinct


@pytest.mark.fuzz
class TestAcceptanceCampaign:
    def test_seed42_200_iterations_zero_mismatches(self):
        report = run_fuzz(42, 200, regressions_dir=None)
        assert report.ok, report.summary()


class TestShrinker:
    def test_shrinks_to_single_star_single_pattern(self):
        case = random_case(42, 4)  # a large multi-star case with filters

        def fails_if_distinct(candidate):
            # Fake failure signature: any query using DISTINCT "fails".
            from repro.oracle import Mismatch

            if candidate.query.distinct:
                return [Mismatch("c", "answers", "injected")]
            return []

        assert fails_if_distinct(case), "pick a case with DISTINCT for this test"
        shrunk = shrink_case(case, fails_if_distinct)
        assert shrunk.query.distinct
        total_patterns = sum(len(star.patterns) for star in shrunk.query.stars)
        assert len(shrunk.query.stars) <= 1
        assert total_patterns <= 1
        assert not shrunk.query.filters

    def test_preserves_failure_kind(self):
        case = random_case(42, 4)

        def check(candidate):
            from repro.oracle import Mismatch

            mismatches = []
            if candidate.query.distinct:
                mismatches.append(Mismatch("c", "answers", "injected"))
            if candidate.query.stars and len(candidate.query.stars) < 2:
                # A different failure appears on small queries; shrinking
                # must not trade the original kind away for this one.
                mismatches.append(Mismatch("c", "error", "unrelated"))
            return mismatches

        shrunk = shrink_case(case, check)
        kinds = {m.kind for m in check(shrunk)}
        assert "answers" in kinds


class TestSkipsUnsupportedConfigs:
    def test_optional_query_skips_triple_configs(self):
        for index in range(200):
            case = random_case(11, index)
            if case.query.optional:
                break
        else:
            pytest.fail("no OPTIONAL case drawn")
        mismatches = check_fuzz_case(case)
        assert mismatches == []
