"""The committed regression corpus, replayed as plain tests.

Every file in ``tests/oracle/regressions/`` is a :class:`FuzzCase` written
by the shrinker (or curated by hand).  Each one is replayed through the
full differential matrix on every test run, so a once-found bug cannot
silently come back.
"""

from pathlib import Path

import pytest

from repro.oracle import FuzzCase, check_fuzz_case

REGRESSIONS_DIR = Path(__file__).parent / "regressions"
REGRESSION_FILES = sorted(REGRESSIONS_DIR.glob("*.json"))


def test_corpus_is_populated():
    assert len(REGRESSION_FILES) >= 10


@pytest.mark.parametrize(
    "path", REGRESSION_FILES, ids=lambda path: path.stem
)
def test_regression_case_has_no_mismatches(path):
    case = FuzzCase.from_json(path.read_text())
    mismatches = check_fuzz_case(case)
    assert mismatches == [], "; ".join(
        f"{m.config}: {m.kind}: {m.detail}" for m in mismatches
    )


@pytest.mark.parametrize(
    "path", REGRESSION_FILES, ids=lambda path: path.stem
)
def test_regression_case_roundtrips(path):
    case = FuzzCase.from_json(path.read_text())
    assert FuzzCase.from_json(case.to_json()).to_json() == case.to_json()
