"""The seeded random layout/query generator."""

import random

from repro.datalake import SemanticDataLake
from repro.oracle import (
    FuzzCase,
    LakeLayout,
    build_lake,
    generate_graphs,
    random_case,
    random_layout,
    random_query,
)
from repro.sparql import parse_query


class TestDeterminism:
    def test_same_seed_same_case(self):
        for index in range(10):
            assert random_case(5, index).to_json() == random_case(5, index).to_json()

    def test_different_indexes_differ(self):
        texts = {random_case(5, index).to_json() for index in range(10)}
        assert len(texts) > 1

    def test_data_independent_of_query_randomness(self):
        layout = LakeLayout(data_seed=9)
        first = generate_graphs(layout)
        second = generate_graphs(layout)
        assert {name: set(graph) for name, graph in first.items()} == {
            name: set(graph) for name, graph in second.items()
        }


class TestGeneratedQueries:
    def test_generated_queries_parse(self):
        for index in range(50):
            case = random_case(123, index)
            query = parse_query(case.sparql())
            assert query.where is not None

    def test_coverage_of_sparql_features(self):
        # Across a campaign the generator must exercise the whole supported
        # subset: OPTIONAL, UNION, DISTINCT, ORDER BY, LIMIT and filters.
        seen = set()
        for index in range(200):
            spec = random_case(77, index).query
            if spec.optional:
                seen.add("optional")
            if spec.union:
                seen.add("union")
            if spec.distinct:
                seen.add("distinct")
            if spec.order_by:
                seen.add("order")
            if spec.limit is not None:
                seen.add("limit")
            if spec.filters or spec.optional_filters:
                seen.add("filter")
            if len(spec.stars) >= 2:
                seen.add("multi-star")
        assert seen == {"optional", "union", "distinct", "order", "limit", "filter", "multi-star"}

    def test_layout_coverage(self):
        rng = random.Random(1)
        layouts = [random_layout(rng) for __ in range(100)]
        assert any(layout.kinds["bio"] == "rdf" for layout in layouts)
        assert any(layout.kinds["bio"] == "rdb" for layout in layouts)
        assert any(layout.replicas for layout in layouts)
        assert any(layout.multivalued_links for layout in layouts)
        assert any(not layout.indexes for layout in layouts)


class TestLakeBuilding:
    def test_build_lake_respects_kinds_and_replicas(self):
        layout = LakeLayout(
            data_seed=3,
            kinds={"bio": "rdf", "probes": "rdb"},
            replicas={"probes": "rdf"},
            indexes=[["probes", "probeset", "symbol"]],
        )
        lake = build_lake(layout)
        assert isinstance(lake, SemanticDataLake)
        assert lake.source_ids == ["bio", "probes", "probes_replica"]
        assert lake.source("bio").kind == "rdf"
        assert lake.source("probes").kind == "rdb"
        assert lake.source("probes_replica").kind == "rdf"
        assert lake.physical_catalog.is_indexed("probes", "probeset", "symbol")

    def test_invalid_index_targets_are_skipped(self):
        # A multivalued link moves the column into a satellite table; the
        # stale index candidate must be skipped, not crash lake building.
        layout = LakeLayout(
            data_seed=4,
            multivalued_links=True,
            n_genes=12,
            indexes=[["bio", "gene", "associateddisease"]],
        )
        lake = build_lake(layout)
        assert "bio" in lake.source_ids


class TestJsonRoundTrip:
    def test_case_roundtrips_through_json(self):
        for index in range(20):
            case = random_case(9, index)
            rebuilt = FuzzCase.from_json(case.to_json())
            assert rebuilt.to_json() == case.to_json()
            assert rebuilt.sparql() == case.sparql()
