"""The naive reference evaluator and the reverse materializer."""

from repro.benchmark import answer_set
from repro.core.engine import FederatedEngine
from repro.core.policy import PlanPolicy
from repro.datalake import SemanticDataLake
from repro.mapping import materialize_source, normalize_graph
from repro.oracle import ReferenceEvaluator, materialize_lake, reference_answers
from repro.rdf import Triple

from ..conftest import TINY_AFFYMETRIX, TINY_DISEASOME, TINY_QUERY, make_tiny_graph


class TestReverseMaterialization:
    def test_normalize_then_materialize_roundtrips(self):
        graph = make_tiny_graph(TINY_DISEASOME, "diseasome")
        database, mapping, __ = normalize_graph("diseasome", graph)
        rebuilt = set(materialize_source(database, mapping))
        assert rebuilt == set(graph)

    def test_roundtrip_with_multivalued_predicate(self):
        text = TINY_DISEASOME + (
            "<http://ex/diseasome/Gene/10> <http://ex/vocab#associatedDisease> "
            "<http://ex/diseasome/Disease/2> .\n"
        )
        graph = make_tiny_graph(text, "diseasome")
        database, mapping, __ = normalize_graph("diseasome", graph)
        # The double-valued associatedDisease must land in a satellite table
        # and still come back as two triples.
        rebuilt = set(materialize_source(database, mapping))
        assert rebuilt == set(graph)

    def test_materialize_lake_unions_members_and_dedupes_replicas(self):
        graph = make_tiny_graph(TINY_DISEASOME, "diseasome")
        lake = SemanticDataLake("dup")
        lake.add_graph_as_relational("diseasome", graph)
        lake.add_rdf_source("diseasome_replica", graph)
        materialized = materialize_lake(lake)
        assert set(materialized) == set(graph)


class TestReferenceEvaluator:
    def test_matches_engine_answers_on_tiny_lake(self, tiny_lake):
        engine = FederatedEngine(tiny_lake, policy=PlanPolicy.physical_design_aware())
        engine_answers, __ = engine.run(TINY_QUERY, seed=1)
        oracle_answers = reference_answers(tiny_lake, TINY_QUERY)
        assert answer_set(engine_answers) == answer_set(oracle_answers)
        assert len(oracle_answers) == len(engine_answers)

    def test_graph_cached_until_catalog_version_changes(self, tiny_lake):
        evaluator = ReferenceEvaluator(tiny_lake)
        first = evaluator.graph
        assert evaluator.graph is first
        # Any physical-design change bumps the version vector and
        # invalidates the materialized graph.
        tiny_lake.create_index("diseasome", "gene", ["genesymbol"])
        assert evaluator.graph is not first

    def test_answers_unlimited_strips_slicing(self):
        graph = make_tiny_graph(TINY_AFFYMETRIX, "affymetrix")
        lake = SemanticDataLake("probe-only")
        lake.add_graph_as_relational("affymetrix", graph)
        query = """
        PREFIX v: <http://ex/vocab#>
        SELECT ?p WHERE { ?p a v:Probeset . } LIMIT 1
        """
        evaluator = ReferenceEvaluator(lake)
        assert len(evaluator.answers(query)) == 1
        assert len(evaluator.answers_unlimited(query)) == 3

    def test_oracle_ignores_plans_entirely(self, tiny_lake):
        # The evaluator must answer queries the planner also handles, from
        # nothing but the materialized graph — no sources consulted.
        evaluator = ReferenceEvaluator(tiny_lake)
        answers = evaluator.answers(TINY_QUERY)
        assert answers  # the tiny lake has gene-disease pairs
        assert all(isinstance(solution, dict) for solution in answers)
        assert {"g", "sym", "dn"} <= set(answers[0])

    def test_materialized_triples_are_ground(self, tiny_lake):
        for triple in materialize_lake(tiny_lake):
            assert isinstance(triple, Triple)
