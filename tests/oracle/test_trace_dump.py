"""Tests for the fuzz harness's mismatch trace dumps."""

import json

from repro.obs import validate_chrome_trace
from repro.oracle import Mismatch, default_configs, dump_failure_traces, random_case


class TestDumpFailureTraces:
    def test_writes_one_validated_trace_per_mismatching_config(self, tmp_path):
        case = random_case(7, 0)
        configs = default_configs(runtimes=("sequential", "event"))
        # Fabricate mismatches against two configs (with the differential
        # harness's #cold/#warm run suffix on one of them).
        mismatches = [
            Mismatch(f"{configs[0].name}#cold", "answers", "synthetic"),
            Mismatch(f"{configs[0].name}#warm", "count", "synthetic"),
            Mismatch(configs[1].name, "answers", "synthetic"),
        ]
        written = dump_failure_traces(case, mismatches, configs, tmp_path, "case0")
        assert len(written) == 2  # deduplicated across run suffixes
        for path in written:
            trace = json.loads(open(path, encoding="utf-8").read())
            assert validate_chrome_trace(trace) == []

    def test_unknown_config_names_are_skipped(self, tmp_path):
        case = random_case(7, 0)
        configs = default_configs()
        mismatches = [Mismatch("no/such/config", "answers", "synthetic")]
        assert dump_failure_traces(case, mismatches, configs, tmp_path, "x") == []

    def test_run_fuzz_accepts_trace_dir_without_failures(self, tmp_path):
        from repro.oracle import run_fuzz

        report = run_fuzz(
            3, 2, regressions_dir=None, trace_dir=tmp_path, shrink=False
        )
        assert report.ok
        assert list(tmp_path.iterdir()) == []  # nothing written on success
