"""Ablation — ANAPSID join operators: symmetric hash vs dependent join.

Ontario inherits ANAPSID's physical operators.  This ablation compares the
non-blocking symmetric hash join (agjoin) with the dependent (bound) join,
which pushes the outer side's bindings into the inner relational service as
an IN restriction (answered via the inner index).

Expected shape: the dependent join wins when the outer side is selective
(few distinct join values -> tiny restricted transfers); with a
non-selective outer whose values repeat across blocks it transfers *more*
(duplicate fetches) and the symmetric hash join wins.
"""

import pytest

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.benchmark import format_table, same_answers
from repro.core import JoinStrategy
from repro.datasets.queries import PREFIXES

from .conftest import emit

#: Outer: genes of a single disease (selective) joined to the large TCGA
#: expression table; the filter placement is engine-side for both policies
#: so the join operator is the only variable.
SELECTIVE_OUTER_QUERY = PREFIXES + """
SELECT ?gene ?expr ?value WHERE {
  ?gene a diseasome:Gene ;
        diseasome:geneSymbol ?symbol ;
        diseasome:associatedDisease <http://lslod.repro/diseasome/resource/Disease/5> .
  ?expr a tcga:GeneExpression ;
        tcga:geneSymbol ?symbol ;
        tcga:expressionValue ?value .
}
"""

#: Outer: every gene (non-selective, symbols repeat across blocks).
BROAD_OUTER_QUERY = PREFIXES + """
SELECT ?gene ?expr ?value WHERE {
  ?gene a diseasome:Gene ;
        diseasome:geneSymbol ?symbol .
  ?expr a tcga:GeneExpression ;
        tcga:geneSymbol ?symbol ;
        tcga:expressionValue ?value .
}
"""

SYMMETRIC = PlanPolicy.physical_design_unaware()
DEPENDENT = PlanPolicy.physical_design_unaware().with_(
    name="Dependent-Join", join_strategy=JoinStrategy.DEPENDENT
)


def _run(lake, query, policy, network):
    engine = FederatedEngine(lake, policy=policy, network=network)
    return engine.run(query, seed=7)


def test_join_operator_ablation(benchmark, lake, results_dir):
    network = NetworkSetting.gamma2()
    rows = []
    outcomes = {}
    for label, query in (
        ("selective outer", SELECTIVE_OUTER_QUERY),
        ("broad outer", BROAD_OUTER_QUERY),
    ):
        shj_answers, shj_stats = _run(lake, query, SYMMETRIC, network)
        dep_answers, dep_stats = _run(lake, query, DEPENDENT, network)
        assert same_answers(shj_answers, dep_answers), label
        winner = "dependent" if dep_stats.execution_time < shj_stats.execution_time else "symmetric"
        outcomes[label] = winner
        rows.append(
            [
                label,
                len(shj_answers),
                f"{shj_stats.execution_time:.4f}",
                f"{dep_stats.execution_time:.4f}",
                shj_stats.messages,
                dep_stats.messages,
                winner,
            ]
        )

    table = format_table(
        [
            "Workload",
            "Answers",
            "SymmetricHash (s)",
            "Dependent (s)",
            "SHJ msgs",
            "Dep msgs",
            "Winner",
        ],
        rows,
    )
    emit(results_dir, "ablation_join_operators.txt", table)

    assert outcomes["selective outer"] == "dependent"
    assert outcomes["broad outer"] == "symmetric"

    benchmark(lambda: _run(lake, SELECTIVE_OUTER_QUERY, DEPENDENT, network))


def test_dependent_join_plan_shape(lake):
    engine = FederatedEngine(lake, policy=DEPENDENT)
    explained = engine.explain(SELECTIVE_OUTER_QUERY)
    assert "DependentJoin" in explained


def test_block_size_sweep(benchmark, lake, results_dir):
    """Smaller blocks issue more requests; bigger blocks batch better."""
    network = NetworkSetting.gamma2()
    rows = []
    requests_seen = []
    for block_size in (5, 20, 50, 200):
        policy = DEPENDENT.with_(dependent_block_size=block_size)
        engine = FederatedEngine(lake, policy=policy, network=network)
        __, stats = engine.run(SELECTIVE_OUTER_QUERY, seed=7)
        requests = sum(s.requests for s in stats.source_stats.values())
        requests_seen.append(requests)
        rows.append([block_size, f"{stats.execution_time:.4f}", stats.messages, requests])
    emit(
        results_dir,
        "ablation_dependent_block_size.txt",
        format_table(["Block size", "Time (s)", "Messages", "Requests"], rows),
    )
    assert requests_seen == sorted(requests_seen, reverse=True)

    benchmark(
        lambda: FederatedEngine(
            lake, policy=DEPENDENT.with_(dependent_block_size=20), network=network
        ).run(SELECTIVE_OUTER_QUERY, seed=7)
    )
