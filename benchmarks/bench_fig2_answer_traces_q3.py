"""Figure 2 — answer traces for Q3.

The paper's Figure 2 shows the generation of answers over time for Q3 under
no delay and the three gamma-distributed delays, for (a) the
physical-design-unaware QEP, (b) the aware QEP, and (c) both together.
The headline findings: the aware QEP dominates at every network setting and
slow networks hurt the unaware QEP more.
"""

import pytest

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.benchmark import TracePlot, dief_at_t, run_query, Configuration
from repro.datasets import BENCHMARK_QUERIES

from .conftest import emit

Q3 = BENCHMARK_QUERIES["Q3"]
POLICIES = (PlanPolicy.physical_design_unaware(), PlanPolicy.physical_design_aware())
NETWORKS = NetworkSetting.all_settings()


def _collect(lake):
    results = {}
    for policy in POLICIES:
        for network in NETWORKS:
            results[(policy.name, network.name)] = run_query(
                lake, Q3, Configuration(policy, network), seed=7
            )
    return results


def test_fig2_answer_traces_q3(benchmark, lake, results_dir):
    results = _collect(lake)

    sections = []
    # (a) unaware and (b) aware: one plot per policy across the four delays.
    for policy in POLICIES:
        plot = TracePlot(f"Q3 answer traces — {policy.name} (all network settings)")
        for network in NETWORKS:
            result = results[(policy.name, network.name)]
            plot.add(network.name, result.trace)
        sections.append(plot.render_ascii(width=76, height=16))
    # (c) both QEPs compared at the slowest network.
    both = TracePlot("Q3 answer traces — both QEP types (Gamma 3)")
    for policy in POLICIES:
        both.add(policy.name, results[(policy.name, "Gamma 3")].trace)
    sections.append(both.render_ascii(width=76, height=16))

    csv_lines = ["policy,network,time,answers"]
    for (policy_name, network_name), result in results.items():
        for when, count in result.trace:
            csv_lines.append(f"{policy_name},{network_name},{when:.6f},{count}")

    emit(results_dir, "fig2_answer_traces_q3.txt", "\n\n".join(sections))
    (results_dir / "fig2_answer_traces_q3.csv").write_text("\n".join(csv_lines) + "\n")

    # Findings (shape assertions):
    for network in NETWORKS:
        aware = results[("Physical-Design-Aware", network.name)]
        unaware = results[("Physical-Design-Unaware", network.name)]
        assert aware.answers == unaware.answers, "answer completeness must match"
        assert aware.execution_time < unaware.execution_time, network.name
        # the aware plan is also more diefficient (produces answers earlier)
        horizon = min(aware.execution_time, unaware.execution_time)
        assert dief_at_t(aware.trace, horizon) >= dief_at_t(unaware.trace, horizon)

    unaware_penalty = (
        results[("Physical-Design-Unaware", "Gamma 3")].execution_time
        - results[("Physical-Design-Unaware", "No Delay")].execution_time
    )
    aware_penalty = (
        results[("Physical-Design-Aware", "Gamma 3")].execution_time
        - results[("Physical-Design-Aware", "No Delay")].execution_time
    )
    assert unaware_penalty > aware_penalty, "delays must hurt the unaware QEP more"

    benchmark.extra_info["answers"] = results[("Physical-Design-Aware", "No Delay")].answers
    benchmark(
        lambda: run_query(
            lake, Q3, Configuration(POLICIES[1], NETWORKS[3]), seed=7
        )
    )
