"""Shared benchmark fixtures.

The benchmarks reproduce the paper's figures/tables on a deterministic
synthetic lake.  Results (tables, traces) are printed to stdout (run with
``-s`` to watch) and written under ``benchmarks/results/``.

Environment knobs:
    REPRO_BENCH_SCALE   data-set scale factor (default 0.25)
    REPRO_BENCH_SEED    generation seed (default 42)
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.datasets import build_lslod_lake

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))
RESULTS_DIR = Path(__file__).parent / "results"

_LAKE = None


@pytest.fixture(scope="session")
def lake():
    """The benchmark lake, built once per session (read-only)."""
    global _LAKE
    if _LAKE is None:
        _LAKE = build_lslod_lake(scale=SCALE, seed=SEED)
    return _LAKE


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a result artifact and persist it under benchmarks/results/."""
    print()
    print(f"===== {name} =====")
    print(text)
    (results_dir / name).write_text(text + "\n")
