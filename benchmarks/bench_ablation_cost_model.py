"""Ablation — different relational engine implementations (paper §5).

The paper's future work: *"we will investigate the performance of different
implementations of relational databases in order to gain a deeper
understanding of why filter expressions seem to perform better at query
engine level in most cases."*

The virtual cost model makes that investigation a parameter sweep: the
per-row cost of evaluating string pattern filters inside the RDBMS
(``rdb_string_filter_eval``) is what differs between implementations.  This
bench replays Q1's filter-placement decision under several hypothetical
engines, from one with very cheap pattern matching to one much slower than
the default calibration, and reports where the engine-vs-source crossover
sits for each.
"""

import pytest

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.benchmark import format_table
from repro.datasets import BENCHMARK_QUERIES
from repro.network.costmodel import DEFAULT_COST_MODEL

from .conftest import emit

#: Hypothetical RDBMS implementations: per-row LIKE-scan cost in seconds.
ENGINE_PROFILES = {
    "fast-like-engine": 2.0e-6,   # pattern matching nearly free
    "default (MySQL-ish)": DEFAULT_COST_MODEL.rdb_string_filter_eval,
    "slow-like-engine": 120.0e-6,  # interpreted pattern matching
}

ENGINE_SIDE = PlanPolicy.physical_design_unaware()
SOURCE_SIDE = PlanPolicy.filters_at_source()


def test_cost_model_ablation(benchmark, lake, results_dir):
    query = BENCHMARK_QUERIES["Q1"]
    networks = (NetworkSetting.no_delay(), NetworkSetting.gamma1(), NetworkSetting.gamma2())
    rows = []
    winners = {}
    for profile_name, like_cost in ENGINE_PROFILES.items():
        cost_model = DEFAULT_COST_MODEL.with_overrides(rdb_string_filter_eval=like_cost)
        for network in networks:
            engine_run = FederatedEngine(
                lake, policy=ENGINE_SIDE, network=network, cost_model=cost_model
            ).run(query.text, seed=7)[1]
            source_run = FederatedEngine(
                lake, policy=SOURCE_SIDE, network=network, cost_model=cost_model
            ).run(query.text, seed=7)[1]
            winner = (
                "engine" if engine_run.execution_time < source_run.execution_time else "source"
            )
            winners[(profile_name, network.name)] = winner
            rows.append(
                [
                    profile_name,
                    network.name,
                    f"{engine_run.execution_time:.4f}",
                    f"{source_run.execution_time:.4f}",
                    winner,
                ]
            )

    table = format_table(
        ["RDB implementation", "Network", "Engine-side (s)", "Source-side (s)", "Winner"],
        rows,
    )
    emit(results_dir, "ablation_cost_model.txt", table)

    # A fast-LIKE RDBMS never loses by filtering at the source: Heuristic 2
    # would simply be wrong for it, as the paper suspects.
    assert winners[("fast-like-engine", "Gamma 1")] == "source"
    assert winners[("fast-like-engine", "Gamma 2")] == "source"
    # The default calibration reproduces the paper's observation.
    assert winners[("default (MySQL-ish)", "No Delay")] == "engine"
    assert winners[("default (MySQL-ish)", "Gamma 2")] == "source"
    # A slow-LIKE RDBMS pushes the crossover further out.
    assert winners[("slow-like-engine", "No Delay")] == "engine"
    assert winners[("slow-like-engine", "Gamma 1")] == "engine"

    benchmark(
        lambda: FederatedEngine(
            lake, policy=SOURCE_SIDE, network=NetworkSetting.no_delay()
        ).run(query.text, seed=7)
    )
