"""Critical-path attribution regression gate.

Measures the full attribution grid — Q1–Q5 x four networks x the three
runtimes, aware policy — on the same pinned lake as the plan-quality gate
(scale 0.1, data seed 42, run seed 7, so cell keys line up across the
committed baselines) and asserts the attribution contracts:

* **exactness** — every cell's per-blame-class durations, summed in
  Fraction arithmetic, equal the cell's end-to-end virtual time
  *identically*;
* **structure** — the structural fingerprint (operator nodes + pull
  edges, no times) agrees across the three runtimes of every
  query x network pair;
* **determinism** — a re-measured sample of cells is bit-identical;
* **no drift** — every cell matches the committed ``BENCH_critpath.json``
  at the exact-fraction level (event and thread are pinned as separate
  cells: their float timelines differ at ulp scale by construction).

On first run (no committed baseline) the file is written and the gate
passes with a notice.  Artifacts: the grid aggregate and per-cell table
under ``benchmarks/results/``.
"""

import json
import time
from fractions import Fraction
from pathlib import Path

from repro.benchmark.critpath import (
    DEFAULT_CRITPATH_NETWORKS,
    DEFAULT_CRITPATH_POLICY,
    DEFAULT_CRITPATH_QUERIES,
    DEFAULT_CRITPATH_RUNTIMES,
    build_critpath_baseline,
    compare_critpath_baselines,
    measure_critpath_cell,
)
from repro.benchmark.baseline import NETWORK_CHOICES, POLICY_CHOICES, cell_key
from repro.datasets import BENCHMARK_QUERIES, build_lslod_lake
from repro.obs import BLAME_CLASSES

from .conftest import emit

#: Pinned like BENCH_plan_quality.json so cell keys cross-reference.
SCALE = 0.1
DATA_SEED = 42
RUN_SEED = 7
WALL_BUDGET_SECONDS = 240.0
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_critpath.json"


def exact_class_sum(cell: dict) -> Fraction:
    total = Fraction(0)
    for name in BLAME_CLASSES:
        numerator, denominator = cell["exact_classes"][name].split("/")
        total += Fraction(int(numerator), int(denominator))
    return total


def test_critpath_gate_full_grid(results_dir):
    wall_start = time.perf_counter()
    lake = build_lslod_lake(scale=SCALE, seed=DATA_SEED)
    query_texts = {
        name: BENCHMARK_QUERIES[name].text for name in DEFAULT_CRITPATH_QUERIES
    }

    fresh = build_critpath_baseline(
        lake, query_texts, scale=SCALE, data_seed=DATA_SEED, run_seed=RUN_SEED
    )
    cells = fresh["cells"]
    assert len(cells) == (
        len(DEFAULT_CRITPATH_QUERIES)
        * len(DEFAULT_CRITPATH_NETWORKS)
        * len(DEFAULT_CRITPATH_RUNTIMES)
    )

    # Exactness: Fraction-summed blame classes equal the virtual total in
    # every single cell — no epsilon anywhere.
    for key, cell in cells.items():
        assert cell["exact"], f"{key}: attribution marked inexact"
        assert exact_class_sum(cell) == Fraction(cell["total"]), (
            f"{key}: blame classes do not sum to the end-to-end virtual time"
        )

    # Structure: the plan-shape fingerprint is runtime-invariant.
    for query_name in DEFAULT_CRITPATH_QUERIES:
        for network_name in DEFAULT_CRITPATH_NETWORKS:
            fingerprints = {
                cells[
                    cell_key(
                        query_name, DEFAULT_CRITPATH_POLICY, network_name, runtime
                    )
                ]["structural_fingerprint"]
                for runtime in DEFAULT_CRITPATH_RUNTIMES
            }
            assert len(fingerprints) == 1, (
                f"{query_name}/{network_name}: structural fingerprint differs "
                "across runtimes"
            )

    # Determinism: re-measure one cell per runtime, bit-identical.
    policy = POLICY_CHOICES[DEFAULT_CRITPATH_POLICY]()
    for runtime in DEFAULT_CRITPATH_RUNTIMES:
        key = cell_key("Q3", DEFAULT_CRITPATH_POLICY, "gamma3", runtime)
        again = measure_critpath_cell(
            lake,
            query_texts["Q3"],
            policy,
            NETWORK_CHOICES["gamma3"](),
            runtime,
            RUN_SEED,
        )
        assert again == cells[key], f"{key}: re-measured cell diverged"

    # The gate: exact-fraction comparison against the committed baseline.
    if BENCH_JSON.exists():
        baseline = json.loads(BENCH_JSON.read_text())
        diffs = compare_critpath_baselines(baseline, fresh)
        assert not diffs, (
            "attribution drifted from committed BENCH_critpath.json; if the "
            "change is intended, regenerate with PYTHONPATH=src python -m "
            "pytest -q -s benchmarks/bench_critpath.py after deleting the "
            "file:\n" + "\n".join(diffs[:20])
        )
        gate_note = "gate: matched committed baseline"
    else:
        BENCH_JSON.write_text(json.dumps(fresh, indent=2, sort_keys=True) + "\n")
        gate_note = f"gate: no baseline found, wrote {BENCH_JSON.name}"

    # Artifacts: grid totals per class plus the per-cell table.
    class_totals = {name: 0.0 for name in BLAME_CLASSES}
    grand_total = 0.0
    table = [
        f"{'cell':<30} {'total':>12} {'engine':>10} {'network':>10} "
        f"{'cache':>10} {'dominant':>20}"
    ]
    for key in sorted(cells):
        cell = cells[key]
        grand_total += cell["total"]
        for name in BLAME_CLASSES:
            class_totals[name] += cell["classes"][name]
        dominant = max(cell["classes"], key=lambda n: (cell["classes"][n], n))
        table.append(
            f"{key:<30} {cell['total']:>12.6f} "
            f"{cell['classes']['engine_work']:>10.6f} "
            f"{cell['classes']['network_delay']:>10.6f} "
            f"{cell['classes']['cache_miss_penalty']:>10.6f} {dominant:>20}"
        )
    emit(results_dir, "critpath_grid.txt", "\n".join(table))

    shares = {
        name: (class_totals[name] / grand_total if grand_total else 0.0)
        for name in BLAME_CLASSES
    }
    lines = [
        f"cells                {len(cells)} "
        f"({len(DEFAULT_CRITPATH_QUERIES)} queries x "
        f"{len(DEFAULT_CRITPATH_NETWORKS)} networks x "
        f"{len(DEFAULT_CRITPATH_RUNTIMES)} runtimes, "
        f"{DEFAULT_CRITPATH_POLICY} policy)",
        f"grid virtual total   {grand_total:.6f}s",
        "blame shares         "
        + ", ".join(f"{name}={shares[name]:.1%}" for name in BLAME_CLASSES),
        "exactness            every cell Fraction-exact",
        f"{gate_note}",
        "wrote                critpath_grid.txt",
    ]
    emit(results_dir, "critpath_gate.txt", "\n".join(lines))

    elapsed = time.perf_counter() - wall_start
    assert elapsed < WALL_BUDGET_SECONDS, (
        f"critpath gate took {elapsed:.1f}s (budget {WALL_BUDGET_SECONDS:.0f}s)"
    )
