"""Telemetry regression gate: the observability plane must not drift.

Runs the pinned 1000-client load test (the exact workload of
``bench_service_load``) with telemetry on, and asserts the telemetry
plane's three contracts:

* **zero-cost** — a telemetry-off run of the same seed produces a
  bit-identical report fingerprint (the accountant and journal never
  touch the schedule);
* **determinism** — a second telemetry-on run reproduces the journal's
  SHA-256 fingerprint exactly;
* **no drift** — the journal fingerprint and the SLO snapshot match the
  committed ``BENCH_telemetry.json`` bit-for-bit (the workload is
  virtual-time, so the gate is machine-independent).

On first run (no committed baseline) the file is written and the gate
passes with a notice.  Artifacts: the full event journal as canonical
JSONL plus the rendered SLO report under ``benchmarks/results/``.
"""

import json
import time
from pathlib import Path

from repro.datasets import build_lslod_lake
from repro.obs import render_exposition, render_slo_report, validate_exposition
from repro.service import STATS_VERSION, ServiceConfig, TenantConfig, WorkloadSpec, run_load

from .conftest import emit

#: Pinned workload — identical to bench_service_load so the two committed
#: baselines describe the same schedule.
SCALE = 0.1
DATA_SEED = 42
LOAD_SEED = 42
CLIENTS = 1000
WALL_BUDGET_SECONDS = 240.0
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"

CONFIG = ServiceConfig(
    workers=4,
    global_concurrency=8,
    timeout=20.0,
    network="gamma2",
    default_tenant=TenantConfig(name="default", max_concurrency=3, queue_depth=24),
)

SPEC = WorkloadSpec(
    clients=CLIENTS,
    requests_per_client=1,
    tenants=4,
    tenant_skew=1.2,
    hot_fraction=0.8,
    cold_variants=20,
    mean_interarrival=0.1,
    mean_think=2.0,
)


def test_telemetry_gate_thousand_clients(results_dir):
    wall_start = time.perf_counter()
    lake = build_lslod_lake(scale=SCALE, seed=DATA_SEED)

    report = run_load(lake, CONFIG, SPEC, seed=LOAD_SEED)
    assert report.journal is not None and report.slo is not None
    fingerprint = report.journal.fingerprint()
    counts = report.journal.counts_by_kind()

    # Zero-cost: telemetry off, same seed, same report fingerprint.
    dark = run_load(lake, CONFIG, SPEC, seed=LOAD_SEED, telemetry=False)
    assert dark.journal is None
    assert dark.fingerprint() == report.fingerprint(), (
        "telemetry perturbed the run"
    )
    assert dark.cache_stats == report.cache_stats

    # Determinism: a second telemetry-on run reproduces the journal bit
    # for bit.
    again = run_load(lake, CONFIG, SPEC, seed=LOAD_SEED)
    assert again.journal.fingerprint() == fingerprint, (
        "same-seed journals diverged"
    )
    assert again.slo == report.slo

    # The SLO snapshot renders to parser-clean Prometheus exposition.
    exposition = render_exposition({"stats_version": STATS_VERSION, "slo": report.slo})
    assert validate_exposition(exposition) > 10

    document = {
        "clients": CLIENTS,
        "load_seed": LOAD_SEED,
        "data_seed": DATA_SEED,
        "scale": SCALE,
        "journal_fingerprint": fingerprint,
        "journal_events": counts,
        "slo": report.slo,
    }

    # The gate: compare against the committed baseline (exact — the
    # schedule is virtual-time, identical on every machine).
    if BENCH_JSON.exists():
        baseline = json.loads(BENCH_JSON.read_text())
        assert baseline["journal_fingerprint"] == fingerprint, (
            "journal fingerprint drifted from committed BENCH_telemetry.json "
            f"({baseline['journal_fingerprint']} -> {fingerprint}); if the "
            "change is intended, regenerate the baseline with "
            "PYTHONPATH=src python -m pytest -q -s benchmarks/bench_telemetry.py"
        )
        assert baseline["journal_events"] == counts, "event mix drifted"
        assert baseline["slo"] == report.slo, "SLO snapshot drifted"
        gate_note = "gate: matched committed baseline"
    else:
        BENCH_JSON.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        gate_note = f"gate: no baseline found, wrote {BENCH_JSON.name}"

    journal_path = results_dir / "telemetry_journal.jsonl"
    report.journal.write_jsonl(str(journal_path), seal=True)
    slo_text = render_slo_report(report.slo)
    emit(results_dir, "telemetry_slo_report.txt", slo_text)

    global_slo = report.slo["global"]
    lines = [
        f"clients              {CLIENTS} (seed {LOAD_SEED})",
        f"journal events       {sum(counts.values())} "
        f"({', '.join(f'{k}={v}' for k, v in sorted(counts.items()))})",
        f"journal fingerprint  {fingerprint}",
        f"submitted/completed  {global_slo['submitted']}/{global_slo['completed']}",
        f"shed/timeout/error   {global_slo['shed']}/{global_slo['timed_out']}"
        f"/{global_slo['errors']}",
        f"e2e p50/p90/p99      {global_slo['end_to_end']['p50']:.4f}/"
        f"{global_slo['end_to_end']['p90']:.4f}/"
        f"{global_slo['end_to_end']['p99']:.4f}s",
        f"telemetry-off check  fingerprint-identical",
        f"{gate_note}",
        f"wrote                {journal_path.name}, telemetry_slo_report.txt",
    ]
    emit(results_dir, "telemetry_gate.txt", "\n".join(lines))

    elapsed = time.perf_counter() - wall_start
    assert elapsed < WALL_BUDGET_SECONDS, (
        f"telemetry gate took {elapsed:.1f}s, budget {WALL_BUDGET_SECONDS:.0f}s"
    )
