"""Cache effectiveness: cold vs warm wall-clock on a repeated workload.

The north-star scenario is heavy repeated traffic: the same analytical
queries arriving again and again.  This bench runs the paper's five LSLOD
queries as one workload, once cold (empty caches) and then repeatedly warm
(plan + sub-result caches populated), and records real wall-clock for each
pass.  The guardrails assert the two promises of the caching subsystem:

* the warm pass is at least 3x faster in wall-clock terms, and
* virtual execution times and answer counts are *identical* to an engine
  with caching disabled — caching saves machine time, never simulated time.

Results land in ``benchmarks/results/cache_effectiveness.txt`` and, as
machine-readable JSON, in ``BENCH_cache.json`` at the repository root.
"""

import json
import time
from pathlib import Path

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.benchmark import same_answers
from repro.datasets import BENCHMARK_QUERIES, GRID_QUERIES

from .conftest import SCALE, SEED, emit

RUN_SEED = 7
WARM_PASSES = 5
NETWORK = NetworkSetting.gamma1()
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_cache.json"


def run_workload(engine, queries):
    """One pass over the workload; returns (wall seconds, per-query stats)."""
    outcomes = []
    started = time.perf_counter()
    for query in queries:
        answers, stats = engine.run(query.text, seed=RUN_SEED)
        outcomes.append((answers, stats))
    return time.perf_counter() - started, outcomes


def test_cache_effectiveness(lake, results_dir):
    queries = [BENCHMARK_QUERIES[name] for name in GRID_QUERIES]
    cached = FederatedEngine(
        lake, policy=PlanPolicy.physical_design_aware(), network=NETWORK
    )
    uncached = FederatedEngine(
        lake,
        policy=PlanPolicy.physical_design_aware(),
        network=NETWORK,
        enable_plan_cache=False,
        enable_subresult_cache=False,
    )

    baseline_wall, baseline = run_workload(uncached, queries)
    cold_wall, cold = run_workload(cached, queries)
    warm_walls = []
    warm = cold
    for __ in range(WARM_PASSES):
        wall, warm = run_workload(cached, queries)
        warm_walls.append(wall)
    warm_wall = min(warm_walls)  # best warm pass: steady-state service rate
    speedup = cold_wall / warm_wall

    # -- semantics guard: caching must not change a single observable -------
    for (answers_base, stats_base), (answers_warm, stats_warm) in zip(baseline, warm):
        assert same_answers(answers_base, answers_warm)
        assert stats_base.execution_time == stats_warm.execution_time
        assert stats_base.trace == stats_warm.trace
        assert stats_base.messages == stats_warm.messages
    for __, stats_warm in warm:
        assert stats_warm.plan_cache_hit is True
        assert stats_warm.subresult_cache_misses == 0

    # -- the headline number ------------------------------------------------
    assert speedup >= 3.0, (
        f"warm pass only {speedup:.2f}x faster than cold (cold {cold_wall:.4f}s, "
        f"warm {warm_wall:.4f}s)"
    )

    cache_stats = {
        name: stats.as_dict() for name, stats in cached.cache_stats().items()
    }
    lines = [
        f"Cache effectiveness — repeated {len(queries)}-query LSLOD workload",
        f"scale={SCALE} data_seed={SEED} run_seed={RUN_SEED} network={NETWORK.name}",
        "",
        f"{'pass':<22}{'wall-clock [s]':>16}",
        f"{'uncached engine':<22}{baseline_wall:>16.4f}",
        f"{'cold (caches empty)':<22}{cold_wall:>16.4f}",
        f"{'warm (best of ' + str(WARM_PASSES) + ')':<22}{warm_wall:>16.4f}",
        "",
        f"warm speedup over cold: {speedup:.1f}x",
        "",
        "per-query virtual time (identical cached/uncached by construction):",
    ]
    for query, (__, stats) in zip(queries, warm):
        lines.append(
            f"  {query.name}: vt={stats.execution_time:.4f}s answers={stats.answers}"
        )
    lines.append("")
    lines.append("engine cache counters after all passes:")
    lines.append(cached.caches.describe())
    emit(results_dir, "cache_effectiveness.txt", "\n".join(lines))

    BENCH_JSON.write_text(
        json.dumps(
            {
                "workload": list(GRID_QUERIES),
                "scale": SCALE,
                "data_seed": SEED,
                "run_seed": RUN_SEED,
                "network": NETWORK.name,
                "warm_passes": WARM_PASSES,
                "wall_clock_seconds": {
                    "uncached": round(baseline_wall, 6),
                    "cold": round(cold_wall, 6),
                    "warm_best": round(warm_wall, 6),
                    "warm_all": [round(w, 6) for w in warm_walls],
                },
                "warm_speedup_over_cold": round(speedup, 2),
                "virtual_time_neutral": True,
                "per_query": {
                    query.name: {
                        "virtual_time": stats.execution_time,
                        "answers": stats.answers,
                    }
                    for query, (__, stats) in zip(queries, warm)
                },
                "cache_stats": cache_stats,
            },
            indent=2,
        )
        + "\n"
    )
