"""The experiment grid — execution times for all 8 configurations x Q1-Q5.

The paper: "The experiment conducts of eight different configurations in
total, i.e., both QEP types are evaluated using all four simulated network
conditions."  The full result tables live in the paper's companion GitHub
repository; this bench regenerates them for the synthetic lake.
"""

import pytest

from repro.benchmark import (
    grid_table,
    network_impact_table,
    run_grid,
    speedup_table,
    to_csv,
)
from repro.datasets import BENCHMARK_QUERIES, GRID_QUERIES

from .conftest import emit

QUERIES = [BENCHMARK_QUERIES[name] for name in GRID_QUERIES]


@pytest.fixture(scope="module")
def grid(lake):
    return run_grid(lake, QUERIES, seed=7)


def test_grid_execution_times(benchmark, lake, grid, results_dir):
    table = grid_table(grid, metric="execution_time")
    answers = grid_table(grid, metric="answers")
    messages = grid_table(grid, metric="messages")
    speedups = speedup_table(grid, "Physical-Design-Unaware", "Physical-Design-Aware")

    emit(
        results_dir,
        "grid_execution_times.txt",
        "Execution time (virtual seconds)\n"
        + table
        + "\n\nAnswers\n"
        + answers
        + "\n\nMessages transferred\n"
        + messages
        + "\n\nSpeedup of aware over unaware\n"
        + speedups,
    )
    (results_dir / "grid_execution_times.csv").write_text(to_csv(grid) + "\n")

    # Shape assertions: answers identical across configurations per query.
    for query in grid.queries():
        counts = {
            grid.lookup(query, policy, network).answers
            for policy in grid.policies()
            for network in grid.networks()
        }
        assert len(counts) == 1, f"{query}: answer counts differ across configurations"

    # The aware plans never lose on the heuristic-favourable queries at
    # delayed networks (Q2, Q3, Q5).
    for query in ("Q2", "Q3", "Q5"):
        for network in ("Gamma 1", "Gamma 2", "Gamma 3"):
            assert (
                grid.speedup(query, network, "Physical-Design-Unaware", "Physical-Design-Aware")
                > 1.0
            ), (query, network)

    benchmark.extra_info["cells"] = len(grid.results)
    benchmark(lambda: grid_table(grid))


def test_grid_network_impact(benchmark, grid, results_dir):
    """'The impact of network delays is higher in the case of
    physical-design-unaware query execution plans.'"""
    table = network_impact_table(grid)
    emit(results_dir, "grid_network_impact.txt", table)

    for query in grid.queries():
        unaware = grid.slowdown(query, "Physical-Design-Unaware", "No Delay", "Gamma 3")
        aware = grid.slowdown(query, "Physical-Design-Aware", "No Delay", "Gamma 3")
        # absolute penalty comparison is done in fig2; here slowdown factors
        # must at least be monotone with latency for both policies
        for policy in grid.policies():
            factors = [
                grid.slowdown(query, policy, "No Delay", network)
                for network in ("Gamma 1", "Gamma 2", "Gamma 3")
            ]
            assert factors == sorted(factors), (query, policy, factors)

    benchmark(lambda: network_impact_table(grid))
