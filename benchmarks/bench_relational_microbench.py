"""Microbenchmarks of the relational substrate (real wall-clock).

These measure the actual Python-level performance of the access paths whose
*virtual* cost asymmetry drives the heuristics: point lookups via B-tree vs
full scans, index nested-loop vs hash joins, and LIKE pattern scans.  They
double as a regression guard for the substrate.
"""

import pytest

from repro.relational import Column, Database, OperationMeter, SQLType

ROWS = 20_000
GROUPS = 200


@pytest.fixture(scope="module")
def database() -> Database:
    db = Database("micro")
    db.create_table(
        "item",
        [
            Column("id", SQLType.INTEGER, nullable=False),
            Column("grp", SQLType.INTEGER),
            Column("name", SQLType.TEXT),
        ],
        primary_key=("id",),
    )
    storage = db.table("item")
    for index in range(ROWS):
        storage.insert((index, index % GROUPS, f"item number {index}"))
    db.create_table(
        "grp",
        [Column("id", SQLType.INTEGER, nullable=False), Column("label", SQLType.TEXT)],
        primary_key=("id",),
    )
    grp = db.table("grp")
    for index in range(GROUPS):
        grp.insert((index, f"group {index}"))
    db.create_index("item", ["grp"])
    db.analyze()
    return db


def test_point_lookup_indexed(benchmark, database):
    result = benchmark(
        lambda: database.query("SELECT name FROM item WHERE id = 19999").fetchall()
    )
    assert result == [("item number 19999",)]


def test_point_lookup_scan(benchmark, database):
    # name is not indexed: full scan with equality filter
    result = benchmark(
        lambda: database.query(
            "SELECT id FROM item WHERE name = 'item number 19999'"
        ).fetchall()
    )
    assert result == [(19999,)]


def test_indexed_lookup_beats_scan(database):
    """The asymmetry the physical-design heuristics rely on, in real time."""
    import time

    def timed(sql: str) -> float:
        start = time.perf_counter()
        for __ in range(5):
            database.query(sql).fetchall()
        return time.perf_counter() - start

    indexed = timed("SELECT name FROM item WHERE id = 19999")
    scanned = timed("SELECT id FROM item WHERE name = 'item number 19999'")
    assert indexed * 10 < scanned


def test_index_nested_loop_join(benchmark, database):
    rows = benchmark(
        lambda: database.query(
            "SELECT i.id FROM grp g JOIN item i ON g.id = i.grp WHERE g.label = 'group 7'"
        ).fetchall()
    )
    assert len(rows) == ROWS // GROUPS


def test_hash_join_full(benchmark, database):
    rows = benchmark(
        lambda: database.query(
            "SELECT i.id FROM grp g JOIN item i ON g.id = i.grp"
        ).fetchall()
    )
    assert len(rows) == ROWS


def test_like_scan(benchmark, database):
    rows = benchmark(
        lambda: database.query(
            "SELECT id FROM item WHERE name LIKE '%999%'"
        ).fetchall()
    )
    assert len(rows) > 0


def test_count_star(benchmark, database):
    result = benchmark(lambda: database.query("SELECT COUNT(*) FROM item").fetchall())
    assert result == [(ROWS,)]


def test_meter_overhead_is_bounded(database):
    """Metering must not dominate execution."""
    import time

    meter = OperationMeter()
    start = time.perf_counter()
    database.query("SELECT COUNT(*) FROM item", meter).fetchall()
    metered = time.perf_counter() - start
    start = time.perf_counter()
    database.query("SELECT COUNT(*) FROM item").fetchall()
    plain = time.perf_counter() - start
    assert metered < plain * 5 + 0.05
