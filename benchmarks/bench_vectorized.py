"""Row vs batch (vectorized) data plane: wall-clock speedup benchmark.

Runs the Q1-Q5 x four-network grid cold (fresh engine per cell) under
both data planes, checks per-cell bit-identity of answers and every
virtual-time accumulator, then times repeated full-grid passes in
wall-clock and asserts the vectorized plane clears the target speedup.

Protocol:

* one untimed warm-up grid pass per mode first — it primes the
  process-wide block caches (SQL block cache, star-column cache, join
  stream memo) so the timed passes measure the steady state both modes
  enjoy equally;
* then ``TIMED_PASSES`` alternating row/batch grid passes, scoring each
  mode by its best pass (minimum is the noise-robust wall estimator).

Guardrails:

* per cell, answers and the virtual-time signature agree exactly
  between modes (non-associative float addition means this pins the
  exact charge sequence, not just totals);
* aggregate speedup >= ``TARGET_SPEEDUP``;
* the whole benchmark finishes inside a wall-clock budget (the CI
  smoke-guard relies on this).

Results land in ``benchmarks/results/vectorized_speedup.txt`` and,
machine-readable, in ``BENCH_vectorized.json`` at the repository root.
"""

import json
import time
from pathlib import Path

from repro import FederatedEngine, NetworkSetting
from repro.datasets import BENCHMARK_QUERIES, cached_lslod_lake

from .conftest import emit

#: The grid is pinned (not the conftest env knobs): the committed
#: BENCH_vectorized.json must mean the same thing on every machine.
SCALE = 1.0
DATA_SEED = 11
RUN_SEED = 7
GRID_QUERY_NAMES = ("Q1", "Q2", "Q3", "Q4", "Q5")
TIMED_PASSES = 4
TARGET_SPEEDUP = 5.0
WALL_BUDGET_SECONDS = 180.0
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_vectorized.json"

NETWORKS = (
    NetworkSetting.no_delay,
    NetworkSetting.gamma1,
    NetworkSetting.gamma2,
    NetworkSetting.gamma3,
)


def stats_signature(stats) -> tuple:
    per_source = tuple(
        (sid, s.requests, s.answers, s.virtual_cost, s.network_delay)
        for sid, s in sorted(stats.source_stats.items())
    )
    return (
        stats.execution_time,
        tuple(stats.trace),
        stats.messages,
        stats.engine_cost,
        stats.time_to_first_answer,
        stats.answers,
        stats.subresult_cache_hits,
        per_source,
    )


def grid_pass(lake, exec_mode, signatures=None):
    """One cold-engine pass over the full grid; returns its wall time."""
    started = time.perf_counter()
    for query_name in GRID_QUERY_NAMES:
        text = BENCHMARK_QUERIES[query_name].text
        for network_factory in NETWORKS:
            engine = FederatedEngine(lake, network=network_factory(), exec=exec_mode)
            answers, stats = engine.run(text, seed=RUN_SEED)
            if signatures is not None:
                key = (query_name, network_factory.__name__)
                signatures[key] = (answers, stats_signature(stats))
    return time.perf_counter() - started


def test_vectorized_speedup(results_dir):
    lake = cached_lslod_lake(scale=SCALE, seed=DATA_SEED)
    started_all = time.perf_counter()

    # -- identity + warm-up (untimed) ---------------------------------------
    row_sigs, batch_sigs = {}, {}
    grid_pass(lake, "row", row_sigs)
    grid_pass(lake, "batch", batch_sigs)
    assert row_sigs.keys() == batch_sigs.keys()
    for key, (row_answers, row_sig) in row_sigs.items():
        batch_answers, batch_sig = batch_sigs[key]
        assert batch_answers == row_answers, key
        assert batch_sig == row_sig, key

    # -- timed passes --------------------------------------------------------
    row_times, batch_times = [], []
    for __ in range(TIMED_PASSES):
        row_times.append(grid_pass(lake, "row"))
        batch_times.append(grid_pass(lake, "batch"))
    row_best, batch_best = min(row_times), min(batch_times)
    speedup = row_best / batch_best
    total_wall = time.perf_counter() - started_all

    assert speedup >= TARGET_SPEEDUP, (
        f"vectorized speedup {speedup:.2f}x below target {TARGET_SPEEDUP:.1f}x "
        f"(row best {row_best:.4f}s, batch best {batch_best:.4f}s)"
    )
    assert total_wall < WALL_BUDGET_SECONDS, (
        f"benchmark took {total_wall:.1f}s, budget {WALL_BUDGET_SECONDS:.0f}s"
    )

    # -- report --------------------------------------------------------------
    cells = [
        {
            "query": query_name,
            "network": network_name,
            "answers": len(row_sigs[(query_name, network_name)][0]),
            "virtual_time": row_sigs[(query_name, network_name)][1][0],
            "identical": True,
        }
        for (query_name, network_name) in row_sigs
    ]
    lines = [
        f"grid: {len(cells)} cells "
        f"({len(GRID_QUERY_NAMES)} queries x {len(NETWORKS)} networks), "
        f"scale {SCALE}, data seed {DATA_SEED}, run seed {RUN_SEED}",
        f"row   best of {TIMED_PASSES}: {row_best:.4f}s "
        f"(all {[round(t, 4) for t in row_times]})",
        f"batch best of {TIMED_PASSES}: {batch_best:.4f}s "
        f"(all {[round(t, 4) for t in batch_times]})",
        f"speedup: {speedup:.2f}x (target >= {TARGET_SPEEDUP:.1f}x)",
        "virtual-time identity: all cells bit-identical",
    ]
    emit(results_dir, "vectorized_speedup.txt", "\n".join(lines))

    BENCH_JSON.write_text(
        json.dumps(
            {
                "scale": SCALE,
                "data_seed": DATA_SEED,
                "run_seed": RUN_SEED,
                "timed_passes": TIMED_PASSES,
                "target_speedup": TARGET_SPEEDUP,
                "row_wall_times": row_times,
                "batch_wall_times": batch_times,
                "row_best": row_best,
                "batch_best": batch_best,
                "speedup": speedup,
                "cells": cells,
            },
            indent=2,
        )
        + "\n"
    )
