"""Heuristic 2 — pushing up instantiations (the paper's Q1 vs Q3 tension).

The paper: "the results of Q1 support our experience and suggest to follow
Heuristic 2.  On the other hand, the results of Q3 suggest otherwise."

This bench runs Q1 and Q3 under three filter-placement policies — always at
the engine, pushed when indexed (the experiment's aware plans), and the
literal Heuristic 2 (indexed AND slow network) — across all networks, and
asserts both halves of the paper's observation.
"""

import pytest

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.benchmark import Configuration, format_table, run_query
from repro.core import FilterPlacement
from repro.datasets import BENCHMARK_QUERIES

from .conftest import emit

POLICIES = {
    "engine": PlanPolicy.physical_design_unaware(),
    "pushdown": PlanPolicy.physical_design_aware(),
    "heuristic2": PlanPolicy.heuristic2(),
}


def _sweep(lake, query):
    results = {}
    for label, policy in POLICIES.items():
        for network in NetworkSetting.all_settings():
            results[(label, network.name)] = run_query(
                lake, query, Configuration(policy, network), seed=7
            )
    return results


def _render(results):
    rows = []
    for network in NetworkSetting.all_settings():
        row = [network.name]
        for label in POLICIES:
            row.append(f"{results[(label, network.name)].execution_time:.4f}")
        rows.append(row)
    return format_table(["Network"] + [f"{label} (s)" for label in POLICIES], rows)


def test_h2_q1_supports_heuristic(benchmark, lake, results_dir):
    """Q1: infix string filter over an *indexed* attribute.  Pushing it down
    costs an RDB string scan; on fast networks the engine-side filter wins."""
    results = _sweep(lake, BENCHMARK_QUERIES["Q1"])
    emit(results_dir, "h2_q1_filter_placement.txt", _render(results))

    for fast in ("No Delay", "Gamma 1"):
        assert (
            results[("engine", fast)].execution_time
            < results[("pushdown", fast)].execution_time
        ), fast
    # On the slow network the reduced intermediate result wins.
    assert (
        results[("pushdown", "Gamma 3")].execution_time
        < results[("engine", "Gamma 3")].execution_time
    )
    # Heuristic 2 picks the right side at both extremes.
    assert results[("heuristic2", "No Delay")].execution_time == pytest.approx(
        results[("engine", "No Delay")].execution_time, rel=0.2
    )
    h2_slow = results[("heuristic2", "Gamma 3")].execution_time
    assert h2_slow <= results[("engine", "Gamma 3")].execution_time

    benchmark(
        lambda: run_query(
            lake,
            BENCHMARK_QUERIES["Q1"],
            Configuration(POLICIES["heuristic2"], NetworkSetting.no_delay()),
            seed=7,
        )
    )


def test_h2_q3_contradicts_heuristic(benchmark, lake, results_dir):
    """Q3: selective equality filter over an indexed attribute.  Pushing it
    down wins at *every* network setting — contradicting Heuristic 2, which
    would keep it at the engine on fast networks."""
    results = _sweep(lake, BENCHMARK_QUERIES["Q3"])
    emit(results_dir, "h2_q3_filter_placement.txt", _render(results))

    for network in NetworkSetting.all_settings():
        assert (
            results[("pushdown", network.name)].execution_time
            < results[("engine", network.name)].execution_time
        ), network.name
    # The literal Heuristic 2 loses to the pushdown policy on fast networks
    # for Q3 (it keeps the filter at the engine there) — the contradiction.
    assert (
        results[("heuristic2", "No Delay")].execution_time
        > results[("pushdown", "No Delay")].execution_time
    )

    benchmark(
        lambda: run_query(
            lake,
            BENCHMARK_QUERIES["Q3"],
            Configuration(POLICIES["pushdown"], NetworkSetting.no_delay()),
            seed=7,
        )
    )
