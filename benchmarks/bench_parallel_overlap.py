"""Sequential vs event-scheduled execution: virtual overlap and wall-clock.

Runs Q1-Q5 under all four simulated networks with the sequential runtime
and the discrete-event runtime, recording virtual execution times (the
event scheduler overlaps independent sources' delays, so multi-source
queries should get faster in virtual time), then times the full grid in
wall-clock under the sequential and thread-pool runtimes.

Guardrails:

* answer counts agree between runtimes on every cell;
* event-scheduled virtual time is never worse than sequential, and is
  strictly better on multi-source queries under delayed networks;
* single-source queries report identical virtual times;
* the whole grid finishes inside a fixed wall-clock budget (the CI
  smoke-guard relies on this).

Thread-pool wall-clock is reported, not asserted: on a single-core runner
the GIL leaves no parallelism to harvest, while multi-core machines see
the overlap.  Results land in ``benchmarks/results/parallel_overlap.txt``
and, machine-readable, in ``BENCH_parallel.json`` at the repository root.
"""

import json
import time
from pathlib import Path

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.datasets import BENCHMARK_QUERIES, GRID_QUERIES
from repro.federation.operators import ServiceNode

from .conftest import SCALE, SEED, emit

RUN_SEED = 7
WALL_BUDGET_SECONDS = 120.0
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def count_leaves(op):
    if isinstance(op, ServiceNode):
        return 1
    return sum(count_leaves(child) for child in op.children())


def fresh_engine(lake, network, runtime):
    return FederatedEngine(
        lake,
        policy=PlanPolicy.physical_design_aware(),
        network=network,
        runtime=runtime,
        enable_plan_cache=False,
        enable_subresult_cache=False,
    )


def test_parallel_overlap(lake, results_dir):
    networks = NetworkSetting.all_settings()
    queries = [BENCHMARK_QUERIES[name] for name in GRID_QUERIES]

    cells = []
    grid_wall = {"sequential": 0.0, "thread": 0.0}
    started_all = time.perf_counter()
    for query in queries:
        leaves = count_leaves(
            fresh_engine(lake, networks[0], "sequential").plan(query.text).root
        )
        for network in networks:
            row = {
                "query": query.name,
                "network": network.name,
                "source_count": leaves,
            }
            for runtime in ("sequential", "event", "thread"):
                engine = fresh_engine(lake, network, runtime)
                wall_start = time.perf_counter()
                answers, stats = engine.run(query.text, seed=RUN_SEED)
                wall = time.perf_counter() - wall_start
                row[runtime] = {
                    "virtual_time": stats.execution_time,
                    "wall_time": wall,
                    "answers": len(answers),
                }
                if runtime in grid_wall:
                    grid_wall[runtime] += wall
            cells.append(row)
    total_wall = time.perf_counter() - started_all

    # -- guardrails ----------------------------------------------------------
    for row in cells:
        seq, evt = row["sequential"], row["event"]
        assert evt["answers"] == seq["answers"] == row["thread"]["answers"], row
        delayed = row["network"] != "No Delay"
        if row["source_count"] == 1:
            assert evt["virtual_time"] == seq["virtual_time"], row
        else:
            assert evt["virtual_time"] <= seq["virtual_time"], row
            if delayed:
                assert evt["virtual_time"] < seq["virtual_time"], row
    assert total_wall < WALL_BUDGET_SECONDS, (
        f"overlap grid took {total_wall:.1f}s, budget {WALL_BUDGET_SECONDS:.0f}s"
    )

    # -- report --------------------------------------------------------------
    lines = [
        f"{'query':<6} {'network':<12} {'src':>3} {'seq virtual':>12} "
        f"{'event virtual':>14} {'overlap':>8}"
    ]
    for row in cells:
        seq_t = row["sequential"]["virtual_time"]
        evt_t = row["event"]["virtual_time"]
        gain = seq_t / evt_t if evt_t > 0 else float("inf")
        lines.append(
            f"{row['query']:<6} {row['network']:<12} {row['source_count']:>3} "
            f"{seq_t:>12.4f} {evt_t:>14.4f} {gain:>7.2f}x"
        )
    lines.append("")
    lines.append(
        f"grid wall-clock: sequential {grid_wall['sequential']:.3f}s, "
        f"thread-pool {grid_wall['thread']:.3f}s "
        f"({grid_wall['sequential'] / max(grid_wall['thread'], 1e-9):.2f}x)"
    )
    emit(results_dir, "parallel_overlap.txt", "\n".join(lines))

    BENCH_JSON.write_text(
        json.dumps(
            {
                "scale": SCALE,
                "seed": SEED,
                "run_seed": RUN_SEED,
                "cells": cells,
                "grid_wall_clock": grid_wall,
                "total_wall_clock": total_wall,
            },
            indent=2,
        )
        + "\n"
    )
