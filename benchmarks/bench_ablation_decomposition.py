"""Ablation — star-shaped vs triple-wise decomposition.

The paper's future work: "studying different kinds of query decomposition
(e.g., triple-based instead of star-shaped sub-queries)".  This bench runs
the grid queries under both decompositions (with engine-side joins for
both, isolating the decomposition variable) and shows why stars win:
fewer sub-queries, fewer transferred messages, less engine join work.
"""

import pytest

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.benchmark import format_table, same_answers
from repro.datasets import BENCHMARK_QUERIES

from .conftest import emit

STAR = PlanPolicy.physical_design_unaware()
TRIPLE = PlanPolicy.triple_wise()
#: Q4 joins the native-RDF source; the decomposition effect is identical,
#: so the sweep covers the relational-heavy queries.
QUERIES = ("Q1", "Q2", "Q3", "Q5")


def test_decomposition_ablation(benchmark, lake, results_dir):
    network = NetworkSetting.gamma1()
    rows = []
    for query_name in QUERIES:
        query = BENCHMARK_QUERIES[query_name]
        star_answers, star_stats = FederatedEngine(lake, policy=STAR, network=network).run(
            query.text, seed=7
        )
        triple_answers, triple_stats = FederatedEngine(
            lake, policy=TRIPLE, network=network
        ).run(query.text, seed=7)
        assert same_answers(star_answers, triple_answers), query_name
        assert star_stats.messages <= triple_stats.messages, query_name
        assert star_stats.execution_time < triple_stats.execution_time, query_name
        rows.append(
            [
                query_name,
                len(star_answers),
                f"{star_stats.execution_time:.4f}",
                f"{triple_stats.execution_time:.4f}",
                star_stats.messages,
                triple_stats.messages,
                f"{triple_stats.execution_time / star_stats.execution_time:.2f}x",
            ]
        )

    table = format_table(
        [
            "Query",
            "Answers",
            "Star (s)",
            "Triple (s)",
            "Star msgs",
            "Triple msgs",
            "Star advantage",
        ],
        rows,
    )
    emit(results_dir, "ablation_decomposition.txt", table)

    benchmark(
        lambda: FederatedEngine(lake, policy=TRIPLE, network=network).run(
            BENCHMARK_QUERIES["Q2"].text, seed=7
        )
    )


def test_decomposition_subquery_counts(lake, results_dir):
    """Triple-wise decomposition multiplies the number of sub-queries."""
    from repro.core import decompose_star_shaped, decompose_triple_wise
    from repro.sparql import parse_query

    rows = []
    for query_name in QUERIES:
        parsed = parse_query(BENCHMARK_QUERIES[query_name].text)
        stars = len(decompose_star_shaped(parsed).subqueries)
        triples = len(decompose_triple_wise(parsed).subqueries)
        assert triples > stars
        rows.append([query_name, stars, triples])
    emit(
        results_dir,
        "ablation_decomposition_counts.txt",
        format_table(["Query", "Star SSQs", "Triple sub-queries"], rows),
    )
