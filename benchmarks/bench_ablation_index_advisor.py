"""Ablation — the 15 % rule (index advisor).

The motivating example: "No index is created since there are values that
are present in more than 15% of the records."  This bench (a) reports the
advisor's verdicts over the benchmark columns, and (b) quantifies why the
rule is right: an index on a uniformly-selective column speeds equality
lookups by orders of magnitude, while an index on the skewed species column
barely helps its dominant value.
"""

import pytest

from repro.benchmark import format_table
from repro.network import DEFAULT_COST_MODEL
from repro.relational import OperationMeter

from .conftest import emit

CANDIDATES = (
    ("affymetrix", "probeset", "scientificname"),
    ("affymetrix", "probeset", "symbol"),
    ("drugbank", "drug", "category"),
    ("drugbank", "drug", "drugname"),
    ("tcga", "patient", "gender"),
    ("tcga", "geneexpression", "genesymbol"),
    ("diseasome", "disease", "diseaseclass"),
    ("diseasome", "gene", "genesymbol"),
)


def test_advisor_verdicts(benchmark, lake, results_dir):
    rows = []
    verdicts = {}
    for source_id, table, column in CANDIDATES:
        source = lake.source(source_id)
        advice = source.database.advise_index(table, column)
        verdicts[(table, column)] = advice.create
        rows.append(
            [
                f"{source_id}.{table}.{column}",
                "CREATE" if advice.create else "SKIP",
                f"{advice.most_common_fraction:.1%}",
                advice.distinct_count,
                advice.reason,
            ]
        )
    text = format_table(["Column", "Verdict", "Mode freq", "Distinct", "Reason"], rows)
    emit(results_dir, "ablation_index_advisor.txt", text)

    # The paper's motivating case: the skewed species attribute is skipped.
    assert verdicts[("probeset", "scientificname")] is False
    # Join/selection attributes are indexable.
    assert verdicts[("probeset", "symbol")] is True
    assert verdicts[("geneexpression", "genesymbol")] is True
    # Low-cardinality categorical columns are skipped.
    assert verdicts[("drug", "category")] is False
    assert verdicts[("patient", "gender")] is False

    benchmark(
        lambda: lake.source("affymetrix").database.advise_index(
            "probeset", "scientificname"
        )
    )


def test_rule_justification(benchmark, lake, results_dir):
    """Priced lookup cost with a *forced* index on the skewed column vs the
    advised index on the selective column."""
    database = lake.source("affymetrix").database
    model = DEFAULT_COST_MODEL

    def priced(sql: str) -> tuple[float, int]:
        meter = OperationMeter()
        rows = database.query(sql, meter).fetchall()
        return model.price_rdb_operations(meter.counts), len(rows)

    # Selective, indexed equality (the advised index exists in the lake).
    indexed_cost, indexed_rows = priced(
        "SELECT id FROM probeset WHERE symbol = 'BRCA1'"
    )
    # Skewed column: no index exists (advisor skipped it) -> full scan.
    scan_cost, scan_rows = priced(
        "SELECT id FROM probeset WHERE scientificname = 'Homo sapiens'"
    )
    # Force the index the advisor rejected, then look up the dominant value.
    database.create_index("probeset", ["scientificname"], name="ix_forced_species")
    try:
        forced_cost, forced_rows = priced(
            "SELECT id FROM probeset WHERE scientificname = 'Homo sapiens'"
        )
    finally:
        database.drop_index("probeset", "ix_forced_species")

    assert scan_rows == forced_rows
    selective_speedup = scan_cost / indexed_cost if indexed_cost else float("inf")
    skewed_speedup = scan_cost / forced_cost if forced_cost else float("inf")

    table = format_table(
        ["Access", "Rows", "Priced cost (s)"],
        [
            ["indexed symbol = 'BRCA1'", indexed_rows, f"{indexed_cost:.6f}"],
            ["scan species = 'Homo sapiens'", scan_rows, f"{scan_cost:.6f}"],
            ["forced-index species lookup", forced_rows, f"{forced_cost:.6f}"],
        ],
    )
    emit(
        results_dir,
        "ablation_index_rule_justification.txt",
        table
        + f"\n\nspeedup from advised index: {selective_speedup:.1f}x"
        + f"\nspeedup from rejected index: {skewed_speedup:.1f}x",
    )

    # The advised index is transformative; the rejected one is marginal.
    assert selective_speedup > 10 * skewed_speedup

    benchmark(lambda: priced("SELECT id FROM probeset WHERE symbol = 'BRCA1'"))
