"""Heuristic 1 — pushing down joins (the paper's Q2 finding).

"Forcing Ontario to send the optimized SQL query for Q2 approx. halves the
execution time compared to the physical-design-unaware QEP."  This bench
compares the merged (H1) plan against the unaware plan for Q2 across all
network settings and checks the >= 2x speedup the paper reports.
"""

import pytest

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.benchmark import Configuration, format_table, run_query
from repro.datasets import BENCHMARK_QUERIES

from .conftest import emit

Q2 = BENCHMARK_QUERIES["Q2"]


def test_h1_join_pushdown_q2(benchmark, lake, results_dir):
    rows = []
    speedups = {}
    for network in NetworkSetting.all_settings():
        unaware = run_query(
            lake, Q2, Configuration(PlanPolicy.physical_design_unaware(), network), seed=7
        )
        aware = run_query(
            lake, Q2, Configuration(PlanPolicy.physical_design_aware(), network), seed=7
        )
        speedup = unaware.execution_time / aware.execution_time
        speedups[network.name] = speedup
        rows.append(
            [
                network.name,
                f"{unaware.execution_time:.4f}",
                f"{aware.execution_time:.4f}",
                f"{speedup:.2f}x",
                unaware.messages,
                aware.messages,
            ]
        )
        assert aware.answers == unaware.answers

    table = format_table(
        ["Network", "Unaware (s)", "Aware/H1 (s)", "Speedup", "Msgs unaware", "Msgs aware"],
        rows,
    )
    emit(results_dir, "h1_join_pushdown_q2.txt", table)

    # The paper's claim: the optimized SQL approx. halves execution time.
    # Our substitution yields at least that factor at every setting.
    assert all(speedup >= 2.0 for speedup in speedups.values()), speedups

    plan = FederatedEngine(
        lake, policy=PlanPolicy.physical_design_aware(), network=NetworkSetting.no_delay()
    ).plan(Q2.text)
    assert any(decision.merged for decision in plan.merge_decisions)

    benchmark.extra_info["speedup_no_delay"] = round(speedups["No Delay"], 2)
    benchmark(
        lambda: run_query(
            lake,
            Q2,
            Configuration(PlanPolicy.physical_design_aware(), NetworkSetting.no_delay()),
            seed=7,
        )
    )


def test_h1_merged_sql_is_single_request(lake, results_dir):
    """H1 turns two source requests into one."""
    unaware = FederatedEngine(lake, policy=PlanPolicy.physical_design_unaware())
    aware = FederatedEngine(lake, policy=PlanPolicy.physical_design_aware())
    __, unaware_stats = unaware.run(Q2.text, seed=7)
    __, aware_stats = aware.run(Q2.text, seed=7)
    assert unaware_stats.source("diseasome").requests == 2
    assert aware_stats.source("diseasome").requests == 1
