"""Figure 1 — the motivating example.

The paper's Figure 1 shows two query execution plans for the same query:
(b) a physical-design-unaware QEP performing every operation at the engine,
and (c) a physical-design-aware QEP pushing the Diseasome gene-disease join
into the source while the non-indexed species filter stays at the engine.

This bench regenerates both plans, asserts their structural properties, and
times plan generation.
"""

import pytest

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.datasets import MOTIVATING_EXAMPLE

from .conftest import emit


def test_fig1_motivating_plans(benchmark, lake, results_dir):
    unaware_engine = FederatedEngine(
        lake, policy=PlanPolicy.physical_design_unaware(), network=NetworkSetting.no_delay()
    )
    aware_engine = FederatedEngine(
        lake, policy=PlanPolicy.physical_design_aware(), network=NetworkSetting.no_delay()
    )

    unaware_plan = unaware_engine.plan(MOTIVATING_EXAMPLE.text)
    aware_plan = aware_engine.plan(MOTIVATING_EXAMPLE.text)

    unaware_text = unaware_plan.explain()
    aware_text = aware_plan.explain()

    # Figure 1b: joins at the engine, one service per star.
    assert unaware_text.count("SymmetricHashJoin") == 2
    assert unaware_text.count("Service[") == 3
    # Figure 1c: the Diseasome join is pushed down (one merged SQL service)...
    assert aware_text.count("Service[") == 2
    assert "JOIN disease" in aware_text
    # ...and the species filter stays at the engine: the attribute is not
    # indexed (15% rule), in both plans.
    assert "engine-filter" in aware_text
    assert "no index" in aware_text

    emit(
        results_dir,
        "fig1_motivating_plans.txt",
        "--- Physical-Design-Unaware QEP (Fig. 1b) ---\n"
        + unaware_text
        + "\n\n--- Physical-Design-Aware QEP (Fig. 1c) ---\n"
        + aware_text,
    )

    benchmark.extra_info["unaware_services"] = unaware_text.count("Service[")
    benchmark.extra_info["aware_services"] = aware_text.count("Service[")
    benchmark(lambda: aware_engine.plan(MOTIVATING_EXAMPLE.text))
