"""Network impact — delays hurt physical-design-unaware QEPs more.

The paper's analysis: "the impact of network delays is higher in the case
of physical-design-unaware query execution plans."  This bench quantifies
the absolute and relative penalties per query and policy.
"""

import pytest

from repro import NetworkSetting, PlanPolicy
from repro.benchmark import Configuration, format_table, run_query
from repro.datasets import BENCHMARK_QUERIES

from .conftest import emit

POLICIES = (PlanPolicy.physical_design_unaware(), PlanPolicy.physical_design_aware())
#: Queries with heuristic opportunities (Q4's plans coincide by design).
QUERIES = ("Q1", "Q2", "Q3", "Q5")


def test_network_impact(benchmark, lake, results_dir):
    rows = []
    penalties = {}
    for query_name in QUERIES:
        query = BENCHMARK_QUERIES[query_name]
        for policy in POLICIES:
            base = run_query(
                lake, query, Configuration(policy, NetworkSetting.no_delay()), seed=7
            )
            slow = run_query(
                lake, query, Configuration(policy, NetworkSetting.gamma3()), seed=7
            )
            penalty = slow.execution_time - base.execution_time
            penalties[(query_name, policy.name)] = penalty
            rows.append(
                [
                    query_name,
                    policy.name,
                    f"{base.execution_time:.4f}",
                    f"{slow.execution_time:.4f}",
                    f"{penalty:.4f}",
                    slow.messages,
                ]
            )

    table = format_table(
        ["Query", "Policy", "No Delay (s)", "Gamma 3 (s)", "Penalty (s)", "Messages"],
        rows,
    )
    emit(results_dir, "network_impact.txt", table)

    # The headline finding, per query:
    for query_name in ("Q2", "Q3", "Q5"):
        unaware_penalty = penalties[(query_name, "Physical-Design-Unaware")]
        aware_penalty = penalties[(query_name, "Physical-Design-Aware")]
        assert unaware_penalty > aware_penalty, query_name

    benchmark(
        lambda: run_query(
            lake,
            BENCHMARK_QUERIES["Q2"],
            Configuration(POLICIES[0], NetworkSetting.gamma3()),
            seed=7,
        )
    )


def test_penalty_tracks_messages(lake, results_dir):
    """The per-message delay model implies penalty ~ messages x mean latency."""
    query = BENCHMARK_QUERIES["Q2"]
    for policy in POLICIES:
        base = run_query(lake, query, Configuration(policy, NetworkSetting.no_delay()), seed=7)
        slow = run_query(lake, query, Configuration(policy, NetworkSetting.gamma3()), seed=7)
        penalty = slow.execution_time - base.execution_time
        expected = slow.messages * NetworkSetting.gamma3().mean_latency
        assert penalty == pytest.approx(expected, rel=0.25)
