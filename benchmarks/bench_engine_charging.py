"""Microbenchmarks of the engine's per-tuple clock-charging hot path.

The symmetric hash join used to pay two ``charge_engine`` calls for every
keyed tuple (insert + probe).  :class:`~repro.federation.answers.ChargeBatch`
amortizes those into one flush per emitted answer, with bit-equal clock
values at every observation point.  These benches measure that saving in
real wall-clock and guard the totals' equivalence.
"""

import time

import pytest

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.datasets import BENCHMARK_QUERIES
from repro.federation.answers import ChargeBatch, RunContext

TUPLES = 50_000
INSERT = 1.5e-6
PROBE = 1.2e-6


def charge_per_tuple(context: RunContext) -> float:
    for __ in range(TUPLES):
        context.charge_engine(INSERT)
        context.charge_engine(PROBE)
    return context.now()


def charge_batched(context: RunContext) -> float:
    charges = ChargeBatch(context)
    step = INSERT + PROBE
    for __ in range(TUPLES):
        charges.add(step)
    charges.flush()
    return context.now()


def test_charge_per_tuple(benchmark):
    total = benchmark(lambda: charge_per_tuple(RunContext()))
    assert total > 0


def test_charge_batched(benchmark):
    total = benchmark(lambda: charge_batched(RunContext()))
    assert total > 0


def test_batched_charging_is_faster_and_equal():
    """The satellite's claim: fewer Python calls, same accounted time."""

    def timed(fn):
        context = RunContext()
        start = time.perf_counter()
        total = fn(context)
        return time.perf_counter() - start, total, context.stats.engine_cost

    # Warm up, then take the best of three to damp scheduler noise.
    per_tuple = min(timed(charge_per_tuple) for __ in range(3))
    batched = min(timed(charge_batched) for __ in range(3))

    assert batched[1] == pytest.approx(per_tuple[1], rel=1e-9)
    assert batched[2] == pytest.approx(per_tuple[2], rel=1e-9)
    assert batched[0] < per_tuple[0], (
        f"batched charging ({batched[0]:.4f}s) not faster than per-tuple "
        f"({per_tuple[0]:.4f}s) over {TUPLES} tuples"
    )


def test_join_heavy_query_wall_clock(benchmark, lake):
    """End-to-end guard: the join hot loop through the whole engine."""
    engine = FederatedEngine(
        lake,
        policy=PlanPolicy.physical_design_aware(),
        network=NetworkSetting.no_delay(),
        enable_plan_cache=False,
        enable_subresult_cache=False,
    )
    text = BENCHMARK_QUERIES["Q1"].text
    answers = benchmark(lambda: engine.run(text, seed=7)[0])
    assert len(answers) > 0
