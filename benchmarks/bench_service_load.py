"""Service load test: 1000+ simulated clients through the full stack.

Drives the seeded closed-loop workload driver (the exact admission
controller + engine pool + shared caches the ``repro serve`` daemon runs)
with a thousand-client, tenant-skewed, hot/cold workload in virtual time,
and asserts the PR's acceptance criteria:

* **zero answer mismatches** — every admitted execution is bit-checked
  against a pristine single-engine reference;
* **zero admission violations** — the post-hoc auditor re-verifies FIFO
  and concurrency limits from the ticket log;
* **determinism** — a second same-seed run reproduces every request
  outcome and the shared-cache counter totals, fingerprint-identical;
* **wall budget** — the whole benchmark (two runs + verification)
  finishes inside ``WALL_BUDGET_SECONDS`` (the CI smoke-guard).

Results land in ``benchmarks/results/service_load.txt`` and, machine
readable, in ``BENCH_service.json`` at the repository root, with a Chrome
trace of the simulated schedule in ``benchmarks/results/``.
"""

import json
import time
from pathlib import Path

from repro.datasets import build_lslod_lake
from repro.service import ServiceConfig, TenantConfig, WorkloadSpec, run_load

from .conftest import emit

#: Pinned workload (not the conftest env knobs): the committed
#: BENCH_service.json must mean the same thing on every machine.
SCALE = 0.1
DATA_SEED = 42
LOAD_SEED = 42
CLIENTS = 1000
WALL_BUDGET_SECONDS = 240.0
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_service.json"

# gamma2 source delays make virtual service times realistic (tens of ms
# to seconds), so queueing, shedding, and timeouts actually engage —
# wall-clock stays fast because the delays are virtual.
CONFIG = ServiceConfig(
    workers=4,
    global_concurrency=8,
    timeout=20.0,
    network="gamma2",
    default_tenant=TenantConfig(name="default", max_concurrency=3, queue_depth=24),
)

SPEC = WorkloadSpec(
    clients=CLIENTS,
    requests_per_client=1,
    tenants=4,
    tenant_skew=1.2,
    hot_fraction=0.8,
    cold_variants=20,
    mean_interarrival=0.1,
    mean_think=2.0,
)


def test_service_load_thousand_clients(results_dir):
    wall_start = time.perf_counter()
    lake = build_lslod_lake(scale=SCALE, seed=DATA_SEED)

    report = run_load(lake, CONFIG, SPEC, seed=LOAD_SEED)
    summary = report.summary()

    # Acceptance: every admitted execution matched the single-engine
    # reference, and the admission log re-audits clean.
    assert report.mismatches == [], report.mismatches[:5]
    assert report.audit_violations == [], report.audit_violations[:5]
    assert summary["requests"] >= 1000
    assert summary["completed"] > 0
    assert summary["shed"] > 0  # the workload actually engages admission control
    assert summary["latency_p50"] > 0

    # Determinism: the same seed reproduces everything, including the
    # shared-cache hit/miss totals.
    again = run_load(lake, CONFIG, SPEC, seed=LOAD_SEED)
    assert again.fingerprint() == report.fingerprint(), (
        "same-seed driver runs diverged"
    )
    assert again.cache_stats == report.cache_stats

    document = report.to_dict()
    document["workload"] = {
        "scale": SCALE,
        "data_seed": DATA_SEED,
        "determinism_checked": True,
    }
    BENCH_JSON.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    trace_path = results_dir / "service_load_trace.json"
    trace_path.write_text(json.dumps(report.to_chrome_trace()) + "\n")

    plans = summary["cache"]["plans"]
    subresults = summary["cache"]["subresults"]
    lines = [
        f"clients                {SPEC.clients} (seed {LOAD_SEED}, "
        f"{SPEC.tenants} tenants, skew {SPEC.tenant_skew})",
        f"requests               {summary['requests']}",
        f"completed              {summary['completed']}",
        f"shed                   {summary['shed']} (rate {summary['shed_rate']})",
        f"timed out              {summary['timed_out']}",
        f"virtual latency        p50={summary['latency_p50']:.4f}s "
        f"p95={summary['latency_p95']:.4f}s p99={summary['latency_p99']:.4f}s",
        f"virtual throughput     {summary['throughput_per_virtual_s']:.2f} req/s "
        f"over {summary['virtual_makespan']:.2f}s makespan",
        f"wall                   {summary['wall_seconds']:.2f}s "
        f"({summary['wall_throughput_per_s']:.0f} exec/s)",
        f"plan cache             {plans['hits']}/{plans['hits'] + plans['misses']} "
        f"hits (rate {plans['hit_rate']})",
        f"sub-result cache       {subresults['hits']}/"
        f"{subresults['hits'] + subresults['misses']} hits "
        f"(rate {subresults['hit_rate']})",
        f"answer mismatches      {summary['answer_mismatches']}",
        f"admission violations   {summary['audit_violations']}",
        f"fingerprint            {document['fingerprint']}",
        f"wrote                  {BENCH_JSON.name}, {trace_path.name}",
    ]
    emit(results_dir, "service_load.txt", "\n".join(lines))

    elapsed = time.perf_counter() - wall_start
    assert elapsed < WALL_BUDGET_SECONDS, (
        f"service load benchmark took {elapsed:.1f}s, "
        f"budget {WALL_BUDGET_SECONDS:.0f}s"
    )
