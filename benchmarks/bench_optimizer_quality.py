"""Cost-based optimizer vs the fixed heuristics (ISSUE-8 tentpole).

Every fixed heuristic policy misestimates somewhere on the Q1-Q5 x
network grid: unaware ships unfiltered stars (Q2/Q3/Q5), dependent-join
serializes stars that transfer cheaply (Q1), filters-at-source gives up
engine-side index probes (Q4 under delay).  The cost-based planner prices
the alternatives from catalog statistics instead of committing to one
rule, so it should track the per-cell best heuristic everywhere and dodge
every trap.  This bench asserts exactly that:

* **corridor** — cost execution time is never above the per-cell best
  heuristic beyond a 5% relative + 5ms absolute corridor (the DP's
  calibrated charges price near-tie plans slightly differently than the
  virtual clock settles them);
* **wins** — in at least 4 cells the cost plan is >= 1.5x faster than
  some heuristic's plan (the misestimate cells the grid exists to show);
* **answers** — identical answer counts in every cell.

The committed ``BENCH_optimizer.json`` pins the same policy's full grid
(times, plan operators, q-errors) for the drift gate; this bench makes
the comparative claim.
"""

from repro.benchmark import Configuration, format_table, run_query
from repro.core.policy import PlanPolicy
from repro.datasets import BENCHMARK_QUERIES
from repro.network.delays import NetworkSetting

from .conftest import emit

QUERIES = ("Q1", "Q2", "Q3", "Q4", "Q5")

HEURISTICS = {
    "aware": PlanPolicy.physical_design_aware,
    "unaware": PlanPolicy.physical_design_unaware,
    "heuristic2": PlanPolicy.heuristic2,
    "source": PlanPolicy.filters_at_source,
    "dependent": PlanPolicy.dependent_join,
}

NETWORKS = {
    "nodelay": NetworkSetting.no_delay,
    "gamma1": NetworkSetting.gamma1,
    "gamma2": NetworkSetting.gamma2,
    "gamma3": NetworkSetting.gamma3,
}

#: Allowed excess over the per-cell best heuristic before a cell fails.
REL_CORRIDOR = 0.05
ABS_CORRIDOR = 0.005

#: A heuristic "misestimated" a cell when its plan is this much slower
#: than the cost-based plan.
WIN_FACTOR = 1.5

#: The grid must contain at least this many misestimate cells the cost
#: planner dodges (the acceptance floor; the actual count is ~12).
MIN_WIN_CELLS = 4


def test_cost_policy_tracks_best_heuristic_and_dodges_traps(
    benchmark, lake, results_dir
):
    rows = []
    wins: dict[str, list[str]] = {}
    violations = []
    for query_name in QUERIES:
        query = BENCHMARK_QUERIES[query_name]
        for network_name, make_network in NETWORKS.items():
            cell = f"{query_name}/{network_name}"
            heuristic_runs = {
                policy_name: run_query(
                    lake, query, Configuration(make_policy(), make_network()), seed=7
                )
                for policy_name, make_policy in HEURISTICS.items()
            }
            cost_run = run_query(
                lake, query, Configuration(PlanPolicy.cost(), make_network()), seed=7
            )
            for policy_name, run in heuristic_runs.items():
                assert run.answers == cost_run.answers, (
                    f"{cell}: {policy_name} answers {run.answers} != "
                    f"cost answers {cost_run.answers}"
                )
            times = {name: run.execution_time for name, run in heuristic_runs.items()}
            best_name = min(times, key=times.get)
            best = times[best_name]
            worst_name = max(times, key=times.get)
            dodged = sorted(
                name
                for name, time in times.items()
                if time >= cost_run.execution_time * WIN_FACTOR
            )
            if dodged:
                wins[cell] = dodged
            if cost_run.execution_time > best * (1 + REL_CORRIDOR) + ABS_CORRIDOR:
                violations.append(
                    f"{cell}: cost {cost_run.execution_time:.4f}s vs best "
                    f"{best_name} {best:.4f}s"
                )
            rows.append(
                [
                    cell,
                    f"{cost_run.execution_time:.4f}",
                    f"{best:.4f} ({best_name})",
                    f"{times[worst_name]:.4f} ({worst_name})",
                    ",".join(dodged) or "-",
                ]
            )

    table = format_table(
        ["Cell", "Cost (s)", "Best heuristic (s)", "Worst heuristic (s)", "Dodged"],
        rows,
    )
    emit(results_dir, "optimizer_quality.txt", table)

    assert not violations, "cost policy slower than the best heuristic:\n" + "\n".join(
        violations
    )
    assert len(wins) >= MIN_WIN_CELLS, (
        f"only {len(wins)} misestimate cells dodged "
        f"(need >= {MIN_WIN_CELLS}): {sorted(wins)}"
    )

    benchmark.extra_info["win_cells"] = len(wins)
    benchmark.extra_info["cells"] = len(rows)
    benchmark(
        lambda: run_query(
            lake,
            BENCHMARK_QUERIES["Q2"],
            Configuration(PlanPolicy.cost(), NetworkSetting.gamma3()),
            seed=7,
        )
    )


def test_every_heuristic_misestimates_somewhere(lake):
    """The motivation for a cost model: no fixed rule is safe grid-wide.

    For each of the paper's two headline heuristics plus the dependent
    join, some cell exists where it is >= 1.5x slower than the cost plan.
    """
    exposed = set()
    for query_name in QUERIES:
        query = BENCHMARK_QUERIES[query_name]
        for make_network in NETWORKS.values():
            cost_time = run_query(
                lake, query, Configuration(PlanPolicy.cost(), make_network()), seed=7
            ).execution_time
            for policy_name in ("unaware", "dependent"):
                if policy_name in exposed:
                    continue
                heuristic_time = run_query(
                    lake,
                    query,
                    Configuration(HEURISTICS[policy_name](), make_network()),
                    seed=7,
                ).execution_time
                if heuristic_time >= cost_time * WIN_FACTOR:
                    exposed.add(policy_name)
    assert exposed == {"unaware", "dependent"}
