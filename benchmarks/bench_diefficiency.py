"""Diefficiency — continuous answer production (dief@t, time-to-first).

ANAPSID/MULDER/Ontario evaluate engines not only on completion time but on
*how continuously* they produce answers.  This bench reports time to first
answer and dief@t (area under the answer trace — higher is better) for the
grid queries, confirming that the physical-design-aware plans are not just
faster overall but also more diefficient.
"""

import pytest

from repro import NetworkSetting, PlanPolicy
from repro.benchmark import Configuration, dief_at_t, format_table, run_query
from repro.datasets import BENCHMARK_QUERIES

from .conftest import emit

POLICIES = (PlanPolicy.physical_design_unaware(), PlanPolicy.physical_design_aware())
QUERIES = ("Q1", "Q2", "Q3", "Q5")


def test_diefficiency(benchmark, lake, results_dir):
    network = NetworkSetting.gamma2()
    rows = []
    for query_name in QUERIES:
        query = BENCHMARK_QUERIES[query_name]
        results = {
            policy.name: run_query(lake, query, Configuration(policy, network), seed=7)
            for policy in POLICIES
        }
        # Compare over the shared horizon (the faster plan's completion).
        horizon = min(result.execution_time for result in results.values())
        row = [query_name]
        diefs = {}
        for policy in POLICIES:
            result = results[policy.name]
            diefs[policy.name] = dief_at_t(result.trace, horizon)
            ttfa = result.time_to_first_answer
            row.extend(
                [
                    f"{ttfa:.4f}" if ttfa is not None else "-",
                    f"{diefs[policy.name]:.2f}",
                ]
            )
        rows.append(row)
        # Aware must produce answers at least as continuously (except Q1,
        # where the aware plan deliberately trades fast-network latency).
        if query_name != "Q1":
            assert (
                diefs["Physical-Design-Aware"] >= diefs["Physical-Design-Unaware"]
            ), query_name
            assert (
                results["Physical-Design-Aware"].time_to_first_answer
                <= results["Physical-Design-Unaware"].time_to_first_answer
            ), query_name

    table = format_table(
        ["Query", "TTFA unaware (s)", "dief@t unaware", "TTFA aware (s)", "dief@t aware"],
        rows,
    )
    emit(results_dir, "diefficiency.txt", table)

    benchmark(
        lambda: run_query(
            lake,
            BENCHMARK_QUERIES["Q2"],
            Configuration(POLICIES[1], network),
            seed=7,
        )
    )
