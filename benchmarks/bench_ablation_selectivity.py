"""Ablation — filter selectivity and the engine-vs-source crossover.

The paper calls for "a deeper study on the difference of the filter
execution performance between relational database and query engine"
(Section 5).  This ablation sweeps the *match fraction* of a pattern filter
(CONTAINS over drug names, never index-assisted) and locates the crossover
between engine-side and source-side filtering per network setting.
"""

import pytest

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.benchmark import format_table
from repro.datasets.queries import PREFIXES

from .conftest import emit

#: Substrings of decreasing frequency in the generated drug names.
SUBSTRINGS = ("a", "ol", "in", "zol", "xanthippe")

QUERY_TEMPLATE = PREFIXES + """
SELECT ?drug ?name WHERE {{
  ?drug a drugbank:Drug ;
        drugbank:drugName ?name ;
        drugbank:category ?cat .
  FILTER(CONTAINS(?name, "{needle}"))
}}
"""

ENGINE_POLICY = PlanPolicy.physical_design_unaware()
PUSHDOWN_POLICY = PlanPolicy.filters_at_source()


def _run(lake, policy, network, needle):
    engine = FederatedEngine(lake, policy=policy, network=network)
    answers, stats = engine.run(QUERY_TEMPLATE.format(needle=needle), seed=7)
    return len(answers), stats


def test_selectivity_crossover(benchmark, lake, results_dir):
    networks = (NetworkSetting.no_delay(), NetworkSetting.gamma1(), NetworkSetting.gamma2())
    rows = []
    fractions = {}
    winners: dict[tuple[str, str], str] = {}
    total = None
    for needle in SUBSTRINGS:
        for network in networks:
            engine_count, engine_stats = _run(lake, ENGINE_POLICY, network, needle)
            push_count, push_stats = _run(lake, PUSHDOWN_POLICY, network, needle)
            assert engine_count == push_count
            if total is None and needle == "a":
                total = engine_stats.messages  # upper bound reference
            fractions[needle] = engine_count
            winner = "engine" if engine_stats.execution_time < push_stats.execution_time else "source"
            winners[(needle, network.name)] = winner
            rows.append(
                [
                    needle,
                    network.name,
                    engine_count,
                    f"{engine_stats.execution_time:.4f}",
                    f"{push_stats.execution_time:.4f}",
                    winner,
                ]
            )

    table = format_table(
        ["Needle", "Network", "Matches", "Engine (s)", "Source (s)", "Winner"], rows
    )
    emit(results_dir, "ablation_selectivity.txt", table)

    # Match fractions must be strictly decreasing along the sweep.
    counts = [fractions[needle] for needle in SUBSTRINGS]
    assert counts == sorted(counts, reverse=True)
    assert counts[-1] == 0  # the absurd needle matches nothing

    # Shape: with no delay, the non-selective filter favours the engine;
    # as the filter becomes very selective, the source side wins even there
    # (almost nothing is scanned out, transfer shrinks to zero).
    assert winners[("a", "No Delay")] == "engine"
    assert winners[("xanthippe", "Gamma 2")] == "source"
    # On the medium network the barely-selective filter already flips.
    assert winners[("a", "Gamma 2")] == "source"

    benchmark(lambda: _run(lake, PUSHDOWN_POLICY, NetworkSetting.no_delay(), "zol"))
