"""Scale sensitivity — the reproduced shapes are stable across data sizes.

A reproduction claim is only credible if the qualitative findings survive
changing the data-set scale.  This bench re-runs the key comparisons at
several scales and asserts the *directions* (who wins) stay put while the
effect grows with data size where it should (Q2's absolute gap).
"""

import pytest

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.benchmark import format_table
from repro.datasets import BENCHMARK_QUERIES, build_lslod_lake

from .conftest import emit

SCALES = (0.05, 0.1, 0.2)

AWARE = PlanPolicy.physical_design_aware()
UNAWARE = PlanPolicy.physical_design_unaware()


def _speedup(lake, query_name, network):
    query = BENCHMARK_QUERIES[query_name]
    __, unaware = FederatedEngine(lake, policy=UNAWARE, network=network).run(
        query.text, seed=7
    )
    __, aware = FederatedEngine(lake, policy=AWARE, network=network).run(query.text, seed=7)
    return unaware.execution_time / aware.execution_time, unaware, aware


def test_shapes_stable_across_scales(benchmark, results_dir):
    network = NetworkSetting.gamma2()
    rows = []
    q2_gaps = []
    for scale in SCALES:
        lake = build_lslod_lake(scale=scale, seed=42)
        row = [f"{scale:.2f}"]
        for query_name in ("Q1", "Q2", "Q3", "Q5"):
            speedup, unaware, aware = _speedup(lake, query_name, network)
            row.append(f"{speedup:.2f}x")
            if query_name == "Q2":
                q2_gaps.append(unaware.execution_time - aware.execution_time)
            if query_name in ("Q2", "Q3", "Q5"):
                assert speedup > 1.0, (scale, query_name)
        rows.append(row)

    table = format_table(
        ["Scale", "Q1 speedup", "Q2 speedup", "Q3 speedup", "Q5 speedup"], rows
    )
    emit(results_dir, "scale_sensitivity.txt", table)

    # Absolute savings grow with data size.
    assert q2_gaps == sorted(q2_gaps)

    benchmark(lambda: build_lslod_lake(scale=0.05, seed=42))
