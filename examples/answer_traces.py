"""Answer traces for Q3 across the network grid (the paper's Figure 2).

Run:  python examples/answer_traces.py
"""

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.benchmark import TracePlot
from repro.datasets import BENCHMARK_QUERIES, build_lslod_lake


def main() -> None:
    lake = build_lslod_lake(scale=0.1, seed=42)
    query = BENCHMARK_QUERIES["Q3"]
    print(f"Q3: {query.rationale}\n")

    policies = (
        PlanPolicy.physical_design_unaware(),
        PlanPolicy.physical_design_aware(),
    )

    # Figure 2a/2b: each policy across the four network settings.
    for policy in policies:
        plot = TracePlot(f"Q3 — {policy.name} across network settings")
        for network in NetworkSetting.all_settings():
            engine = FederatedEngine(lake, policy=policy, network=network)
            __, stats = engine.run(query.text, seed=7)
            plot.add(network.name, stats.trace)
        print(plot.render_ascii(width=72, height=14))
        print()

    # Figure 2c: both QEP types at the slowest network.
    plot = TracePlot("Q3 — both QEP types (Gamma 3)")
    for policy in policies:
        engine = FederatedEngine(lake, policy=policy, network=NetworkSetting.gamma3())
        __, stats = engine.run(query.text, seed=7)
        plot.add(policy.name, stats.trace)
    print(plot.render_ascii(width=72, height=14))


if __name__ == "__main__":
    main()
