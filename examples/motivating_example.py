"""The paper's Figure 1 motivating example, end to end.

Shows: star-shaped decomposition, the physical design of Diseasome and
Affymetrix, the 15 %-rule declining to index the skewed species attribute,
and the two query execution plans — unaware (all operations at the engine)
vs aware (the Diseasome join pushed down; the species filter kept up).

Run:  python examples/motivating_example.py
"""

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.core import decompose_star_shaped
from repro.datasets import MOTIVATING_EXAMPLE, build_lslod_lake
from repro.sparql import parse_query


def main() -> None:
    lake = build_lslod_lake(scale=0.1, seed=42)
    query = MOTIVATING_EXAMPLE

    print("SPARQL query (Figure 1a):")
    print(query.text)

    print("Star-shaped decomposition:")
    decomposition = decompose_star_shaped(parse_query(query.text))
    print(decomposition.describe())
    print()

    print("Physical design (the catalog the heuristics consult):")
    for line in lake.physical_catalog.describe().splitlines():
        if "diseasome" in line or "affymetrix" in line or line.endswith(":"):
            print(" ", line)
    print()

    print("Why is the species attribute not indexed?  The 15% rule:")
    advice = lake.source("affymetrix").database.advise_index(
        "probeset", "scientificname"
    )
    print(f"  verdict: {'CREATE' if advice.create else 'SKIP'} — {advice.reason}")
    print()

    unaware = FederatedEngine(
        lake, policy=PlanPolicy.physical_design_unaware(), network=NetworkSetting.no_delay()
    )
    aware = FederatedEngine(
        lake, policy=PlanPolicy.physical_design_aware(), network=NetworkSetting.no_delay()
    )

    print("=== Physical-Design-Unaware QEP (Figure 1b) ===")
    print(unaware.explain(query.text))
    print()
    print("=== Physical-Design-Aware QEP (Figure 1c) ===")
    print(aware.explain(query.text))
    print()

    for label, engine in (("unaware", unaware), ("aware", aware)):
        answers, stats = engine.run(query.text, seed=7)
        print(
            f"{label:>8}: {len(answers)} answers, "
            f"{stats.execution_time:.4f} virtual s, {stats.messages} messages"
        )


if __name__ == "__main__":
    main()
