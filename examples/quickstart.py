"""Quickstart: build the LSLOD lake and run a federated query.

Run:  python examples/quickstart.py
"""

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.datasets import BENCHMARK_QUERIES, build_lslod_lake


def main() -> None:
    # 1. Build a small Semantic Data Lake: ten synthetic life-science data
    #    sets, nine stored relationally (3NF + indexes), KEGG kept as RDF.
    print("building the lake (scale=0.1) ...")
    lake = build_lslod_lake(scale=0.1, seed=42)
    print(lake.describe())
    print()

    # 2. Plan the same query with and without physical-design awareness.
    query = BENCHMARK_QUERIES["Q2"]
    print(f"Query {query.name}: {query.rationale}\n")
    for policy in (
        PlanPolicy.physical_design_unaware(),
        PlanPolicy.physical_design_aware(),
    ):
        engine = FederatedEngine(lake, policy=policy, network=NetworkSetting.gamma2())
        print(engine.explain(query.text))
        print()

        # 3. Execute: answers stream, the virtual clock accumulates the
        #    simulated timeline (source work + per-answer network delay).
        answers, stats = engine.run(query.text, seed=7)
        print(
            f"  -> {len(answers)} answers in {stats.execution_time:.4f} virtual s "
            f"(first answer at {stats.time_to_first_answer:.4f}s, "
            f"{stats.messages} messages)"
        )
        print()

    print("sample answer:")
    answers, __ = FederatedEngine(lake).run(query.text, seed=7)
    for name, term in sorted(answers[0].items()):
        print(f"  ?{name} = {term.n3()}")


if __name__ == "__main__":
    main()
