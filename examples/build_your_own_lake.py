"""Build a Semantic Data Lake from your own RDF data.

Shows the full public API surface: loading N-Triples, 3NF normalization,
the index advisor, registering native-RDF members, and federated querying
with custom policies.

Run:  python examples/build_your_own_lake.py
"""

from repro import FederatedEngine, NetworkSetting, PlanPolicy, SemanticDataLake
from repro.rdf import Graph, parse_into

PUBLICATIONS = """\
<http://ex/pub/Paper/1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/vocab#Paper> .
<http://ex/pub/Paper/1> <http://ex/vocab#title> "Optimizing Federated Queries" .
<http://ex/pub/Paper/1> <http://ex/vocab#year> "2020"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/pub/Paper/1> <http://ex/vocab#authorName> "Rohde" .
<http://ex/pub/Paper/2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/vocab#Paper> .
<http://ex/pub/Paper/2> <http://ex/vocab#title> "Ontario: Federated Query Processing" .
<http://ex/pub/Paper/2> <http://ex/vocab#year> "2019"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/pub/Paper/2> <http://ex/vocab#authorName> "Endris" .
<http://ex/pub/Paper/3> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/vocab#Paper> .
<http://ex/pub/Paper/3> <http://ex/vocab#title> "ANAPSID: An Adaptive Query Engine" .
<http://ex/pub/Paper/3> <http://ex/vocab#year> "2011"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/pub/Paper/3> <http://ex/vocab#authorName> "Acosta" .
"""

VENUES = """\
<http://ex/venues/Venue/1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/vocab#Venue> .
<http://ex/venues/Venue/1> <http://ex/vocab#venueName> "EDBT" .
<http://ex/venues/Venue/1> <http://ex/vocab#publishedTitle> "Optimizing Federated Queries" .
<http://ex/venues/Venue/2> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/vocab#Venue> .
<http://ex/venues/Venue/2> <http://ex/vocab#venueName> "DEXA" .
<http://ex/venues/Venue/2> <http://ex/vocab#publishedTitle> "Ontario: Federated Query Processing" .
<http://ex/venues/Venue/3> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/vocab#Venue> .
<http://ex/venues/Venue/3> <http://ex/vocab#venueName> "ISWC" .
<http://ex/venues/Venue/3> <http://ex/vocab#publishedTitle> "ANAPSID: An Adaptive Query Engine" .
"""


def main() -> None:
    lake = SemanticDataLake("publications")

    # A relational member: the RDF dump is normalized to 3NF automatically
    # (subjects become primary keys, functional properties become columns).
    papers = Graph("papers")
    parse_into(papers, PUBLICATIONS)
    source = lake.add_graph_as_relational("papers", papers)
    print("normalized tables:", source.database.table_names)

    # Ask the index advisor before creating secondary indexes.
    for column in ("title", "year", "authorname"):
        advice = source.database.advise_index("paper", column)
        print(f"  advise index on paper.{column}: "
              f"{'CREATE' if advice.create else 'SKIP'} — {advice.reason}")
    lake.create_index("papers", "paper", ["title"])

    # A native-RDF member: stays a triple store, queried via SPARQL.
    venues = Graph("venues")
    parse_into(venues, VENUES)
    lake.add_rdf_source("venues", venues)

    query = """
    PREFIX v: <http://ex/vocab#>
    SELECT ?title ?venue ?year WHERE {
      ?paper a v:Paper ; v:title ?title ; v:year ?year ; v:authorName ?author .
      ?v a v:Venue ; v:venueName ?venue ; v:publishedTitle ?title .
      FILTER(?year >= 2015)
    }
    ORDER BY DESC(?year)
    """

    engine = FederatedEngine(
        lake,
        policy=PlanPolicy.physical_design_aware(),
        network=NetworkSetting.gamma1(),
    )
    print()
    print(engine.explain(query))
    print()
    answers, stats = engine.run(query, seed=1)
    for answer in answers:
        print(
            f"  {answer['title'].lexical!r} @ {answer['venue'].lexical} "
            f"({answer['year'].lexical})"
        )
    print(f"\n{len(answers)} answers in {stats.execution_time:.5f} virtual s")


if __name__ == "__main__":
    main()
