"""Advanced engine features: OPTIONAL, UNION, the dependent join, and the
relational substrate's aggregates + persistence.

Run:  python examples/advanced_queries.py
"""

import tempfile
from pathlib import Path

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.core import JoinStrategy
from repro.datalake import load_lake, save_lake
from repro.datasets import build_lslod_lake
from repro.datasets.queries import PREFIXES


def main() -> None:
    lake = build_lslod_lake(scale=0.1, seed=42)
    engine = FederatedEngine(lake, network=NetworkSetting.gamma1())

    print("=== OPTIONAL: diseases with their genes, when any ===")
    optional_query = PREFIXES + """
    SELECT ?dname ?symbol WHERE {
      ?d a diseasome:Disease ; diseasome:diseaseName ?dname ;
         diseasome:diseaseClass "immunological" .
      OPTIONAL { ?g a diseasome:Gene ; diseasome:associatedDisease ?d ;
                 diseasome:geneSymbol ?symbol . }
    } LIMIT 8
    """
    answers, stats = engine.run(optional_query, seed=7)
    for answer in answers:
        symbol = answer.get("symbol")
        print(f"  {answer['dname'].lexical}: {symbol.lexical if symbol else '(no gene)'}")
    print(f"  -> {len(answers)} rows, {stats.execution_time:.4f} virtual s\n")

    print("=== UNION: drugs known to DrugBank or trialled in LinkedCT ===")
    union_query = PREFIXES + """
    SELECT ?name WHERE {
      { ?drug a drugbank:Drug ; drugbank:drugName ?name ;
              drugbank:category "withdrawn" . }
      UNION
      { ?trial a linkedct:Trial ; linkedct:interventionDrug ?name ;
               linkedct:phase "Phase 4" . }
    } LIMIT 6
    """
    answers, __ = engine.run(union_query, seed=7)
    print(" ", sorted({answer["name"].lexical for answer in answers})[:6], "\n")

    print("=== Dependent (bound) join: selective outer pushes bindings ===")
    dependent_query = PREFIXES + """
    SELECT ?gene ?expr ?value WHERE {
      ?gene a diseasome:Gene ; diseasome:geneSymbol ?symbol ;
            diseasome:associatedDisease <http://lslod.repro/diseasome/resource/Disease/5> .
      ?expr a tcga:GeneExpression ; tcga:geneSymbol ?symbol ;
            tcga:expressionValue ?value .
    }
    """
    for policy in (
        PlanPolicy.physical_design_unaware(),
        PlanPolicy.physical_design_unaware().with_(
            name="Dependent", join_strategy=JoinStrategy.DEPENDENT
        ),
    ):
        sibling = FederatedEngine(lake, policy=policy, network=NetworkSetting.gamma2())
        answers, stats = sibling.run(dependent_query, seed=7)
        print(
            f"  {policy.name:<24} {len(answers)} answers, "
            f"{stats.execution_time:.4f}s, {stats.messages} messages"
        )
    print()

    print("=== Relational substrate: aggregates over a member database ===")
    tcga = lake.source("tcga").database
    rows = tcga.query(
        "SELECT genesymbol, COUNT(*) AS n, AVG(expressionvalue) AS mean "
        "FROM geneexpression GROUP BY genesymbol ORDER BY n DESC LIMIT 5"
    ).fetchall()
    for symbol, count, mean in rows:
        print(f"  {symbol:<10} n={count:<5} mean expression={mean:.3f}")
    print()

    print("=== Persistence: save and reload the whole lake ===")
    with tempfile.TemporaryDirectory() as tmp:
        root = save_lake(lake, Path(tmp) / "lake")
        restored = load_lake(root)
        answers, __ = FederatedEngine(restored).run(union_query, seed=7)
        print(f"  reloaded lake answers the UNION query with {len(answers)} rows")


if __name__ == "__main__":
    main()
