"""A guided tour of the paper's two heuristics and their trade-offs.

Walks Q1 (Heuristic 2's supporting case), Q3 (its contradiction) and Q2
(Heuristic 1) through every filter-placement policy and network setting,
printing the decision log the planner produces.

Run:  python examples/heuristics_tour.py
"""

from repro import FederatedEngine, NetworkSetting, PlanPolicy
from repro.benchmark import format_table
from repro.datasets import BENCHMARK_QUERIES, build_lslod_lake


def show_decisions(lake, query, policy, network) -> None:
    engine = FederatedEngine(lake, policy=policy, network=network)
    plan = engine.plan(query.text)
    print(f"[{policy.name} / {network.name}]")
    for decision in plan.merge_decisions:
        verdict = "merged" if decision.merged else "kept separate"
        print(f"  H1: {decision.star_a}+{decision.star_b} {verdict} — {decision.reason}")
    for source_id, decision in plan.filter_decisions:
        print(f"  H2 [{source_id}]: {decision.describe()}")


def sweep(lake, query) -> str:
    rows = []
    for network in NetworkSetting.all_settings():
        row = [network.name]
        for policy in (
            PlanPolicy.physical_design_unaware(),
            PlanPolicy.physical_design_aware(),
            PlanPolicy.heuristic2(),
        ):
            engine = FederatedEngine(lake, policy=policy, network=network)
            __, stats = engine.run(query.text, seed=7)
            row.append(f"{stats.execution_time:.4f}")
        rows.append(row)
    return format_table(["Network", "Unaware (s)", "Aware (s)", "Heuristic2 (s)"], rows)


def main() -> None:
    lake = build_lslod_lake(scale=0.1, seed=42)

    for name in ("Q2", "Q1", "Q3"):
        query = BENCHMARK_QUERIES[name]
        print("=" * 72)
        print(f"{name}: {query.rationale}")
        print("=" * 72)
        show_decisions(
            lake, query, PlanPolicy.physical_design_aware(), NetworkSetting.no_delay()
        )
        show_decisions(lake, query, PlanPolicy.heuristic2(), NetworkSetting.gamma3())
        print()
        print(sweep(lake, query))
        print()


if __name__ == "__main__":
    main()
