"""Reproduce the paper's full experiment grid on a small lake.

Eight configurations (2 QEP types x 4 network settings) over the five
benchmark queries, printing execution-time, speedup and network-impact
tables.

Run:  python examples/experiment_grid.py
"""

from repro.benchmark import grid_table, network_impact_table, run_grid, speedup_table
from repro.datasets import BENCHMARK_QUERIES, GRID_QUERIES, build_lslod_lake


def main() -> None:
    print("building the lake (scale=0.1) ...")
    lake = build_lslod_lake(scale=0.1, seed=42)
    queries = [BENCHMARK_QUERIES[name] for name in GRID_QUERIES]
    print("running the 8-configuration grid over Q1-Q5 ...\n")
    grid = run_grid(lake, queries, seed=7)

    print("Execution time (virtual seconds):")
    print(grid_table(grid, metric="execution_time"))
    print()
    print("Speedup of the physical-design-aware QEPs:")
    print(speedup_table(grid, "Physical-Design-Unaware", "Physical-Design-Aware"))
    print()
    print("Slowdown per network relative to No Delay:")
    print(network_impact_table(grid))


if __name__ == "__main__":
    main()
